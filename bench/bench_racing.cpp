// Anytime-performance benchmark for frugal trial racing
// (src/automl/racing.h). Runs the SAME real-learner search twice — racing
// off and racing on — with a deterministic trial cost model, so both runs
// and their comparison are pure functions of the flags. Emits
// BENCH_racing.json with the two anytime curves (best validation error as a
// function of cumulative charged trial cost), per-learner charged cost, the
// raced-trial count and wall times, plus a check report:
//   * anytime_within_slack — at every point of the merged cost grid the
//     racing-on best error is within the configured slack of racing-off
//     (racing may only give up what its slack explicitly tolerates);
//   * nonbest_cost_decreased — the charged cost spent on learners OTHER
//     than the racing-off winner strictly decreased (the budget racing is
//     supposed to save);
//   * raced_fired — at least one trial was actually raced.
//
// Usage:
//   bench_racing [--rows=N] [--features=N] [--trials=N] [--seed=N]
//                [--grace=N] [--slack-rel=X] [--slack-abs=X]
//                [--out=BENCH_racing.json] [--check]
// --check re-reads the emitted file, validates its shape and requires all
// three report booleans (non-zero exit otherwise) — what the ctest smoke
// runs.
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "args.h"
#include "automl/automl.h"
#include "common/clock.h"
#include "common/json.h"
#include "data/generators.h"

namespace flaml::bench {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One point of an anytime curve: after `cost` cumulative charged seconds,
// the best validation error seen so far was `best`.
struct CurvePoint {
  double cost = 0.0;
  double best = kInf;
};

std::vector<CurvePoint> anytime_curve(const TrialHistory& history) {
  std::vector<CurvePoint> curve;
  double cum = 0.0;
  for (const TrialRecord& r : history) {
    cum += r.cost;
    curve.push_back(CurvePoint{cum, r.best_error_so_far});
  }
  return curve;
}

// Step-function evaluation: the best error once `cost` seconds were charged
// (inf before the first finished trial; the final best past the end).
double best_at(const std::vector<CurvePoint>& curve, double cost) {
  double best = kInf;
  for (const CurvePoint& p : curve) {
    if (p.cost > cost) break;
    best = p.best;
  }
  return best;
}

struct RunResult {
  TrialHistory history;
  std::vector<CurvePoint> curve;
  std::map<std::string, double> learner_cost;  // charged seconds per learner
  std::string best_learner;
  double best_error = kInf;
  double total_cost = 0.0;
  double n_raced = 0.0;
  double wall_seconds = 0.0;
};

RunResult run_search(const Dataset& data, const AutoMLOptions& options) {
  WallClock clock;
  Stopwatch timer(clock);
  AutoML automl;
  automl.fit(data, options);
  RunResult result;
  result.wall_seconds = timer.elapsed();
  result.history = automl.history();
  result.curve = anytime_curve(result.history);
  for (const TrialRecord& r : result.history) {
    result.learner_cost[r.learner] += r.cost;
    result.total_cost += r.cost;
  }
  result.best_learner = automl.best_learner();
  result.best_error = automl.best_error();
  result.n_raced = automl.metrics().value("trials_raced");
  return result;
}

JsonValue curve_json(const std::vector<CurvePoint>& curve) {
  JsonValue out = JsonValue::make_array();
  for (const CurvePoint& p : curve) {
    JsonValue point = JsonValue::make_object();
    point.set("cost", JsonValue::make_number(p.cost));
    point.set("best_error", JsonValue::make_number(
                                std::isfinite(p.best) ? p.best : -1.0));
    out.push(std::move(point));
  }
  return out;
}

JsonValue run_json(const RunResult& run) {
  JsonValue out = JsonValue::make_object();
  out.set("best_error", JsonValue::make_number(run.best_error));
  out.set("best_learner", JsonValue::make_string(run.best_learner));
  out.set("total_charged_cost", JsonValue::make_number(run.total_cost));
  out.set("trials_raced", JsonValue::make_number(run.n_raced));
  out.set("wall_seconds", JsonValue::make_number(run.wall_seconds));
  JsonValue per_learner = JsonValue::make_object();
  for (const auto& [learner, cost] : run.learner_cost) {
    per_learner.set(learner, JsonValue::make_number(cost));
  }
  out.set("charged_cost_per_learner", std::move(per_learner));
  out.set("anytime_curve", curve_json(run.curve));
  return out;
}

// Validate the shape --check depends on; throws on any mismatch.
void check_result_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot reopen " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = parse_json(buffer.str());
  if (!root.is_object()) throw std::runtime_error("root is not an object");
  for (const char* key : {"rows", "features", "trials", "seed"}) {
    const JsonValue* v = root.find(key);
    if (v == nullptr || !v->is_number()) {
      throw std::runtime_error(std::string("missing numeric field '") + key + "'");
    }
  }
  for (const char* key : {"racing_off", "racing_on"}) {
    const JsonValue* run = root.find(key);
    if (run == nullptr || !run->is_object()) {
      throw std::runtime_error(std::string("missing run section '") + key + "'");
    }
    const JsonValue* curve = run->find("anytime_curve");
    if (curve == nullptr || !curve->is_array() || curve->array.empty()) {
      throw std::runtime_error(std::string(key) + " lacks an anytime curve");
    }
  }
  const JsonValue* check = root.find("check");
  if (check == nullptr || check->find("anytime_within_slack") == nullptr ||
      check->find("nonbest_cost_decreased") == nullptr ||
      check->find("raced_fired") == nullptr) {
    throw std::runtime_error("missing check report");
  }
}

int run(int argc, char** argv) {
  Args args(argc, argv);
  const int n_rows = args.get_int("rows", 2000);
  const int n_features = args.get_int("features", 12);
  const int n_trials = args.get_int("trials", 30);
  const int seed = args.get_int("seed", 2);
  const int grace = args.get_int("grace", 1);
  const double slack_rel = args.get_double("slack-rel", 0.0);
  const double slack_abs = args.get_double("slack-abs", 0.01);
  const std::string out_path = args.get_string("out", "BENCH_racing.json");

  std::cerr << "bench_racing: rows=" << n_rows << " features=" << n_features
            << " trials=" << n_trials << " seed=" << seed << " grace=" << grace
            << " slack_rel=" << slack_rel << " slack_abs=" << slack_abs << "\n";

  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = static_cast<std::size_t>(n_rows);
  spec.n_features = n_features;
  spec.seed = 0xace5ULL + static_cast<std::uint64_t>(seed);
  const Dataset data = make_classification(spec);

  AutoMLOptions options;
  options.time_budget_seconds = 1e6;  // iteration budget terminates, not time
  options.max_iterations = static_cast<std::size_t>(n_trials);
  options.initial_sample_size = 64;
  options.resampling = ResamplingPolicy::ForceHoldout;
  options.estimator_list = {"lgbm", "rf"};
  options.seed = static_cast<std::uint64_t>(seed);
  // Deterministic modeled costs: the anytime comparison is then a pure
  // function of the flags (measured wall time is reported separately).
  options.trial_cost_model = [](const Learner& learner, const Config& config,
                                std::size_t sample_size) {
    double config_sum = 0.0;
    for (const auto& [name, value] : config) config_sum += std::abs(value);
    return learner.initial_cost_multiplier() *
               (0.05 + 0.001 * static_cast<double>(sample_size)) +
           1e-6 * config_sum;
  };

  const RunResult off = run_search(data, options);

  AutoMLOptions racing_options = options;
  racing_options.racing.enabled = true;
  racing_options.racing.grace_iterations = grace;
  racing_options.racing.slack_rel = slack_rel;
  racing_options.racing.slack_abs = slack_abs;
  const RunResult on = run_search(data, racing_options);

  // --- Check 1: anytime performance within slack. On the merged cost grid
  // (from the first point where BOTH runs have a finished trial), the
  // racing-on best error may exceed racing-off only by the configured
  // slack — the exact tolerance the kill rule was told to accept.
  std::vector<double> grid;
  for (const CurvePoint& p : off.curve) grid.push_back(p.cost);
  for (const CurvePoint& p : on.curve) grid.push_back(p.cost);
  bool anytime_within_slack = true;
  double max_regret = 0.0;
  for (double c : grid) {
    const double best_off = best_at(off.curve, c);
    const double best_on = best_at(on.curve, c);
    if (!std::isfinite(best_off) || !std::isfinite(best_on)) continue;
    const double tolerance = slack_abs + slack_rel * std::fabs(best_off);
    const double regret = best_on - best_off;
    max_regret = std::max(max_regret, regret);
    if (regret > tolerance) anytime_within_slack = false;
  }

  // --- Check 2: racing spent strictly less charged budget on the learners
  // that did NOT win the racing-off search.
  double nonbest_off = 0.0;
  double nonbest_on = 0.0;
  for (const auto& [learner, cost] : off.learner_cost) {
    if (learner != off.best_learner) nonbest_off += cost;
  }
  for (const auto& [learner, cost] : on.learner_cost) {
    if (learner != off.best_learner) nonbest_on += cost;
  }
  const bool nonbest_cost_decreased = nonbest_on < nonbest_off;

  // --- Check 3: racing actually fired.
  const bool raced_fired = on.n_raced >= 1.0;

  std::cerr << "  racing off: best " << off.best_error << " (" << off.best_learner
            << "), charged " << off.total_cost << " s\n";
  std::cerr << "  racing on:  best " << on.best_error << " (" << on.best_learner
            << "), charged " << on.total_cost << " s, raced " << on.n_raced
            << "\n";
  std::cerr << "  max anytime regret " << max_regret << " (within slack: "
            << (anytime_within_slack ? "yes" : "NO") << "), non-best cost "
            << nonbest_off << " -> " << nonbest_on << " (decreased: "
            << (nonbest_cost_decreased ? "yes" : "NO") << ")\n";

  JsonValue root = JsonValue::make_object();
  root.set("benchmark", JsonValue::make_string("racing"));
  root.set("rows", JsonValue::make_number(n_rows));
  root.set("features", JsonValue::make_number(n_features));
  root.set("trials", JsonValue::make_number(n_trials));
  root.set("seed", JsonValue::make_number(seed));
  root.set("hardware_concurrency",
           JsonValue::make_number(std::thread::hardware_concurrency()));
  JsonValue racing = JsonValue::make_object();
  racing.set("grace_iterations", JsonValue::make_number(grace));
  racing.set("slack_rel", JsonValue::make_number(slack_rel));
  racing.set("slack_abs", JsonValue::make_number(slack_abs));
  root.set("racing", std::move(racing));
  root.set("racing_off", run_json(off));
  root.set("racing_on", run_json(on));
  JsonValue check = JsonValue::make_object();
  check.set("anytime_within_slack", JsonValue::make_bool(anytime_within_slack));
  check.set("max_anytime_regret", JsonValue::make_number(max_regret));
  check.set("nonbest_cost_off", JsonValue::make_number(nonbest_off));
  check.set("nonbest_cost_on", JsonValue::make_number(nonbest_on));
  check.set("nonbest_cost_decreased",
            JsonValue::make_bool(nonbest_cost_decreased));
  check.set("raced_fired", JsonValue::make_bool(raced_fired));
  root.set("check", std::move(check));

  const std::string serialized = dump_json(root);
  {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << serialized;
  }
  std::cerr << "wrote " << out_path << "\n";

  if (args.has("check")) {
    check_result_file(out_path);
    if (!anytime_within_slack || !nonbest_cost_decreased || !raced_fired) {
      std::cerr << "check failed: racing must stay within slack, cut non-best "
                   "learner cost, and actually race\n";
      return 1;
    }
    std::cerr << "check passed\n";
  }
  return 0;
}

}  // namespace
}  // namespace flaml::bench

int main(int argc, char** argv) {
  try {
    return flaml::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_racing: " << e.what() << "\n";
    return 1;
  }
}
