// Figure 7 reproduction: ablation curves. FLAML vs its three ablations
// (roundrobin learner choice, fulldata = no subsampling, cv = forced
// cross-validation) on the MiniBooNE-, Dionis- and bng_pbc-analogues.
// Prints the best-validation-error-so-far at geometric time checkpoints,
// averaged over folds with min/max shades.
// Expected shape: removing any component degrades the curve; fulldata is
// much worse early (no cheap small-sample trials), roundrobin lags before
// convergence.
//
// Flags: --budget=<s> (default 1.5) --row-scale=<f> (default 0.3) --folds=<n> (3)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "args.h"
#include "automl/automl.h"
#include "data/suite.h"
#include "harness.h"

namespace fb = flaml::bench;
using namespace flaml;

int main(int argc, char** argv) {
  fb::Args args(argc, argv);
  const double budget = args.get_double("budget", 1.5);
  const double row_scale = args.get_double("row-scale", 0.3);
  const int folds = args.get_int("folds", 3);

  const char* datasets[] = {"miniboone", "dionis", "bng-pbc"};
  const fb::Method variants[] = {fb::Method::Flaml, fb::Method::FlamlRoundRobin,
                                 fb::Method::FlamlFullData, fb::Method::FlamlCv};

  // Geometric time checkpoints.
  std::vector<double> checkpoints;
  for (double t = budget / 32.0; t <= budget * 1.0001; t *= 2.0) {
    checkpoints.push_back(t);
  }

  std::printf("# Figure 7: FLAML vs its ablations (validation error vs time; "
              "lines = fold mean, shades = min/max)\n");

  for (const char* dataset : datasets) {
    Dataset data = make_suite_dataset(suite_entry(dataset), row_scale);
    std::printf("\n## dataset=%s (%zu rows, %zu features, %s)\n", dataset,
                data.n_rows(), data.n_cols(), task_name(data.task()));
    std::printf("%-12s", "t(s)");
    for (double t : checkpoints) std::printf(" %18.3f", t);
    std::printf("\n");

    for (fb::Method variant : variants) {
      // value[fold][checkpoint] = best error so far at that time.
      std::vector<std::vector<double>> curves;
      for (int fold = 0; fold < folds; ++fold) {
        AutoML automl;
        AutoMLOptions options;
        options.time_budget_seconds = budget;
        options.initial_sample_size = static_cast<std::size_t>(10000.0 * row_scale);
        options.budget_scale = budget / 3600.0;
        options.seed = 100 + static_cast<std::uint64_t>(fold);
        if (variant == fb::Method::FlamlRoundRobin) {
          options.learner_choice = LearnerChoice::RoundRobin;
        } else if (variant == fb::Method::FlamlFullData) {
          options.sample_policy = SamplePolicy::FullData;
        } else if (variant == fb::Method::FlamlCv) {
          options.resampling = ResamplingPolicy::ForceCV;
        }
        automl.fit(data, options);
        std::vector<double> curve(checkpoints.size(),
                                  std::numeric_limits<double>::quiet_NaN());
        for (std::size_t c = 0; c < checkpoints.size(); ++c) {
          double best = std::numeric_limits<double>::quiet_NaN();
          for (const auto& r : automl.history()) {
            if (r.finished_at <= checkpoints[c]) best = r.best_error_so_far;
          }
          curve[c] = best;
        }
        curves.push_back(std::move(curve));
      }
      std::printf("%-12s", fb::method_name(variant));
      for (std::size_t c = 0; c < checkpoints.size(); ++c) {
        double mean = 0.0, lo = 1e18, hi = -1e18;
        int n = 0;
        for (const auto& curve : curves) {
          if (!std::isfinite(curve[c])) continue;
          mean += curve[c];
          lo = std::min(lo, curve[c]);
          hi = std::max(hi, curve[c]);
          ++n;
        }
        if (n == 0) {
          std::printf(" %18s", "-");
        } else {
          char cell[40];
          std::snprintf(cell, sizeof(cell), "%.3f[%.3f,%.3f]", mean / n, lo, hi);
          std::printf(" %18s", cell);
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
