// Figure 4 reproduction: ECI-based prioritization. Runs FLAML on one
// dataset, then (top panel) prints the best-error-per-learner trajectory
// over time and (bottom panel) the per-learner trial timeline. The ECI
// snapshot at a chosen time point is reconstructed by replaying the trial
// history through the EciState bookkeeping — the same code the controller
// uses — illustrating the self-correcting behavior: learners that stop
// improving see their ECI (and so their selection probability) rise/fall.
//
// Flags: --budget=<s> (default 2) --row-scale=<f> --snapshot=<s> (default budget/2)

#include <algorithm>
#include <cstdio>
#include <map>

#include "args.h"
#include "automl/automl.h"
#include "automl/eci.h"
#include "data/suite.h"
#include "harness.h"

namespace fb = flaml::bench;
using namespace flaml;

int main(int argc, char** argv) {
  fb::Args args(argc, argv);
  const double budget = args.get_double("budget", 2.0);
  const double row_scale = args.get_double("row-scale", 0.5);
  const double snapshot = args.get_double("snapshot", budget / 2.0);

  Dataset data = make_suite_dataset(suite_entry("higgs"), row_scale);
  std::printf("# Figure 4: ECI prioritization on higgs-analog, budget=%.2fs\n", budget);

  AutoML automl;
  AutoMLOptions options;
  options.time_budget_seconds = budget;
  options.initial_sample_size = static_cast<std::size_t>(10000.0 * row_scale);
  options.budget_scale = budget / 3600.0;
  options.seed = 17;
  automl.fit(data, options);

  // Top panel: best error per learner vs time.
  std::map<std::string, double> best;
  std::printf("\n## best error per learner vs time (staircase points)\n");
  std::map<std::string, std::string> curves;
  for (const auto& r : automl.history()) {
    auto it = best.find(r.learner);
    if (it == best.end() || r.error < it->second) {
      best[r.learner] = r.error;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "(%.2fs,%.4f) ", r.finished_at, r.error);
      curves[r.learner] += buf;
    }
  }
  for (const auto& [learner, curve] : curves) {
    std::printf("%-10s %s\n", learner.c_str(), curve.c_str());
  }

  // Bottom panel: trial timeline per learner.
  std::printf("\n## trial timeline (one column per trial)\n");
  for (const auto& [learner, unused] : curves) {
    (void)unused;
    std::printf("%-10s ", learner.c_str());
    for (const auto& r : automl.history()) {
      if (r.learner == learner) std::printf("%.2f ", r.finished_at);
    }
    std::printf("\n");
  }

  // ECI snapshot at `snapshot` seconds: replay history through EciState.
  std::printf("\n## ECI snapshot at t=%.2fs (replayed bookkeeping)\n", snapshot);
  std::map<std::string, EciState> states;
  double global_best = std::numeric_limits<double>::infinity();
  for (const auto& r : automl.history()) {
    if (r.finished_at > snapshot) break;
    states[r.learner].record(r.cost, r.error);
    global_best = std::min(global_best, r.error);
  }
  std::printf("%-10s %-10s %-10s %-10s %-12s\n", "learner", "ECI1", "ECI2", "ECI",
              "P(choose)");
  double inv_sum = 0.0;
  std::map<std::string, double> ecis;
  for (auto& [learner, state] : states) {
    double eci = state.eci(global_best, 2.0, true);
    ecis[learner] = eci;
    inv_sum += 1.0 / eci;
  }
  for (auto& [learner, state] : states) {
    double eci = ecis[learner];
    std::printf("%-10s %-10.4f %-10.4f %-10.4f %-12.3f\n", learner.c_str(),
                state.eci1(), state.eci2(2.0, true), eci,
                (1.0 / eci) / inv_sum);
  }
  std::printf("\n# winner: %s (error %.4f); learners with stalled improvement get "
              "higher ECI and lower selection probability\n",
              automl.best_learner().c_str(), automl.best_error());
  return 0;
}
