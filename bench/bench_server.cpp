// Search-daemon benchmark (src/server): pushes K independent AutoML jobs
// through the SearchDaemon at slot counts {1, 2, 4} and compares against
// running the same K searches sequentially in-process. Writes
// machine-readable results to BENCH_server.json: wall time, jobs/sec and
// speedup-vs-sequential per slot count, plus a determinism report — every
// daemon-scheduled job's trial history (learner, sample size, error/cost
// bits, best-so-far) must be bit-identical to its sequential reference run,
// whatever the scheduler's interleaving. Each job uses a deterministic trial
// cost model so the search is a pure function of its options and seed.
//
// Usage:
//   bench_server [--jobs=K] [--trials=N] [--rows=N] [--features=N]
//                [--out=BENCH_server.json] [--check]
// --check re-reads the emitted file through the JSON parser, validates its
// shape and requires the determinism report to be all-true (the ctest smoke
// test runs this).
#include <bit>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "args.h"
#include "automl/automl.h"
#include "common/clock.h"
#include "common/json.h"
#include "data/generators.h"
#include "server/daemon.h"

namespace flaml::bench {
namespace {

constexpr std::size_t kSlotCounts[] = {1, 2, 4};

Dataset job_dataset(std::size_t n_rows, int n_features, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = n_rows;
  spec.n_features = n_features;
  spec.class_sep = 1.1;
  spec.nonlinearity = 0.4;
  spec.seed = seed;
  return make_classification(spec);
}

// Deterministic trial cost — a pure function of (learner, sample size) — so
// the ECI bookkeeping, and through it the whole search, is seed-pure and the
// daemon's interleaving cannot leak into any job's history.
AutoMLOptions job_options(std::uint64_t seed, std::size_t trials) {
  AutoMLOptions options;
  options.time_budget_seconds = 1e6;  // the iteration cap terminates, not time
  options.max_iterations = trials;
  options.initial_sample_size = 32;
  options.resampling = ResamplingPolicy::ForceHoldout;
  options.estimator_list = {"lgbm", "rf"};
  options.trial_cost_model = [](const Learner& learner, const Config&,
                                std::size_t sample_size) {
    return learner.initial_cost_multiplier() *
           (0.05 + 0.001 * static_cast<double>(sample_size));
  };
  options.seed = seed;
  return options;
}

std::string hex_bits(double value) {
  std::ostringstream out;
  out << std::hex << std::bit_cast<std::uint64_t>(value);
  return out.str();
}

// A bit-exact digest of everything the determinism contract covers:
// record-for-record history plus the winning model's identity.
std::string fingerprint(const AutoML& automl) {
  std::ostringstream out;
  for (const TrialRecord& record : automl.history()) {
    out << record.iteration << ':' << record.learner << ':'
        << record.sample_size << ':' << hex_bits(record.error) << ':'
        << hex_bits(record.cost) << ':' << hex_bits(record.best_error_so_far)
        << ';';
  }
  out << '|' << automl.best_learner() << ':' << hex_bits(automl.best_error())
      << ':' << automl.best_sample_size();
  return out.str();
}

void check_result_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot reopen " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = parse_json(buffer.str());
  if (!root.is_object()) throw std::runtime_error("root is not an object");
  for (const char* key : {"jobs", "trials", "sequential_seconds"}) {
    const JsonValue* v = root.find(key);
    if (v == nullptr || !v->is_number()) {
      throw std::runtime_error(std::string("missing numeric field '") + key +
                               "'");
    }
  }
  const JsonValue* determinism = root.find("determinism");
  if (determinism == nullptr || determinism->find("all_identical") == nullptr) {
    throw std::runtime_error("missing determinism report");
  }
  if (!determinism->at("all_identical").boolean) {
    throw std::runtime_error(
        "daemon-scheduled job histories diverged from sequential runs");
  }
  const JsonValue* sections = root.find("sections");
  if (sections == nullptr || !sections->is_array() ||
      sections->array.size() != std::size(kSlotCounts)) {
    throw std::runtime_error("missing or short sections array");
  }
  for (const JsonValue& section : sections->array) {
    for (const char* key :
         {"slots", "seconds", "jobs_per_sec", "speedup_vs_sequential"}) {
      const JsonValue* v = section.find(key);
      if (v == nullptr || !v->is_number() || v->number < 0.0) {
        throw std::runtime_error(std::string("malformed timing field '") + key +
                                 "'");
      }
    }
  }
}

int run(int argc, char** argv) {
  Args args(argc, argv);
  const int n_jobs = args.get_int("jobs", 8);
  const int n_trials = args.get_int("trials", 24);
  const int n_rows = args.get_int("rows", 400);
  const int n_features = args.get_int("features", 6);
  const std::string out_path = args.get_string("out", "BENCH_server.json");

  std::cerr << "bench_server: jobs=" << n_jobs << " trials=" << n_trials
            << " rows=" << n_rows << " features=" << n_features << "\n";

  std::vector<std::shared_ptr<const Dataset>> datasets;
  for (int j = 0; j < n_jobs; ++j) {
    datasets.push_back(std::make_shared<const Dataset>(job_dataset(
        static_cast<std::size_t>(n_rows), n_features, 0xD00D + j)));
  }
  const auto seed_of = [](int j) {
    return static_cast<std::uint64_t>(7 + j);
  };

  WallClock clock;

  // Sequential baseline: the same K searches, one at a time, in-process.
  std::vector<std::string> reference;
  const double sequential_start = clock.now();
  {
    std::vector<std::unique_ptr<AutoML>> runs;
    for (int j = 0; j < n_jobs; ++j) {
      runs.push_back(std::make_unique<AutoML>());
      runs.back()->fit(*datasets[j], job_options(seed_of(j),
                                                 static_cast<std::size_t>(
                                                     n_trials)));
    }
    for (const auto& run : runs) reference.push_back(fingerprint(*run));
  }
  const double sequential_seconds = clock.now() - sequential_start;
  std::cerr << "  sequential: " << sequential_seconds << "s\n";

  JsonValue sections = JsonValue::make_array();
  bool all_identical = true;
  for (std::size_t slots : kSlotCounts) {
    server::SearchDaemon::Options daemon_options;
    daemon_options.slots = slots;
    server::SearchDaemon daemon(daemon_options);
    const double start = clock.now();
    std::vector<std::uint64_t> ids;
    for (int j = 0; j < n_jobs; ++j) {
      server::JobOptions job;
      job.name = "bench-" + std::to_string(j);
      ids.push_back(daemon.submit(
          datasets[j], job_options(seed_of(j),
                                   static_cast<std::size_t>(n_trials)),
          job));
    }
    daemon.wait_all();
    const double seconds = clock.now() - start;
    std::size_t identical = 0;
    for (int j = 0; j < n_jobs; ++j) {
      if (daemon.state(ids[j]) == server::JobState::Finished &&
          fingerprint(daemon.automl(ids[j])) == reference[j]) {
        ++identical;
      }
    }
    daemon.shutdown();
    if (identical != static_cast<std::size_t>(n_jobs)) all_identical = false;

    JsonValue section = JsonValue::make_object();
    section.set("slots", JsonValue::make_number(static_cast<double>(slots)));
    section.set("seconds", JsonValue::make_number(seconds));
    section.set("jobs_per_sec",
                JsonValue::make_number(seconds > 0.0 ? n_jobs / seconds : 0.0));
    section.set("speedup_vs_sequential",
                JsonValue::make_number(
                    seconds > 0.0 ? sequential_seconds / seconds : 0.0));
    section.set("identical_jobs",
                JsonValue::make_number(static_cast<double>(identical)));
    sections.push(std::move(section));
    std::cerr << "  slots=" << slots << ": " << seconds << "s (identical "
              << identical << "/" << n_jobs << ")\n";
  }

  JsonValue root = JsonValue::make_object();
  root.set("benchmark", JsonValue::make_string("server"));
  root.set("jobs", JsonValue::make_number(n_jobs));
  root.set("trials", JsonValue::make_number(n_trials));
  root.set("rows", JsonValue::make_number(n_rows));
  root.set("features", JsonValue::make_number(n_features));
  root.set("hardware_concurrency",
           JsonValue::make_number(std::thread::hardware_concurrency()));
  root.set("sequential_seconds", JsonValue::make_number(sequential_seconds));
  root.set("sections", std::move(sections));
  JsonValue determinism = JsonValue::make_object();
  determinism.set("all_identical", JsonValue::make_bool(all_identical));
  root.set("determinism", std::move(determinism));

  const std::string serialized = dump_json(root);
  {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << serialized;
  }
  std::cerr << "wrote " << out_path << "\n";

  if (args.has("check")) {
    check_result_file(out_path);
    std::cerr << "check passed: shape valid, all job histories identical to "
                 "sequential runs\n";
  }
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace flaml::bench

int main(int argc, char** argv) {
  try {
    return flaml::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_server: " << e.what() << "\n";
    return 1;
  }
}
