// Shared fixtures for the checkpoint/resume suites (tests/test_resume.cpp
// and tests/stress/stress_resume.cpp): a tiny seeded dataset, the stub
// learner lineup with a deterministic cost model (the whole search is a pure
// function of the seed), a kill-at-trial-k fault injector, and comparators
// asserting that a resumed run is indistinguishable from an uninterrupted
// one — identical trial history (modulo wall-clock finished_at), identical
// best, identical metrics totals (modulo wall-clock time_to_best_seconds).
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automl/automl.h"
#include "data/generators.h"
#include "support/stub_learner.h"

namespace flaml::testing {

inline Dataset resume_tiny_binary(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 100;
  spec.n_features = 5;
  spec.seed = seed;
  return make_classification(spec);
}

// Deterministic trial cost: a pure function of (learner, config, sample
// size), so the ECI bookkeeping — and through it the whole search — is
// seed-pure and a resumed run can be compared record-for-record.
inline TrialCostModel resume_cost_model() {
  return [](const Learner& learner, const Config& config, std::size_t sample_size) {
    return learner.initial_cost_multiplier() *
           (0.05 + 0.001 * static_cast<double>(sample_size) +
            0.002 * config.at("units"));
  };
}

inline void add_resume_lineup(AutoML& automl) {
  automl.add_learner(std::make_shared<StubLearner>("stub_fast", 1.0));
  automl.add_learner(std::make_shared<StubLearner>("stub_mid", 1.9));
  automl.add_learner(std::make_shared<StubLearner>("stub_slow", 15.0));
}

inline AutoMLOptions resume_options(std::uint64_t seed, std::size_t max_iterations) {
  AutoMLOptions options;
  options.time_budget_seconds = 1e6;  // iteration budget terminates, not time
  options.max_iterations = max_iterations;
  options.initial_sample_size = 16;
  options.resampling = ResamplingPolicy::ForceHoldout;
  options.estimator_list = {"stub_fast", "stub_mid", "stub_slow"};
  options.trial_cost_model = resume_cost_model();
  options.seed = seed;
  return options;
}

// The simulated crash: thrown from AutoMLOptions::on_trial_committed at a
// chosen trial boundary, after the checkpoint for that boundary was written.
struct KillSignal {
  std::size_t at_iteration = 0;
};

// Arm `options` to checkpoint after EVERY commit and crash at boundary k.
inline void arm_kill(AutoMLOptions& options, const std::string& checkpoint_path,
                     std::size_t kill_at) {
  options.checkpoint_path = checkpoint_path;
  options.checkpoint_every_n_trials = 1;
  options.on_trial_committed = [kill_at](std::size_t iteration) {
    if (iteration == kill_at) throw KillSignal{iteration};
  };
}

inline void expect_resume_records_equal(const TrialRecord& a, const TrialRecord& b,
                                        const std::string& what) {
  EXPECT_EQ(a.iteration, b.iteration) << what;
  EXPECT_EQ(a.learner, b.learner) << what;
  EXPECT_EQ(a.config, b.config) << what;
  EXPECT_EQ(a.sample_size, b.sample_size) << what;
  EXPECT_DOUBLE_EQ(a.error, b.error) << what;
  EXPECT_DOUBLE_EQ(a.cost, b.cost) << what;
  EXPECT_DOUBLE_EQ(a.best_error_so_far, b.best_error_so_far) << what;
  // finished_at is wall-clock and intentionally excluded.
}

inline void expect_resume_histories_equal(const TrialHistory& a,
                                          const TrialHistory& b,
                                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_resume_records_equal(a[i], b[i], what + " record " + std::to_string(i));
  }
}

// The run_summary totals: every counter/gauge except the wall-clock
// time_to_best_seconds, plus full histogram stats (raw samples round-trip
// through the checkpoint, so percentiles must match exactly too).
inline void expect_resume_metrics_equal(const observe::MetricsRegistry& a,
                                        const observe::MetricsRegistry& b,
                                        const std::string& what) {
  const JsonValue ja = a.state_to_json();
  const JsonValue jb = b.state_to_json();
  // Process-local scalars that legitimately differ between an interrupted
  // and an uninterrupted run: wall-clock, and the substrate cache's
  // hit/miss/bytes counters (the cache is rebuilt on demand, so a resumed
  // run starts cold and re-counts misses the original run already paid).
  const auto skip_scalar = [](const std::string& name) {
    return name == "time_to_best_seconds" ||
           name.rfind("substrate_cache.", 0) == 0;
  };
  const JsonValue& scalars_a = ja.at("scalars");
  const JsonValue& scalars_b = jb.at("scalars");
  const auto count_compared = [&](const JsonValue& scalars) {
    std::size_t n = 0;
    for (const auto& [name, value] : scalars.object) {
      if (!skip_scalar(name)) ++n;
    }
    return n;
  };
  ASSERT_EQ(count_compared(scalars_a), count_compared(scalars_b)) << what;
  for (const auto& [name, value] : scalars_a.object) {
    if (skip_scalar(name)) continue;
    const JsonValue* other = scalars_b.find(name);
    ASSERT_NE(other, nullptr) << what << " scalar " << name;
    EXPECT_DOUBLE_EQ(value.number, other->number) << what << " scalar " << name;
  }
  const JsonValue& samples_a = ja.at("samples");
  const JsonValue& samples_b = jb.at("samples");
  ASSERT_EQ(samples_a.object.size(), samples_b.object.size()) << what;
  for (const auto& [name, arr] : samples_a.object) {
    const JsonValue* other = samples_b.find(name);
    ASSERT_NE(other, nullptr) << what << " histogram " << name;
    ASSERT_EQ(arr.array.size(), other->array.size()) << what << " histogram " << name;
    for (std::size_t i = 0; i < arr.array.size(); ++i) {
      EXPECT_DOUBLE_EQ(arr.array[i].number, other->array[i].number)
          << what << " histogram " << name << " sample " << i;
    }
  }
}

// Full crash-equivalence assertion against a reference AutoML that ran
// uninterrupted.
inline void expect_resumed_equals_reference(const AutoML& resumed,
                                            const AutoML& reference,
                                            const std::string& what) {
  expect_resume_histories_equal(resumed.history(), reference.history(), what);
  EXPECT_DOUBLE_EQ(resumed.best_error(), reference.best_error()) << what;
  EXPECT_EQ(resumed.best_learner(), reference.best_learner()) << what;
  EXPECT_EQ(resumed.best_config(), reference.best_config()) << what;
  EXPECT_EQ(resumed.best_sample_size(), reference.best_sample_size()) << what;
  expect_resume_metrics_equal(resumed.metrics(), reference.metrics(), what);
}

}  // namespace flaml::testing
