// Canonical trial-history digesting shared by the golden-search, racing and
// racing-stress suites: a platform-independent rendering of every trial
// record (excluding the wall-clock finished_at), hashed with FNV-1a 64 so an
// entire deterministic search pins to one constant. A digest mismatch prints
// the full canonical history for diffing.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "automl/history.h"

namespace flaml::testing {

inline std::uint64_t fnv1a_append(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) h = (h ^ c) * 0x100000001b3ULL;
  return h;
}

inline std::string double_hex(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  std::ostringstream os;
  os << std::hex << bits;
  return os.str();
}

// Canonical, platform-independent rendering of one trial record (excluding
// the wall-clock finished_at), digested with FNV-1a 64.
inline std::string canonical_history(const TrialHistory& history) {
  std::ostringstream os;
  for (const TrialRecord& r : history) {
    os << r.iteration << '|' << r.learner << '|';
    for (const auto& [name, value] : r.config) {
      os << name << '=' << double_hex(value) << ',';
    }
    os << '|' << r.sample_size << '|' << double_hex(r.error) << '|'
       << double_hex(r.cost) << '|' << double_hex(r.best_error_so_far) << '\n';
  }
  return os.str();
}

inline std::uint64_t history_digest(const TrialHistory& history) {
  return fnv1a_append(0xcbf29ce484222325ULL, canonical_history(history));
}

// Pinned-digest assertion: hex-renders both sides so a failure reads as two
// copy-pasteable constants, and prints the full history for diffing.
inline void expect_history_digest(const TrialHistory& history,
                                  std::uint64_t expected,
                                  const std::string& what) {
  std::ostringstream got;
  got << std::hex << history_digest(history);
  std::ostringstream want;
  want << std::hex << expected;
  EXPECT_EQ(got.str(), want.str())
      << what << ": the search history changed. If intentional, re-pin the "
      << "digest. Full history:\n"
      << canonical_history(history);
}

// Differential assertion: two searches that must be byte-identical.
inline void expect_histories_identical(const TrialHistory& a,
                                       const TrialHistory& b,
                                       const std::string& what) {
  std::ostringstream got;
  got << std::hex << history_digest(a);
  std::ostringstream want;
  want << std::hex << history_digest(b);
  EXPECT_EQ(got.str(), want.str())
      << what << ": histories diverged.\nFirst history:\n"
      << canonical_history(a) << "Second history:\n"
      << canonical_history(b);
}

}  // namespace flaml::testing
