// Corruption-fuzz helpers shared by the artifact-loader suites
// (tests/test_resume.cpp, tests/test_compiled_artifact.cpp): sweep every
// truncation and every bit flip of a serialized container and assert the
// parser rejects each variant with a typed SerializationError — never UB,
// never a crash (docs/TESTING.md, "Adversarial artifact loading").
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <string>

#include "common/error.h"

namespace flaml::testing {

// `parse` is called on every proper prefix of `text` (including the empty
// string) and must throw SerializationError each time.
inline void expect_every_truncation_throws(
    const std::string& text, const std::function<void(const std::string&)>& parse) {
  for (std::size_t n = 0; n < text.size(); ++n) {
    EXPECT_THROW(parse(text.substr(0, n)), SerializationError)
        << "truncation to " << n << " of " << text.size() << " bytes parsed";
  }
}

// `parse` is called on `text` with each single bit of each byte flipped and
// must throw SerializationError each time.
inline void expect_every_bit_flip_throws(
    const std::string& text, const std::function<void(const std::string&)>& parse) {
  for (std::size_t byte = 0; byte < text.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = text;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      EXPECT_THROW(parse(damaged), SerializationError)
          << "bit " << bit << " of byte " << byte << " flipped undetected";
    }
  }
}

}  // namespace flaml::testing
