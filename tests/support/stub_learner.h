// A deliberately cheap, fully deterministic Learner for concurrency and
// determinism tests. Training is microseconds, yet the validation error is a
// nontrivial pure function of (config, sample size, training seed), so the
// FLOW2 walk, the ECI bookkeeping and the sample-size schedule all evolve as
// they would with a real learner — without paying for real training under
// TSan. Used by tests/stress/.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "learners/learner.h"

namespace flaml::testing {

class StubModel final : public Model {
 public:
  StubModel(double slope, double bias) : slope_(slope), bias_(bias) {}

  Predictions predict(const DataView& view) const override {
    Predictions pred;
    pred.task = Task::BinaryClassification;
    pred.n_classes = 2;
    pred.values.resize(view.n_rows() * 2);
    for (std::size_t i = 0; i < view.n_rows(); ++i) {
      const float x = view.value(i, 0);
      const double raw = Dataset::is_missing(x) ? bias_ : slope_ * x + bias_;
      const double p1 = 1.0 / (1.0 + std::exp(-raw));
      pred.values[i * 2] = 1.0 - p1;
      pred.values[i * 2 + 1] = p1;
    }
    return pred;
  }

 private:
  double slope_;
  double bias_;
};

class StubLearner final : public Learner {
 public:
  StubLearner(std::string name, double cost_multiplier)
      : name_(std::move(name)), cost_multiplier_(cost_multiplier) {}

  const std::string& name() const override { return name_; }
  bool supports(Task task) const override {
    return task == Task::BinaryClassification;
  }

  ConfigSpace space(Task, std::size_t) const override {
    ConfigSpace s;
    s.add_float("slope", -4.0, 4.0, 0.5);
    s.add_int("units", 4, 256, 4, /*log_scale=*/true, /*cost_related=*/true);
    return s;
  }

  std::unique_ptr<Model> train(const TrainContext& ctx,
                               const Config& config) const override {
    // The "fit": slope from the config, bias from a deterministic mix of the
    // training seed, the config and the sample size. Different seeds/configs
    // land on different errors, so the search dynamics stay nontrivial.
    std::uint64_t h = ctx.seed * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<std::uint64_t>(ctx.train.n_rows()) * 0x100000001b3ULL;
    h ^= static_cast<std::uint64_t>(
        std::llround(config.at("units") * 1024.0 + config.at("slope") * 4096.0));
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 29;
    const double jitter =
        static_cast<double>(h >> 11) / 9007199254740992.0;  // [0, 1)
    return std::make_unique<StubModel>(config.at("slope"), jitter - 0.5);
  }

  double initial_cost_multiplier() const override { return cost_multiplier_; }

 private:
  std::string name_;
  double cost_multiplier_;
};

}  // namespace flaml::testing
