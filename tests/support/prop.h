// Seeded property-test helper over GTest (docs/TESTING.md).
//
// A property runs N cases, each with its own deterministic Rng whose seed is
// derived from (base seed, property name, case index). On failure the case's
// seed is printed so the exact case can be replayed in isolation:
//
//   FLAML_PROP(Flow2Prop, ProposalsStayInBounds, 50) {
//     ConfigSpace space = random_space(prop.rng);
//     ...
//     EXPECT_LE(value, hi) << "seed " << prop.seed;
//   }
//
// Environment knobs:
//   FLAML_PROP_SEED=<u64>       vary the base seed of every property sweep
//                               (CI can rotate it; default is fixed).
//   FLAML_PROP_CASE_SEED=<u64>  replay a single failing case: every property
//                               runs exactly one case with this seed.
//   FLAML_PROP_CASES=<int>      override the per-property case count
//                               (e.g. 10000 for a long fuzzing soak).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/rng.h"

namespace flaml::testing {

// One generated test case: a deterministic generator plus the seed that
// reproduces it.
struct PropCase {
  Rng rng;
  std::uint64_t seed = 0;
  int index = 0;
  int n_cases = 0;
};

namespace detail {

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s; ++s) h = (h ^ static_cast<unsigned char>(*s)) * 0x100000001b3ULL;
  return h;
}

inline bool env_u64(const char* name, std::uint64_t& out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  out = std::strtoull(v, nullptr, 0);
  return true;
}

}  // namespace detail

// Runs `body(prop)` for each generated case; stops at the first failing case
// and prints how to replay it. `body` is any callable taking PropCase&.
template <typename Body>
void run_prop(const char* property_name, int n_cases, Body&& body) {
  std::uint64_t base = 0xf1a01dea5ULL;  // fixed default: CI is reproducible
  detail::env_u64("FLAML_PROP_SEED", base);

  std::uint64_t replay_seed = 0;
  const bool replay = detail::env_u64("FLAML_PROP_CASE_SEED", replay_seed);

  std::uint64_t cases_override = 0;
  if (detail::env_u64("FLAML_PROP_CASES", cases_override) && cases_override > 0) {
    n_cases = static_cast<int>(cases_override);
  }
  if (replay) n_cases = 1;

  const std::uint64_t name_hash = detail::fnv1a(property_name);
  for (int i = 0; i < n_cases; ++i) {
    const std::uint64_t case_seed =
        replay ? replay_seed
               : detail::splitmix64(base ^ name_hash ^ static_cast<std::uint64_t>(i));
    std::ostringstream trace;
    trace << property_name << " case " << i << "/" << n_cases
          << " — replay with FLAML_PROP_CASE_SEED=" << case_seed;
    SCOPED_TRACE(trace.str());
    PropCase prop{Rng(case_seed), case_seed, i, n_cases};
    body(prop);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "property " << property_name << " failed; replay just "
                    << "this case with FLAML_PROP_CASE_SEED=" << case_seed;
      return;  // later cases would only repeat the noise
    }
  }
}

}  // namespace flaml::testing

// Defines a GTest test that sweeps `n_cases` seeded cases over the property
// body. Inside the body, `prop` is a flaml::testing::PropCase: use prop.rng
// for all randomness so the printed seed reproduces the case exactly.
#define FLAML_PROP(suite_name, prop_name, n_cases)                             \
  static void FlamlProp_##suite_name##_##prop_name(::flaml::testing::PropCase& prop); \
  TEST(suite_name, prop_name) {                                                \
    ::flaml::testing::run_prop(#suite_name "." #prop_name, (n_cases),          \
                               &FlamlProp_##suite_name##_##prop_name);         \
  }                                                                            \
  static void FlamlProp_##suite_name##_##prop_name(                            \
      [[maybe_unused]] ::flaml::testing::PropCase& prop)
