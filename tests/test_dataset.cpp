#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace flaml {
namespace {

const float kNaN = std::numeric_limits<float>::quiet_NaN();

Dataset small_binary() {
  Dataset data(Task::BinaryClassification,
               {{"a", ColumnType::Numeric, 0}, {"b", ColumnType::Categorical, 3}});
  data.add_row({1.0f, 0.0f}, 0.0);
  data.add_row({2.0f, 1.0f}, 1.0);
  data.add_row({3.0f, 2.0f}, 1.0);
  data.add_row({4.0f, 0.0f}, 0.0);
  return data;
}

TEST(Dataset, AddRowGrowsRows) {
  Dataset data = small_binary();
  EXPECT_EQ(data.n_rows(), 4u);
  EXPECT_EQ(data.n_cols(), 2u);
  EXPECT_EQ(data.n_classes(), 2);
  EXPECT_NO_THROW(data.validate());
}

TEST(Dataset, ValueAndLabelAccess) {
  Dataset data = small_binary();
  EXPECT_FLOAT_EQ(data.value(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(data.value(2, 1), 2.0f);
  EXPECT_DOUBLE_EQ(data.label(3), 0.0);
}

TEST(Dataset, RejectsWrongRowWidth) {
  Dataset data = small_binary();
  EXPECT_THROW(data.add_row({1.0f}, 0.0), InvalidArgument);
}

TEST(Dataset, RejectsEmptyColumnList) {
  EXPECT_THROW(Dataset(Task::Regression, {}), InvalidArgument);
}

TEST(Dataset, RejectsBadCategoricalCardinality) {
  EXPECT_THROW(Dataset(Task::Regression, {{"c", ColumnType::Categorical, 0}}),
               InvalidArgument);
}

TEST(Dataset, ValidateCatchesBadCategoryCode) {
  Dataset data(Task::Regression, {{"c", ColumnType::Categorical, 2}});
  data.add_row({5.0f}, 1.0);  // code 5 out of range [0, 2)
  EXPECT_THROW(data.validate(), InvalidArgument);
}

TEST(Dataset, ValidateCatchesNonIntegerLabelForClassification) {
  Dataset data(Task::BinaryClassification, {{"a", ColumnType::Numeric, 0}});
  data.add_row({1.0f}, 0.5);
  EXPECT_THROW(data.validate(), InvalidArgument);
}

TEST(Dataset, ValidateCatchesNonFiniteRegressionLabel) {
  Dataset data(Task::Regression, {{"a", ColumnType::Numeric, 0}});
  data.add_row({1.0f}, std::numeric_limits<double>::infinity());
  EXPECT_THROW(data.validate(), InvalidArgument);
}

TEST(Dataset, MissingValuesAllowed) {
  Dataset data(Task::Regression, {{"a", ColumnType::Numeric, 0},
                                  {"c", ColumnType::Categorical, 2}});
  data.add_row({kNaN, kNaN}, 1.0);
  data.add_row({1.0f, 1.0f}, 2.0);
  EXPECT_NO_THROW(data.validate());
  EXPECT_TRUE(Dataset::is_missing(data.value(0, 0)));
  EXPECT_TRUE(Dataset::is_missing(data.value(0, 1)));
}

TEST(Dataset, BulkColumnConstruction) {
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0},
                                  {"y", ColumnType::Numeric, 0}});
  data.set_column(0, {1.0f, 2.0f, 3.0f});
  data.set_column(1, {4.0f, 5.0f, 6.0f});
  data.set_labels({0.1, 0.2, 0.3});
  EXPECT_NO_THROW(data.validate());
  EXPECT_EQ(data.n_rows(), 3u);
}

TEST(Dataset, BulkColumnLengthMismatchRejected) {
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0},
                                  {"y", ColumnType::Numeric, 0}});
  data.set_column(0, {1.0f, 2.0f, 3.0f});
  EXPECT_THROW(data.set_column(1, {4.0f}), InvalidArgument);
}

TEST(Dataset, ClassPriors) {
  Dataset data = small_binary();
  auto priors = data.class_priors();
  ASSERT_EQ(priors.size(), 2u);
  EXPECT_DOUBLE_EQ(priors[0], 0.5);
  EXPECT_DOUBLE_EQ(priors[1], 0.5);
}

TEST(Dataset, ClassPriorsRejectedForRegression) {
  Dataset data(Task::Regression, {{"a", ColumnType::Numeric, 0}});
  data.add_row({1.0f}, 2.0);
  EXPECT_THROW(data.class_priors(), InvalidArgument);
}

TEST(Dataset, MultiClassCount) {
  Dataset data(Task::MultiClassification, {{"a", ColumnType::Numeric, 0}});
  for (int i = 0; i < 6; ++i) data.add_row({static_cast<float>(i)}, i % 3);
  EXPECT_EQ(data.n_classes(), 3);
  EXPECT_NO_THROW(data.validate());
}

TEST(DataView, FullViewCoversAllRows) {
  Dataset data = small_binary();
  DataView view(data);
  EXPECT_EQ(view.n_rows(), 4u);
  EXPECT_EQ(view.row_index(2), 2u);
  EXPECT_DOUBLE_EQ(view.label(1), 1.0);
}

TEST(DataView, SubsetView) {
  Dataset data = small_binary();
  DataView view(data, {3, 1});
  EXPECT_EQ(view.n_rows(), 2u);
  EXPECT_FLOAT_EQ(view.value(0, 0), 4.0f);
  EXPECT_DOUBLE_EQ(view.label(1), 1.0);
}

TEST(DataView, PrefixTruncates) {
  Dataset data = small_binary();
  DataView view(data, {2, 0, 3, 1});
  DataView p = view.prefix(2);
  EXPECT_EQ(p.n_rows(), 2u);
  EXPECT_EQ(p.row_index(0), 2u);
  EXPECT_EQ(p.row_index(1), 0u);
}

TEST(DataView, PrefixClampsToSize) {
  Dataset data = small_binary();
  DataView view(data);
  EXPECT_EQ(view.prefix(100).n_rows(), 4u);
}

TEST(DataView, LabelsMaterialized) {
  Dataset data = small_binary();
  DataView view(data, {1, 2});
  auto labels = view.labels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_DOUBLE_EQ(labels[0], 1.0);
  EXPECT_DOUBLE_EQ(labels[1], 1.0);
}

TEST(Dataset, MaterializeCopiesRowsAndSchema) {
  Dataset data = small_binary();
  DataView view(data, {3, 1});
  Dataset copy = materialize(view);
  EXPECT_EQ(copy.n_rows(), 2u);
  EXPECT_EQ(copy.n_cols(), 2u);
  EXPECT_EQ(copy.column_info(1).type, ColumnType::Categorical);
  EXPECT_FLOAT_EQ(copy.value(0, 0), 4.0f);
  EXPECT_DOUBLE_EQ(copy.label(1), 1.0);
  EXPECT_NO_THROW(copy.validate());
}

TEST(Dataset, MaterializeEmptyRejected) {
  Dataset data = small_binary();
  DataView view(data, std::vector<std::uint32_t>{});
  EXPECT_THROW(materialize(view), InvalidArgument);
}

TEST(Dataset, TaskNames) {
  EXPECT_STREQ(task_name(Task::BinaryClassification), "binary");
  EXPECT_STREQ(task_name(Task::MultiClassification), "multiclass");
  EXPECT_STREQ(task_name(Task::Regression), "regression");
  EXPECT_TRUE(is_classification(Task::BinaryClassification));
  EXPECT_FALSE(is_classification(Task::Regression));
}

}  // namespace
}  // namespace flaml
