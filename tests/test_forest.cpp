#include "forest/forest.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/split.h"
#include "metrics/metrics.h"

namespace flaml {
namespace {

Dataset binary_data(std::size_t n = 500, std::uint64_t seed = 1) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = n;
  spec.n_features = 8;
  spec.class_sep = 1.5;
  spec.seed = seed;
  return make_classification(spec);
}

TEST(Forest, BinaryClassifierBeatsChance) {
  Dataset data = binary_data();
  Rng rng(1);
  auto split = holdout_split(DataView(data), 0.3, rng);
  ForestParams params;
  params.n_trees = 30;
  params.max_features = 0.7;
  ForestModel model = train_forest(split.train, params);
  Predictions pred = model.predict(split.test);
  EXPECT_GT(roc_auc(pred.prob1(), split.test.labels()), 0.85);
}

TEST(Forest, ProbabilitiesNormalized) {
  SyntheticSpec spec;
  spec.task = Task::MultiClassification;
  spec.n_classes = 3;
  spec.n_rows = 300;
  spec.n_features = 5;
  Dataset data = make_classification(spec);
  ForestParams params;
  params.n_trees = 10;
  ForestModel model = train_forest(DataView(data), params);
  Predictions pred = model.predict(DataView(data));
  for (std::size_t i = 0; i < pred.n_rows(); ++i) {
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) {
      EXPECT_GE(pred.prob(i, c), 0.0);
      sum += pred.prob(i, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Forest, RegressionFitsFriedman) {
  Dataset data = make_friedman1(700, 8, 0.5, 5);
  Rng rng(2);
  auto split = holdout_split(DataView(data), 0.25, rng);
  ForestParams params;
  params.n_trees = 40;
  params.max_features = 0.8;
  ForestModel model = train_forest(split.train, params);
  Predictions pred = model.predict(split.test);
  EXPECT_GT(r2(pred.values, split.test.labels()), 0.6);
}

TEST(Forest, ExtraTreesLearns) {
  Dataset data = binary_data(500, 7);
  Rng rng(3);
  auto split = holdout_split(DataView(data), 0.3, rng);
  ForestParams params;
  params.n_trees = 30;
  params.extra_trees = true;
  params.max_features = 0.7;
  ForestModel model = train_forest(split.train, params);
  Predictions pred = model.predict(split.test);
  EXPECT_GT(roc_auc(pred.prob1(), split.test.labels()), 0.8);
}

TEST(Forest, MoreTreesReduceVariance) {
  // Forests with different seeds agree more with many trees than few.
  // Averaged over several seed pairs: any single pair can invert by luck.
  Dataset data = binary_data(400, 11);
  DataView view(data);
  auto avg_disagreement = [&](int n_trees) {
    double total = 0.0;
    int pairs = 0;
    for (std::uint64_t seed = 100; seed <= 900; seed += 200, ++pairs) {
      ForestParams a, b;
      a.n_trees = b.n_trees = n_trees;
      a.max_features = b.max_features = 0.5;
      a.seed = seed;
      b.seed = seed + 100;
      Predictions pa = train_forest(view, a).predict(view);
      Predictions pb = train_forest(view, b).predict(view);
      double diff = 0.0;
      for (std::size_t i = 0; i < pa.values.size(); ++i) {
        diff += std::fabs(pa.values[i] - pb.values[i]);
      }
      total += diff / static_cast<double>(pa.values.size());
    }
    return total / static_cast<double>(pairs);
  };
  EXPECT_LT(avg_disagreement(40), avg_disagreement(1));
}

TEST(Forest, EntropyCriterionWorks) {
  Dataset data = binary_data(400, 13);
  ForestParams params;
  params.n_trees = 15;
  params.criterion = SplitCriterion::Entropy;
  ForestModel model = train_forest(DataView(data), params);
  Predictions pred = model.predict(DataView(data));
  EXPECT_GT(roc_auc(pred.prob1(), data.labels()), 0.9);  // training fit
}

TEST(Forest, TimeCapBoundsTreeCount) {
  Dataset data = binary_data(2000, 17);
  ForestParams params;
  params.n_trees = 100000;
  params.max_seconds = 0.1;
  ForestModel model = train_forest(DataView(data), params);
  EXPECT_GE(model.n_trees(), 1u);
  EXPECT_LT(model.n_trees(), 100000u);
}

TEST(Forest, PredictBeforeTrainRejected) {
  Dataset data = binary_data(50);
  ForestModel model;
  EXPECT_THROW(model.predict(DataView(data)), InvalidArgument);
}

TEST(Forest, RejectsZeroTrees) {
  Dataset data = binary_data(50);
  ForestParams params;
  params.n_trees = 0;
  EXPECT_THROW(train_forest(DataView(data), params), InvalidArgument);
}

}  // namespace
}  // namespace flaml
