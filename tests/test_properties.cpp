// Cross-module property tests for the invariants called out in DESIGN.md §5.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>

#include "automl/automl.h"
#include "boosting/gbdt.h"
#include "common/clock.h"
#include "data/generators.h"
#include "tree/binning.h"

namespace flaml {
namespace {

// Binning: bin_for is monotone non-decreasing in the value.
class BinningMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(BinningMonotoneTest, BinForIsMonotone) {
  const int max_bin = GetParam();
  Rng rng(11);
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0}});
  std::vector<float> values(3000);
  for (auto& v : values) v = static_cast<float>(rng.normal() * 10.0);
  data.set_column(0, std::move(values));
  data.set_labels(std::vector<double>(3000, 0.0));
  BinMapper mapper = BinMapper::fit(DataView(data), max_bin);
  const FeatureBins& fb = mapper.feature(0);
  int prev = -1;
  for (float v = -40.0f; v <= 40.0f; v += 0.37f) {
    int b = fb.bin_for(v);
    EXPECT_GE(b, prev);
    EXPECT_LT(b, fb.n_value_bins);
    prev = b;
  }
}

INSTANTIATE_TEST_SUITE_P(MaxBins, BinningMonotoneTest,
                         ::testing::Values(4, 16, 64, 255, 1023));

// Observation 3: GBDT trial cost grows with the cost-related
// hyperparameters. Checked as a cost ordering over a tree_num sweep.
TEST(CostModel, GbdtCostMonotoneInTreeNum) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 3000;
  spec.n_features = 12;
  spec.seed = 21;
  Dataset data = make_classification(spec);
  DataView view(data);
  std::vector<double> costs;
  for (int trees : {5, 20, 80}) {
    WallClock clock;
    GBDTParams params;
    params.n_trees = trees;
    params.max_leaves = 15;
    train_gbdt(view, nullptr, params);
    costs.push_back(clock.now());
  }
  EXPECT_LT(costs[0], costs[2]);
  EXPECT_LT(costs[1], costs[2]);
}

// The ECI-based learner proposer must allocate more trials to the cheap
// learner when errors are comparable (Property 4 through sampling weights).
TEST(Controller, CheapLearnersGetMoreTrials) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 2000;
  spec.n_features = 10;
  spec.seed = 23;
  Dataset data = make_classification(spec);
  AutoML automl;
  AutoMLOptions options;
  options.time_budget_seconds = 1.5;
  options.initial_sample_size = 400;
  options.estimator_list = {"lgbm", "catboost"};  // 1x vs 15x cost multiplier
  options.seed = 7;
  automl.fit(data, options);
  std::map<std::string, int> trials;
  for (const auto& r : automl.history()) trials[r.learner] += 1;
  EXPECT_GT(trials["lgbm"], trials["catboost"]);
}

// Sample size never decreases within a learner's run except at restarts
// (which reset to the initial size).
TEST(Controller, SampleSizeMonotoneUpToRestarts) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 6000;
  spec.n_features = 8;
  spec.seed = 29;
  Dataset data = make_classification(spec);
  AutoML automl;
  AutoMLOptions options;
  options.time_budget_seconds = 1.5;
  options.initial_sample_size = 300;
  options.estimator_list = {"lgbm"};
  options.seed = 9;
  automl.fit(data, options);
  std::size_t prev = 0;
  for (const auto& r : automl.history()) {
    if (r.sample_size < prev) {
      // Only allowed as a restart reset to the initial size.
      EXPECT_EQ(r.sample_size, 300u);
    }
    prev = r.sample_size;
  }
}

// GBDT predictions are always finite, whatever the configuration.
TEST(Robustness, GbdtPredictionsFiniteAcrossConfigs) {
  SyntheticSpec spec;
  spec.task = Task::Regression;
  spec.n_rows = 400;
  spec.n_features = 6;
  spec.label_noise = 1.0;
  spec.seed = 31;
  Dataset data = make_regression(spec);
  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    GBDTParams params;
    params.n_trees = 1 + static_cast<int>(rng.uniform_index(50));
    params.max_leaves = 2 + static_cast<int>(rng.uniform_index(100));
    params.learning_rate = rng.uniform(0.01, 1.0);
    params.reg_alpha = rng.uniform(0.0, 1.0);
    params.reg_lambda = rng.uniform(1e-10, 1.0);
    params.subsample = rng.uniform(0.6, 1.0);
    GBDTModel model = train_gbdt(DataView(data), nullptr, params);
    for (double v : model.predict(DataView(data)).values) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

// Truncate keeps exactly the first n_keep iterations.
TEST(Gbdt, TruncateKeepsPrefix) {
  SyntheticSpec spec;
  spec.task = Task::MultiClassification;
  spec.n_classes = 3;
  spec.n_rows = 300;
  spec.n_features = 5;
  spec.seed = 37;
  Dataset data = make_classification(spec);
  GBDTParams params;
  params.n_trees = 10;
  GBDTModel model = train_gbdt(DataView(data), nullptr, params);
  ASSERT_EQ(model.n_iterations(), 10u);
  model.truncate(4);
  EXPECT_EQ(model.n_iterations(), 4u);
  EXPECT_EQ(model.trees().size(), 12u);  // 4 iterations x 3 classes
  // Truncating beyond the current size is a no-op.
  model.truncate(100);
  EXPECT_EQ(model.n_iterations(), 4u);
}

// Budget accounting: the sum of trial costs never exceeds elapsed time.
TEST(Controller, TrialCostsSumBelowElapsed) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 1500;
  spec.n_features = 8;
  spec.seed = 41;
  Dataset data = make_classification(spec);
  AutoML automl;
  AutoMLOptions options;
  options.time_budget_seconds = 0.8;
  options.initial_sample_size = 300;
  options.seed = 11;
  automl.fit(data, options);
  const TrialHistory& history = automl.history();
  ASSERT_FALSE(history.empty());
  double total_cost = 0.0;
  for (const auto& r : history) total_cost += r.cost;
  EXPECT_LE(total_cost, history.back().finished_at * 1.05 + 0.05);
}

}  // namespace
}  // namespace flaml
