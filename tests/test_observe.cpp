// The observe subsystem: trace events + sinks + tracer handle, the metrics
// registry, the trace validator, and the end-to-end schema of a traced
// AutoML::fit — including the killed-trial semantics (a learner that burns
// budget without finishing must be de-prioritized by the ECI bookkeeping,
// visibly so in the trace).
#include "observe/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "automl/automl.h"
#include "common/error.h"
#include "data/generators.h"
#include "observe/metrics.h"
#include "observe/trace_check.h"
#include "support/stub_learner.h"

namespace flaml {
namespace {

using observe::JsonlTraceSink;
using observe::MemoryTraceSink;
using observe::MetricsRegistry;
using observe::TraceEvent;
using observe::Tracer;

TraceEvent make_event(const char* type, double t) {
  TraceEvent event;
  event.type = type;
  event.time = t;
  event.fields = JsonValue::make_object();
  return event;
}

// --- TraceEvent JSON form -------------------------------------------------

TEST(TraceEvent, JsonRoundTrip) {
  TraceEvent event = make_event("trial_finished", 1.25);
  event.fields.set("learner", JsonValue::make_string("lgbm"));
  event.fields.set("cost", JsonValue::make_number(0.5));

  JsonValue json = observe::to_json(event);
  EXPECT_EQ(json.at("type").str, "trial_finished");
  EXPECT_DOUBLE_EQ(json.at("t").number, 1.25);
  EXPECT_EQ(json.at("learner").str, "lgbm");

  TraceEvent back = observe::event_from_json(json);
  EXPECT_EQ(back.type, event.type);
  EXPECT_DOUBLE_EQ(back.time, event.time);
  EXPECT_EQ(back.fields.at("learner").str, "lgbm");
  EXPECT_DOUBLE_EQ(back.fields.at("cost").number, 0.5);
  // "type"/"t" never leak into the payload.
  EXPECT_EQ(back.fields.find("type"), nullptr);
  EXPECT_EQ(back.fields.find("t"), nullptr);
}

TEST(TraceEvent, ErrorFieldEncodesInfinityAsString) {
  const JsonValue finite = observe::json_error_field(0.25);
  ASSERT_TRUE(finite.is_number());
  EXPECT_DOUBLE_EQ(observe::error_field_value(finite), 0.25);

  const JsonValue inf =
      observe::json_error_field(std::numeric_limits<double>::infinity());
  ASSERT_TRUE(inf.is_string());
  EXPECT_EQ(inf.str, "inf");
  EXPECT_TRUE(std::isinf(observe::error_field_value(inf)));
}

// --- Sinks and the Tracer handle ------------------------------------------

TEST(MemoryTraceSink, AccumulatesAndFiltersByType) {
  MemoryTraceSink sink;
  sink.emit(make_event("a", 0.0));
  sink.emit(make_event("b", 0.1));
  sink.emit(make_event("a", 0.2));
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.snapshot().size(), 3u);
  EXPECT_EQ(sink.of_type("a").size(), 2u);
  EXPECT_EQ(sink.of_type("missing").size(), 0u);
}

TEST(JsonlTraceSink, WritesOneParseableObjectPerLine) {
  std::ostringstream out;
  {
    JsonlTraceSink sink(out);
    TraceEvent event = make_event("trial_finished", 0.5);
    event.fields.set("error", observe::json_error_field(
                                  std::numeric_limits<double>::infinity()));
    sink.emit(make_event("run_started", 0.0));
    sink.emit(event);
    EXPECT_EQ(sink.n_events(), 2u);
  }
  std::istringstream in(out.str());
  std::string line;
  std::size_t n_lines = 0;
  while (std::getline(in, line)) {
    ++n_lines;
    const JsonValue parsed = parse_json(line);  // throws on malformed JSON
    EXPECT_TRUE(parsed.find("type") != nullptr) << line;
    EXPECT_TRUE(parsed.find("t") != nullptr) << line;
    // Compact: a line break inside an event would split the JSONL record.
    EXPECT_EQ(line.find('\n'), std::string::npos);
  }
  EXPECT_EQ(n_lines, 2u);
}

TEST(Tracer, DefaultConstructedIsOffAndEmitIsSafe) {
  Tracer off;
  EXPECT_FALSE(static_cast<bool>(off));
  off.emit("anything");  // must be a no-op, not a crash
}

TEST(Tracer, WithStampsContextFieldsIntoEveryEvent) {
  auto sink = std::make_shared<MemoryTraceSink>();
  Tracer tracer{observe::TraceSinkPtr(sink)};
  EXPECT_TRUE(static_cast<bool>(tracer));

  Tracer scoped = tracer.with("learner", "stub_fast");
  scoped.emit("flow2_tell");

  JsonValue fields = JsonValue::make_object();
  fields.set("learner", JsonValue::make_string("explicit_wins"));
  scoped.emit("flow2_tell", std::move(fields));

  auto events = sink->of_type("flow2_tell");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].fields.at("learner").str, "stub_fast");
  EXPECT_EQ(events[1].fields.at("learner").str, "explicit_wins");
  EXPECT_GE(events[1].time, events[0].time);
}

// --- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndHistograms) {
  MetricsRegistry metrics;
  EXPECT_DOUBLE_EQ(metrics.value("untouched"), 0.0);

  metrics.add("trials_total");
  metrics.add("trials_total");
  metrics.add("spent", 2.5);
  metrics.set("best_error", 0.3);
  metrics.set("best_error", 0.2);  // gauge overwrites
  EXPECT_DOUBLE_EQ(metrics.value("trials_total"), 2.0);
  EXPECT_DOUBLE_EQ(metrics.value("spent"), 2.5);
  EXPECT_DOUBLE_EQ(metrics.value("best_error"), 0.2);

  for (double v : {4.0, 1.0, 3.0, 2.0, 5.0}) metrics.observe("trial_cost", v);
  const auto stats = metrics.histogram("trial_cost");
  EXPECT_EQ(stats.n, 5u);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 5.0);
  EXPECT_DOUBLE_EQ(stats.sum, 15.0);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_DOUBLE_EQ(stats.p50, 3.0);
  EXPECT_DOUBLE_EQ(stats.p90, 5.0);
  EXPECT_EQ(metrics.histogram("never_observed").n, 0u);

  const JsonValue json = metrics.to_json();
  EXPECT_DOUBLE_EQ(json.at("counters").at("trials_total").number, 2.0);
  EXPECT_DOUBLE_EQ(json.at("histograms").at("trial_cost").at("p90").number, 5.0);

  metrics.clear();
  EXPECT_DOUBLE_EQ(metrics.value("trials_total"), 0.0);
  EXPECT_EQ(metrics.histogram("trial_cost").n, 0u);
}

TEST(MetricsRegistry, RejectsNonFiniteSamples) {
  MetricsRegistry metrics;
  EXPECT_THROW(
      metrics.observe("trial_error", std::numeric_limits<double>::infinity()),
      InvalidArgument);
}

// --- Trace validation -----------------------------------------------------

std::vector<TraceEvent> minimal_valid_trace() {
  std::vector<TraceEvent> events;
  events.push_back(make_event("run_started", 0.0));

  TraceEvent started = make_event("trial_started", 0.1);
  started.fields.set("learner", JsonValue::make_string("stub"));
  started.fields.set("sample_size", JsonValue::make_number(16));
  events.push_back(started);

  TraceEvent finished = make_event("trial_finished", 0.2);
  finished.fields.set("learner", JsonValue::make_string("stub"));
  finished.fields.set("iteration", JsonValue::make_number(0));
  finished.fields.set("sample_size", JsonValue::make_number(16));
  finished.fields.set("cost", JsonValue::make_number(0.05));
  finished.fields.set("status", JsonValue::make_string("ok"));
  finished.fields.set("error", JsonValue::make_number(0.4));
  events.push_back(finished);

  TraceEvent summary = make_event("run_summary", 0.3);
  summary.fields.set("n_trials", JsonValue::make_number(1));
  summary.fields.set("best_learner", JsonValue::make_string("stub"));
  summary.fields.set("best_error", JsonValue::make_number(0.4));
  summary.fields.set("metrics", JsonValue::make_object());
  events.push_back(summary);
  return events;
}

TEST(TraceCheck, AcceptsAMinimalValidTrace) {
  const auto result = observe::check_trace_events(minimal_valid_trace());
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_EQ(result.n_trials, 1u);
  EXPECT_DOUBLE_EQ(result.best_error, 0.4);
}

TEST(TraceCheck, RejectsStructuralViolations) {
  // run_started must come first.
  {
    auto events = minimal_valid_trace();
    std::swap(events[0], events[1]);
    EXPECT_FALSE(observe::check_trace_events(events).ok());
  }
  // Exactly one run_summary, and it must be last.
  {
    auto events = minimal_valid_trace();
    events.pop_back();
    EXPECT_FALSE(observe::check_trace_events(events).ok());
  }
  // Started/finished counts must match.
  {
    auto events = minimal_valid_trace();
    events.insert(events.end() - 1, events[1]);  // extra trial_started
    EXPECT_FALSE(observe::check_trace_events(events).ok());
  }
  // A killed trial must NOT report a finite error.
  {
    auto events = minimal_valid_trace();
    events[2].fields.set("status", JsonValue::make_string("killed"));
    EXPECT_FALSE(observe::check_trace_events(events).ok());
  }
  // sample_doubled must grow the sample.
  {
    auto events = minimal_valid_trace();
    TraceEvent doubled = make_event("sample_doubled", 0.15);
    doubled.fields.set("learner", JsonValue::make_string("stub"));
    doubled.fields.set("from", JsonValue::make_number(32));
    doubled.fields.set("to", JsonValue::make_number(16));
    events.insert(events.end() - 1, doubled);
    EXPECT_FALSE(observe::check_trace_events(events).ok());
  }
  // run_summary totals must match the events.
  {
    auto events = minimal_valid_trace();
    events.back().fields.set("n_trials", JsonValue::make_number(7));
    EXPECT_FALSE(observe::check_trace_events(events).ok());
  }
}

TEST(TraceCheck, ReportsParseErrorsWithLineNumbers) {
  std::istringstream in("{\"type\": \"run_started\", \"t\": 0}\nnot json\n");
  const auto result = observe::check_trace(in);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].find("line 2"), std::string::npos)
      << result.errors[0];
}

// --- Traced AutoML runs ---------------------------------------------------

Dataset tiny_binary(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 100;
  spec.n_features = 5;
  spec.seed = seed;
  return make_classification(spec);
}

TrialCostModel stub_cost_model() {
  return [](const Learner& learner, const Config& config, std::size_t sample_size) {
    return learner.initial_cost_multiplier() *
           (0.05 + 0.001 * static_cast<double>(sample_size) +
            0.002 * config.at("units"));
  };
}

AutoMLOptions stub_options(std::uint64_t seed, std::size_t max_iterations) {
  AutoMLOptions options;
  options.time_budget_seconds = 1e6;
  options.max_iterations = max_iterations;
  options.initial_sample_size = 16;
  options.resampling = ResamplingPolicy::ForceHoldout;
  options.estimator_list = {"stub_fast", "stub_slow"};
  options.trial_cost_model = stub_cost_model();
  options.seed = seed;
  return options;
}

void add_stub_lineup(AutoML& automl) {
  automl.add_learner(std::make_shared<testing::StubLearner>("stub_fast", 1.0));
  automl.add_learner(std::make_shared<testing::StubLearner>("stub_slow", 15.0));
}

TEST(TracedFit, EmitsEveryEventTypeAndValidates) {
  Dataset data = tiny_binary(11);
  auto sink = std::make_shared<MemoryTraceSink>();
  AutoMLOptions options = stub_options(5, /*max_iterations=*/30);
  options.trace_sink = sink;

  AutoML automl;
  add_stub_lineup(automl);
  automl.fit(data, options);

  const auto result = observe::check_trace_events(sink->snapshot());
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_EQ(result.n_trials, 30u);
  EXPECT_DOUBLE_EQ(result.best_error, automl.best_error());

  // All paper decisions show up (30 iterations from sample 16 on ~90 train
  // rows is enough for at least one sample doubling per learner).
  for (const char* type :
       {"run_started", "resampling_proposed", "learner_proposed",
        "sample_doubled", "trial_started", "trial_finished", "flow2_tell",
        "run_summary"}) {
    EXPECT_GT(result.by_type.count(type), 0u) << type;
  }

  // learner_proposed carries the full ECI vector with one entry per learner.
  const auto proposals = sink->of_type("learner_proposed");
  ASSERT_FALSE(proposals.empty());
  const JsonValue& eci = proposals.back().fields.at("eci");
  ASSERT_EQ(eci.array.size(), 2u);
  for (const auto& entry : eci.array) {
    EXPECT_TRUE(entry.find("learner") != nullptr);
    EXPECT_TRUE(entry.find("eci") != nullptr);
    EXPECT_TRUE(entry.find("eci1") != nullptr);
    EXPECT_TRUE(entry.find("eci2") != nullptr);
  }

  // The metrics registry agrees with the history.
  const auto& metrics = automl.metrics();
  EXPECT_DOUBLE_EQ(metrics.value("trials_total"), 30.0);
  EXPECT_DOUBLE_EQ(metrics.value("trials_ok"), 30.0);
  EXPECT_DOUBLE_EQ(metrics.value("trials.stub_fast") +
                       metrics.value("trials.stub_slow"),
                   30.0);
  EXPECT_EQ(metrics.histogram("trial_cost").n, 30u);
  EXPECT_DOUBLE_EQ(metrics.value("best_error"), automl.best_error());
}

TEST(TracedFit, JsonlRoundTripValidates) {
  Dataset data = tiny_binary(13);
  std::ostringstream out;
  auto sink = std::make_shared<JsonlTraceSink>(out);
  AutoMLOptions options = stub_options(6, /*max_iterations=*/10);
  options.trace_sink = sink;

  AutoML automl;
  add_stub_lineup(automl);
  automl.fit(data, options);

  std::istringstream in(out.str());
  const auto result = observe::check_trace(in);
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_EQ(result.n_trials, 10u);
}

TEST(TracedFit, UntracedRunsProduceIdenticalHistories) {
  // The trace must be an observer: attaching a sink may not perturb a single
  // search decision.
  Dataset data = tiny_binary(17);
  AutoMLOptions options = stub_options(9, /*max_iterations=*/15);

  AutoML plain;
  add_stub_lineup(plain);
  plain.fit(data, options);

  AutoMLOptions traced_options = options;
  traced_options.trace_sink = std::make_shared<MemoryTraceSink>();
  AutoML traced;
  add_stub_lineup(traced);
  traced.fit(data, traced_options);

  ASSERT_EQ(plain.history().size(), traced.history().size());
  for (std::size_t i = 0; i < plain.history().size(); ++i) {
    EXPECT_EQ(plain.history()[i].learner, traced.history()[i].learner) << i;
    EXPECT_DOUBLE_EQ(plain.history()[i].error, traced.history()[i].error) << i;
    EXPECT_DOUBLE_EQ(plain.history()[i].cost, traced.history()[i].cost) << i;
  }
}

// A learner whose every fit overruns its deadline: records cost, returns no
// model. The paper's killed-trial semantics say its cost must still be
// charged, so the ECI bookkeeping de-prioritizes it.
class DeadlineLearner final : public Learner {
 public:
  const std::string& name() const override {
    static const std::string n = "overrunner";
    return n;
  }
  bool supports(Task task) const override {
    return task == Task::BinaryClassification;
  }
  ConfigSpace space(Task, std::size_t) const override {
    ConfigSpace s;
    s.add_float("slope", -4.0, 4.0, 0.5);
    s.add_int("units", 4, 256, 4, /*log_scale=*/true, /*cost_related=*/true);
    return s;
  }
  std::unique_ptr<Model> train(const TrainContext&, const Config&) const override {
    throw DeadlineExceeded("synthetic overrun");
  }
  double initial_cost_multiplier() const override { return 1.0; }
};

TEST(TracedFit, KilledTrialsChargeCostAndDePrioritizeTheLearner) {
  Dataset data = tiny_binary(19);
  auto sink = std::make_shared<MemoryTraceSink>();
  AutoMLOptions options = stub_options(3, /*max_iterations=*/24);
  options.estimator_list = {"stub_fast", "overrunner"};
  options.learner_choice = LearnerChoice::EciGreedy;
  options.trace_sink = sink;

  AutoML automl;
  automl.add_learner(std::make_shared<testing::StubLearner>("stub_fast", 1.0));
  automl.add_learner(std::make_shared<DeadlineLearner>());
  automl.fit(data, options);

  // The trace still validates (killed trials report error == "inf").
  const auto result = observe::check_trace_events(sink->snapshot());
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0]);

  // Killed trials are visible as such, with their cost charged.
  std::size_t n_killed = 0;
  for (const auto& event : sink->of_type("trial_finished")) {
    if (event.fields.at("status").str != "killed") continue;
    ++n_killed;
    EXPECT_EQ(event.fields.at("learner").str, "overrunner");
    EXPECT_TRUE(
        std::isinf(observe::error_field_value(event.fields.at("error"))));
    EXPECT_GT(event.fields.at("cost").number, 0.0);
  }
  ASSERT_GT(n_killed, 0u);
  EXPECT_DOUBLE_EQ(automl.metrics().value("trials_killed"),
                   static_cast<double>(n_killed));

  // ECI1 for the overrunner grows as killed trials burn budget without a
  // best update: K0 − K1 is monotone in spent cost (visible in successive
  // learner_proposed ECI vectors).
  std::vector<double> overrunner_eci1;
  for (const auto& event : sink->of_type("learner_proposed")) {
    for (const auto& entry : event.fields.at("eci").array) {
      if (entry.at("learner").str != "overrunner") continue;
      const double eci1 = observe::error_field_value(entry.at("eci1"));
      const double n_trials = entry.at("n_trials").number;
      if (std::isfinite(eci1) && n_trials > 0) overrunner_eci1.push_back(eci1);
    }
  }
  ASSERT_GE(overrunner_eci1.size(), 2u);
  EXPECT_GT(overrunner_eci1.back(), overrunner_eci1.front());

  // De-prioritization: the greedy policy stops picking the overrunner, so
  // the healthy learner gets the bulk of the budget.
  const auto& metrics = automl.metrics();
  EXPECT_GT(metrics.value("trials.stub_fast"),
            metrics.value("trials.overrunner"));
  EXPECT_DOUBLE_EQ(metrics.value("trials_total"), 24.0);
  EXPECT_GT(metrics.value("trials_ok"), 0.0);
}

}  // namespace
}  // namespace flaml
