// Golden end-to-end search regression: a fixed-seed stub-lineup search is a
// pure function of its options, so its ENTIRE trial history — every learner
// choice, config, sample size and the exact double bits of every error and
// cost — can be pinned as one FNV-1a digest. Any unintended change to the
// proposer, FLOW2, the ECI bookkeeping, the RNG, the sample schedule or the
// trial runner shows up here as a digest mismatch, with the full history
// printed for diffing.
//
// If a change to the search loop is INTENTIONAL, re-pin the constants below
// from the test's failure output and call the change out in the PR.
#include "automl/automl.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "support/history_digest.h"
#include "support/resume_test_util.h"

namespace flaml {
namespace {

using testing::add_resume_lineup;
using testing::canonical_history;
using testing::expect_history_digest;
using testing::history_digest;
using testing::resume_options;
using testing::resume_tiny_binary;

void expect_golden(const AutoML& automl, std::uint64_t expected_digest,
                   const std::string& expected_best_learner,
                   const std::string& what) {
  EXPECT_EQ(automl.best_learner(), expected_best_learner) << what;
  expect_history_digest(automl.history(), expected_digest, what);
}

// Pinned digests of the seed-42, 15-trial stub search (serial and
// n_parallel=2). Re-pin ONLY for intentional search-behavior changes.
constexpr std::uint64_t kSerialDigest = 0xfdd0fbff7852ce12ULL;
constexpr const char* kSerialBestLearner = "stub_fast";
constexpr std::uint64_t kParallelDigest = 0x2ef12b227d53ce3eULL;
constexpr const char* kParallelBestLearner = "stub_fast";

TEST(GoldenSearch, SerialHistoryDigestIsPinned) {
  const Dataset data = resume_tiny_binary(1001);
  AutoML automl;
  add_resume_lineup(automl);
  automl.fit(data, resume_options(42, 15));
  ASSERT_EQ(automl.history().size(), 15u);
  expect_golden(automl, kSerialDigest, kSerialBestLearner, "serial golden");
}

TEST(GoldenSearch, ParallelHistoryDigestIsPinned) {
  const Dataset data = resume_tiny_binary(1001);
  AutoMLOptions options = resume_options(42, 15);
  options.n_parallel = 2;
  AutoML automl;
  add_resume_lineup(automl);
  automl.fit(data, options);
  ASSERT_EQ(automl.history().size(), 15u);
  expect_golden(automl, kParallelDigest, kParallelBestLearner,
                "parallel golden");
}

// ---------------------------------------------------------------------------
// Substrate-cache transparency goldens: with REAL tree learners (the stub
// lineup never bins data), the search history with reuse_binned_data on must
// be digest-identical to the history with it off. The cache serves shared
// BinMapper fits keyed by the exact row set, so any divergence here means a
// cached substrate differed from a fresh fit+encode — a correctness bug, not
// something to re-pin.

// Pure function of (learner, config, sample size): both runs being compared
// see identical search decisions, so a history divergence can only come from
// the trained models themselves.
TrialCostModel real_cost_model() {
  return [](const Learner& learner, const Config& config,
            std::size_t sample_size) {
    double config_sum = 0.0;
    for (const auto& [name, value] : config) config_sum += std::abs(value);
    return learner.initial_cost_multiplier() *
               (0.05 + 0.001 * static_cast<double>(sample_size)) +
           1e-6 * config_sum;
  };
}

AutoMLOptions real_options(bool reuse_binned_data, ResamplingPolicy resampling,
                           std::size_t n_parallel) {
  AutoMLOptions options;
  options.time_budget_seconds = 1e6;  // iteration budget terminates, not time
  options.max_iterations = 10;
  options.initial_sample_size = 32;
  options.resampling = resampling;
  options.estimator_list = {"lgbm", "rf"};
  options.trial_cost_model = real_cost_model();
  options.seed = 7;
  options.n_parallel = n_parallel;
  options.reuse_binned_data = reuse_binned_data;
  return options;
}

void expect_cache_transparent(ResamplingPolicy resampling,
                              std::size_t n_parallel, const std::string& what) {
  const Dataset data = resume_tiny_binary(2024);
  AutoML cached;
  cached.fit(data, real_options(true, resampling, n_parallel));
  AutoML fresh;
  fresh.fit(data, real_options(false, resampling, n_parallel));
  ASSERT_FALSE(cached.history().empty()) << what;
  std::ostringstream got;
  got << std::hex << history_digest(cached.history());
  std::ostringstream want;
  want << std::hex << history_digest(fresh.history());
  EXPECT_EQ(got.str(), want.str())
      << what << ": reuse_binned_data changed the search history — the "
      << "substrate cache must be byte-transparent.\nCached history:\n"
      << canonical_history(cached.history()) << "Fresh history:\n"
      << canonical_history(fresh.history());
  EXPECT_EQ(cached.best_learner(), fresh.best_learner()) << what;
  EXPECT_DOUBLE_EQ(cached.best_error(), fresh.best_error()) << what;
  // The cached run actually exercised the cache; the fresh run never built one.
  EXPECT_GT(cached.metrics().value("substrate_cache.hits"), 0.0) << what;
  EXPECT_DOUBLE_EQ(fresh.metrics().value("substrate_cache.hits"), 0.0) << what;
}

// ---------------------------------------------------------------------------
// Histogram-kernel goldens: the packed SIMD kernels are documented to be
// bit-identical to the legacy scalar build (src/tree/histogram.h), so ONE
// pinned digest must cover every FLAML_HISTOGRAM_KERNEL setting. These runs
// use real tree learners — the stub lineup never bins data — and pin:
//   * scalar-forced == the digest (the pre-kernel code path, byte for byte);
//   * auto (unset) and simd-forced == the SAME digest;
//   * run-to-run and n_parallel=1 vs 2 determinism under the simd kernels.
// A mismatch between kernel settings is a kernel correctness bug — never
// re-pin around it. Re-pin the constants only for intentional changes to the
// search loop or the tree learners themselves.

// Scoped FLAML_HISTOGRAM_KERNEL override; restores the prior value so kernel
// goldens cannot leak into later tests.
class ScopedKernelEnv {
 public:
  explicit ScopedKernelEnv(const char* value) {
    const char* old = std::getenv("FLAML_HISTOGRAM_KERNEL");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      ::unsetenv("FLAML_HISTOGRAM_KERNEL");
    } else {
      ::setenv("FLAML_HISTOGRAM_KERNEL", value, 1);
    }
  }
  ~ScopedKernelEnv() {
    if (had_old_) {
      ::setenv("FLAML_HISTOGRAM_KERNEL", old_.c_str(), 1);
    } else {
      ::unsetenv("FLAML_HISTOGRAM_KERNEL");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

std::uint64_t real_search_digest(std::size_t n_parallel) {
  const Dataset data = resume_tiny_binary(2024);
  AutoML automl;
  automl.fit(data, real_options(false, ResamplingPolicy::ForceHoldout,
                                n_parallel));
  EXPECT_FALSE(automl.history().empty());
  return history_digest(automl.history());
}

// Pinned digests of the seed-7 real-learner holdout search. One constant per
// n_parallel serves every kernel setting.
constexpr std::uint64_t kRealSerialDigest = 0x4761dfa18c7e2d32ULL;
constexpr std::uint64_t kRealParallelDigest = 0x7ba5ed9c505cf6f1ULL;

void expect_digest(std::uint64_t got, std::uint64_t want,
                   const std::string& what) {
  std::ostringstream g, w;
  g << std::hex << got;
  w << std::hex << want;
  EXPECT_EQ(g.str(), w.str())
      << what << ": the kernel-golden search history changed. If the search "
      << "or the learners changed intentionally, re-pin; if only the "
      << "histogram kernels changed, this is a bit-identity bug.";
}

TEST(GoldenSearch, ScalarKernelForcedMatchesPinnedDigest) {
  ScopedKernelEnv env("scalar");
  expect_digest(real_search_digest(1), kRealSerialDigest, "scalar serial");
  expect_digest(real_search_digest(2), kRealParallelDigest, "scalar parallel");
}

TEST(GoldenSearch, SimdKernelMatchesScalarDigestAndIsRunToRunStable) {
  {
    ScopedKernelEnv env(nullptr);  // auto: best available packed kernel
    expect_digest(real_search_digest(1), kRealSerialDigest, "auto serial");
  }
  ScopedKernelEnv env("simd");
  expect_digest(real_search_digest(1), kRealSerialDigest, "simd serial run 1");
  expect_digest(real_search_digest(1), kRealSerialDigest, "simd serial run 2");
  expect_digest(real_search_digest(2), kRealParallelDigest,
                "simd parallel run 1");
  expect_digest(real_search_digest(2), kRealParallelDigest,
                "simd parallel run 2");
}

TEST(GoldenSearch, SubstrateCacheTransparentHoldoutSerial) {
  expect_cache_transparent(ResamplingPolicy::ForceHoldout, 1,
                           "holdout serial");
}

TEST(GoldenSearch, SubstrateCacheTransparentCvSerial) {
  expect_cache_transparent(ResamplingPolicy::ForceCV, 1, "cv serial");
}

TEST(GoldenSearch, SubstrateCacheTransparentHoldoutParallel) {
  expect_cache_transparent(ResamplingPolicy::ForceHoldout, 2,
                           "holdout parallel");
}

TEST(GoldenSearch, SubstrateCacheTransparentCvParallel) {
  expect_cache_transparent(ResamplingPolicy::ForceCV, 2, "cv parallel");
}

}  // namespace
}  // namespace flaml
