#include "tuners/config_space.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace flaml {
namespace {

ConfigSpace demo_space() {
  ConfigSpace space;
  space.add_int("tree_num", 4, 32768, 4, /*log=*/true, /*cost_related=*/true);
  space.add_float("learning_rate", 0.01, 1.0, 0.1, /*log=*/true);
  space.add_float("subsample", 0.6, 1.0, 1.0, /*log=*/false);
  space.add_categorical("criterion", {"gini", "entropy"}, 0);
  return space;
}

TEST(ConfigSpace, DimCountsAllParams) {
  EXPECT_EQ(demo_space().dim(), 4u);
}

TEST(ConfigSpace, InitialConfigUsesLowCostValues) {
  Config init = demo_space().initial_config();
  EXPECT_DOUBLE_EQ(init.at("tree_num"), 4.0);
  EXPECT_DOUBLE_EQ(init.at("learning_rate"), 0.1);
  EXPECT_DOUBLE_EQ(init.at("criterion"), 0.0);
}

TEST(ConfigSpace, NormalizationRoundTrip) {
  ConfigSpace space = demo_space();
  Config c;
  c["tree_num"] = 128;
  c["learning_rate"] = 0.05;
  c["subsample"] = 0.8;
  c["criterion"] = 1;
  Config back = space.from_normalized(space.to_normalized(c));
  EXPECT_DOUBLE_EQ(back.at("tree_num"), 128.0);
  EXPECT_NEAR(back.at("learning_rate"), 0.05, 1e-9);
  EXPECT_NEAR(back.at("subsample"), 0.8, 1e-9);
  EXPECT_DOUBLE_EQ(back.at("criterion"), 1.0);
}

TEST(ConfigSpace, FromNormalizedClampsAndRounds) {
  ConfigSpace space = demo_space();
  std::vector<double> z{-0.5, 2.0, 0.5, 0.99};
  Config c = space.from_normalized(z);
  EXPECT_DOUBLE_EQ(c.at("tree_num"), 4.0);        // clamped to lo
  EXPECT_DOUBLE_EQ(c.at("learning_rate"), 1.0);   // clamped to hi
  EXPECT_DOUBLE_EQ(c.at("subsample"), 0.8);       // linear midpoint
  EXPECT_DOUBLE_EQ(c.at("criterion"), 1.0);       // last bucket
}

TEST(ConfigSpace, IntValuesAreIntegral) {
  ConfigSpace space = demo_space();
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    Config c = space.random_config(rng);
    double v = c.at("tree_num");
    EXPECT_DOUBLE_EQ(v, std::floor(v));
    EXPECT_GE(v, 4.0);
    EXPECT_LE(v, 32768.0);
  }
}

TEST(ConfigSpace, LogScaleCoversOrdersOfMagnitude) {
  ConfigSpace space = demo_space();
  Rng rng(2);
  int small = 0, large = 0;
  for (int i = 0; i < 500; ++i) {
    Config c = space.random_config(rng);
    if (c.at("tree_num") < 100) ++small;
    if (c.at("tree_num") > 4000) ++large;
  }
  // Log-uniform: both tails populated.
  EXPECT_GT(small, 100);
  EXPECT_GT(large, 100);
}

TEST(ConfigSpace, CategoricalBucketsMapCorrectly) {
  ConfigSpace space;
  space.add_categorical("c", {"a", "b", "c", "d"}, 0);
  for (int bucket = 0; bucket < 4; ++bucket) {
    std::vector<double> z{(bucket + 0.5) / 4.0};
    EXPECT_DOUBLE_EQ(space.from_normalized(z).at("c"), bucket);
  }
}

TEST(ConfigSpace, DuplicateNameRejected) {
  ConfigSpace space;
  space.add_float("x", 0.0, 1.0, 0.5);
  EXPECT_THROW(space.add_float("x", 0.0, 1.0, 0.5), InvalidArgument);
}

TEST(ConfigSpace, BadRangesRejected) {
  ConfigSpace space;
  EXPECT_THROW(space.add_float("a", 1.0, 0.0, 0.5), InvalidArgument);  // lo > hi
  EXPECT_THROW(space.add_float("b", 0.0, 1.0, 2.0), InvalidArgument);  // init outside
  EXPECT_THROW(space.add_float("c", 0.0, 1.0, 0.5, /*log=*/true),
               InvalidArgument);  // log with lo = 0
  EXPECT_THROW(space.add_categorical("d", {"one"}, 0), InvalidArgument);
}

TEST(ConfigSpace, IndexOfAndContains) {
  ConfigSpace space = demo_space();
  EXPECT_EQ(space.index_of("learning_rate"), 1u);
  EXPECT_TRUE(space.contains("subsample"));
  EXPECT_FALSE(space.contains("nope"));
  EXPECT_THROW(space.index_of("nope"), InvalidArgument);
}

TEST(ConfigSpace, ToNormalizedRejectsMissingParam) {
  ConfigSpace space = demo_space();
  Config c;
  c["tree_num"] = 4;
  EXPECT_THROW(space.to_normalized(c), InvalidArgument);
}

TEST(ConfigSpace, StepLowerBoundReflectsCostParams) {
  ConfigSpace space = demo_space();
  double bound = space.step_lower_bound();
  // Moving tree_num from 4 to 5 in log space over [4, 32768]:
  double expected = std::log(1.25) / (std::log(32768.0) - std::log(4.0)) *
                    std::sqrt(4.0);
  EXPECT_NEAR(bound, expected, 1e-9);
}

TEST(ConfigSpace, StepLowerBoundFallsBack) {
  ConfigSpace space;
  space.add_float("x", 0.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(space.step_lower_bound(1e-3), 1e-3);
}

TEST(ConfigSpace, ConfigToStringResolvesCategories) {
  ConfigSpace space = demo_space();
  Config c = space.initial_config();
  std::string s = config_to_string(c, space);
  EXPECT_NE(s.find("tree_num=4"), std::string::npos);
  EXPECT_NE(s.find("criterion=gini"), std::string::npos);
}

TEST(ConfigSpace, RandomConfigWithinBounds) {
  ConfigSpace space = demo_space();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    Config c = space.random_config(rng);
    EXPECT_GE(c.at("learning_rate"), 0.01);
    EXPECT_LE(c.at("learning_rate"), 1.0);
    EXPECT_GE(c.at("subsample"), 0.6);
    EXPECT_LE(c.at("subsample"), 1.0);
    double crit = c.at("criterion");
    EXPECT_TRUE(crit == 0.0 || crit == 1.0);
  }
}

}  // namespace
}  // namespace flaml
