#include "tuners/hyperband.h"

#include <gtest/gtest.h>

#include <map>

#include "common/error.h"

namespace flaml {
namespace {

ConfigSpace box_space() {
  ConfigSpace space;
  space.add_float("x", 0.0, 1.0, 0.5);
  space.add_float("y", 0.0, 1.0, 0.5);
  return space;
}

TEST(Bohb, FirstBracketStartsAtLowFidelity) {
  ConfigSpace space = box_space();
  BohbScheduler scheduler(space, 100, 10000, 1);
  auto a = scheduler.next();
  EXPECT_LT(a.fidelity, 10000u);
  EXPECT_GE(a.fidelity, 100u);
  EXPECT_EQ(a.rung, 0);
}

TEST(Bohb, FidelityGrowsAcrossRungs) {
  ConfigSpace space = box_space();
  BohbScheduler scheduler(space, 100, 8100, 2);  // s_max = 4 with eta=3
  std::map<int, std::size_t> rung_fidelity;
  for (int i = 0; i < 200; ++i) {
    auto a = scheduler.next();
    if (a.bracket == 4) {  // first bracket only
      auto it = rung_fidelity.find(a.rung);
      if (it == rung_fidelity.end()) {
        rung_fidelity[a.rung] = a.fidelity;
      } else {
        EXPECT_EQ(it->second, a.fidelity);
      }
    }
    scheduler.report(a, 0.5);
  }
  ASSERT_GE(rung_fidelity.size(), 2u);
  std::size_t prev = 0;
  for (const auto& [rung, fidelity] : rung_fidelity) {
    EXPECT_GT(fidelity, prev);
    prev = fidelity;
  }
}

TEST(Bohb, PromotionKeepsBestConfigs) {
  ConfigSpace space = box_space();
  BohbScheduler scheduler(space, 100, 900, 3);  // s_max = 2
  // Run rung 0 of the first bracket; configs with smaller x get smaller
  // error, so promoted rung-1 configs must have small x.
  std::vector<double> promoted_x;
  for (int i = 0; i < 300; ++i) {
    auto a = scheduler.next();
    if (a.bracket == 2 && a.rung == 1) promoted_x.push_back(a.config.at("x"));
    if (a.bracket != 2) break;
    scheduler.report(a, a.config.at("x"));
  }
  ASSERT_FALSE(promoted_x.empty());
  for (double x : promoted_x) EXPECT_LT(x, 0.8);
}

TEST(Bohb, FullFidelityObservationsSetBest) {
  ConfigSpace space = box_space();
  BohbScheduler scheduler(space, 50, 100, 4);
  bool saw_full = false;
  for (int i = 0; i < 100; ++i) {
    auto a = scheduler.next();
    double err = a.config.at("x");
    scheduler.report(a, err);
    if (a.fidelity >= 100) saw_full = true;
  }
  EXPECT_TRUE(saw_full);
  EXPECT_TRUE(scheduler.has_best());
}

TEST(Bohb, CyclesBracketsForever) {
  ConfigSpace space = box_space();
  BohbScheduler scheduler(space, 100, 900, 5);
  for (int i = 0; i < 500; ++i) {
    auto a = scheduler.next();
    scheduler.report(a, 0.5);
  }
  SUCCEED();  // no deadlock / exhaustion
}

TEST(Bohb, RejectsBadFidelityRange) {
  ConfigSpace space = box_space();
  EXPECT_THROW(BohbScheduler(space, 1000, 100, 1), InvalidArgument);
  EXPECT_THROW(BohbScheduler(space, 0, 100, 1), InvalidArgument);
}

TEST(Bohb, StaleReportIgnored) {
  ConfigSpace space = box_space();
  BohbScheduler scheduler(space, 100, 900, 6);
  auto a = scheduler.next();
  auto stale = a;
  stale.bracket += 1;
  scheduler.report(stale, 0.1);  // must not crash or corrupt state
  scheduler.report(a, 0.2);
  SUCCEED();
}

TEST(PlainHyperband, RandomProposalsWithoutModel) {
  ConfigSpace space = box_space();
  HyperbandOptions options;
  options.model_based = false;
  BohbScheduler scheduler(space, 100, 900, 7, options);
  for (int i = 0; i < 100; ++i) {
    auto a = scheduler.next();
    scheduler.report(a, 0.5);
  }
  SUCCEED();
}

}  // namespace
}  // namespace flaml
