#include "automl/baselines.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "metrics/metrics.h"

namespace flaml {
namespace {

Dataset binary_data(std::size_t n = 600) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = n;
  spec.n_features = 6;
  spec.class_sep = 1.4;
  spec.seed = 51;
  return make_classification(spec);
}

class BaselineKindTest : public ::testing::TestWithParam<BaselineKind> {};

TEST_P(BaselineKindTest, FitsWithinBudgetAndPredicts) {
  Dataset data = binary_data();
  BaselineAutoML automl(GetParam());
  BaselineOptions options;
  options.time_budget_seconds = 0.6;
  options.min_fidelity = 100;
  options.seed = 3;
  automl.fit(data, options);
  ASSERT_TRUE(automl.fitted());
  EXPECT_FALSE(automl.history().empty());
  EXPECT_FALSE(automl.best_learner().empty());
  Predictions pred = automl.predict(DataView(data));
  EXPECT_EQ(pred.n_rows(), data.n_rows());
  EXPECT_GT(roc_auc(pred.prob1(), data.labels()), 0.6);
  EXPECT_GT(automl.search_seconds(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, BaselineKindTest,
                         ::testing::Values(BaselineKind::Bohb, BaselineKind::Tpe,
                                           BaselineKind::Grid,
                                           BaselineKind::Evolution,
                                           BaselineKind::Random));

TEST(Baselines, Names) {
  EXPECT_STREQ(baseline_name(BaselineKind::Bohb), "bohb");
  EXPECT_STREQ(baseline_name(BaselineKind::Tpe), "bo-tpe");
  EXPECT_STREQ(baseline_name(BaselineKind::Grid), "grid");
  EXPECT_STREQ(baseline_name(BaselineKind::Evolution), "evolution");
  EXPECT_STREQ(baseline_name(BaselineKind::Random), "random");
}

TEST(Baselines, BohbUsesVaryingSampleSizes) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 3000;
  spec.n_features = 6;
  spec.seed = 53;
  Dataset data = make_classification(spec);
  BaselineAutoML automl(BaselineKind::Bohb);
  BaselineOptions options;
  options.time_budget_seconds = 1.0;
  options.min_fidelity = 150;
  options.force_holdout = true;
  automl.fit(data, options);
  std::size_t min_s = data.n_rows();
  for (const auto& r : automl.history()) min_s = std::min(min_s, r.sample_size);
  // Hyperband's first rung runs at a reduced fidelity (how far the brackets
  // get within the budget varies, so we only assert low-fidelity trials).
  EXPECT_LT(min_s, 2700u);
}

TEST(Baselines, FullDataMethodsUseFullSampleOnly) {
  Dataset data = binary_data(800);
  for (BaselineKind kind : {BaselineKind::Tpe, BaselineKind::Random}) {
    BaselineAutoML automl(kind);
    BaselineOptions options;
    options.time_budget_seconds = 0.4;
    options.force_holdout = true;
    automl.fit(data, options);
    for (const auto& r : automl.history()) {
      EXPECT_EQ(r.sample_size, 720u);  // 800 minus 10% holdout
    }
  }
}

TEST(Baselines, GridRoundRobinsLearnerOrder) {
  Dataset data = binary_data(500);
  BaselineAutoML automl(BaselineKind::Grid);
  BaselineOptions options;
  // Iteration-capped, not time-capped: the trial count must not depend on
  // machine speed (this test was flaky under TSan's slowdown otherwise).
  options.time_budget_seconds = 60.0;
  options.max_iterations = 6;
  options.estimator_list = {"lgbm", "rf"};
  options.seed = 7;
  automl.fit(data, options);
  const TrialHistory& history = automl.history();
  ASSERT_GE(history.size(), 4u);
  EXPECT_EQ(history.size(), 6u);
  for (std::size_t i = 0; i + 1 < std::min<std::size_t>(history.size(), 6); i += 2) {
    EXPECT_EQ(history[i].learner, "lgbm");
    EXPECT_EQ(history[i + 1].learner, "rf");
  }
}

TEST(Baselines, EstimatorListValidation) {
  Dataset data = binary_data(200);
  BaselineAutoML automl(BaselineKind::Random);
  BaselineOptions options;
  options.time_budget_seconds = 0.1;
  options.estimator_list = {"nope"};
  EXPECT_THROW(automl.fit(data, options), InvalidArgument);
}

TEST(Baselines, ConflictingResamplingRejected) {
  Dataset data = binary_data(200);
  BaselineAutoML automl(BaselineKind::Random);
  BaselineOptions options;
  options.force_cv = true;
  options.force_holdout = true;
  EXPECT_THROW(automl.fit(data, options), InvalidArgument);
}

TEST(Baselines, PredictBeforeFitRejected) {
  BaselineAutoML automl(BaselineKind::Random);
  Dataset data = binary_data(100);
  EXPECT_THROW(automl.predict(DataView(data)), InvalidArgument);
}

}  // namespace
}  // namespace flaml
