#include "data/csv.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "data/generators.h"
#include "support/prop.h"

namespace flaml {
namespace {

TEST(Csv, ParsesNumericRegression) {
  std::istringstream in("a,b,target\n1.5,2,3.5\n4,5,6\n");
  CsvOptions options;
  options.task = Task::Regression;
  Dataset data = read_csv(in, options);
  EXPECT_EQ(data.n_rows(), 2u);
  EXPECT_EQ(data.n_cols(), 2u);
  EXPECT_FLOAT_EQ(data.value(0, 0), 1.5f);
  EXPECT_DOUBLE_EQ(data.label(1), 6.0);
}

TEST(Csv, LabelColumnByName) {
  std::istringstream in("y,a\n1,10\n0,20\n");
  CsvOptions options;
  options.task = Task::BinaryClassification;
  options.label_column = "y";
  Dataset data = read_csv(in, options);
  EXPECT_EQ(data.n_cols(), 1u);
  EXPECT_DOUBLE_EQ(data.label(0), 1.0);
  EXPECT_FLOAT_EQ(data.value(1, 0), 20.0f);
}

TEST(Csv, UnknownLabelColumnRejected) {
  std::istringstream in("a,b\n1,2\n");
  CsvOptions options;
  options.label_column = "missing";
  EXPECT_THROW(read_csv(in, options), InvalidArgument);
}

TEST(Csv, CategoricalColumnsDictionaryEncoded) {
  std::istringstream in("color,size,y\nred,1,0\nblue,2,1\nred,3,1\n");
  CsvOptions options;
  options.task = Task::BinaryClassification;
  Dataset data = read_csv(in, options);
  EXPECT_EQ(data.column_info(0).type, ColumnType::Categorical);
  EXPECT_EQ(data.column_info(0).cardinality, 2);
  EXPECT_FLOAT_EQ(data.value(0, 0), 0.0f);  // red = 0 (first appearance)
  EXPECT_FLOAT_EQ(data.value(1, 0), 1.0f);  // blue = 1
  EXPECT_FLOAT_EQ(data.value(2, 0), 0.0f);
  EXPECT_EQ(data.column_info(1).type, ColumnType::Numeric);
}

TEST(Csv, EmptyCellsBecomeMissing) {
  std::istringstream in("a,b,y\n1,,0\n,2,1\n");
  CsvOptions options;
  options.task = Task::BinaryClassification;
  Dataset data = read_csv(in, options);
  EXPECT_TRUE(Dataset::is_missing(data.value(0, 1)));
  EXPECT_TRUE(Dataset::is_missing(data.value(1, 0)));
  EXPECT_FALSE(Dataset::is_missing(data.value(0, 0)));
}

TEST(Csv, StringLabelsForClassification) {
  std::istringstream in("a,y\n1,cat\n2,dog\n3,cat\n");
  CsvOptions options;
  options.task = Task::BinaryClassification;
  Dataset data = read_csv(in, options);
  EXPECT_DOUBLE_EQ(data.label(0), 0.0);
  EXPECT_DOUBLE_EQ(data.label(1), 1.0);
  EXPECT_DOUBLE_EQ(data.label(2), 0.0);
}

TEST(Csv, StringLabelForRegressionRejected) {
  std::istringstream in("a,y\n1,tall\n");
  CsvOptions options;
  options.task = Task::Regression;
  EXPECT_THROW(read_csv(in, options), InvalidArgument);
}

TEST(Csv, RaggedRowRejected) {
  std::istringstream in("a,b,y\n1,2,0\n1,2\n");
  EXPECT_THROW(read_csv(in, CsvOptions{}), InvalidArgument);
}

TEST(Csv, EmptyStreamRejected) {
  std::istringstream in("");
  EXPECT_THROW(read_csv(in, CsvOptions{}), InvalidArgument);
}

TEST(Csv, HeaderOnlyRejected) {
  std::istringstream in("a,y\n");
  EXPECT_THROW(read_csv(in, CsvOptions{}), InvalidArgument);
}

TEST(Csv, MissingLabelRejected) {
  std::istringstream in("a,y\n1,\n");
  EXPECT_THROW(read_csv(in, CsvOptions{}), InvalidArgument);
}

TEST(Csv, SkipsBlankLines) {
  std::istringstream in("a,y\n1,2\n\n3,4\n");
  CsvOptions options;
  options.task = Task::Regression;
  Dataset data = read_csv(in, options);
  EXPECT_EQ(data.n_rows(), 2u);
}

TEST(Csv, WriteReadRoundTrip) {
  std::istringstream in("a,b,y\n1.5,2.25,3\n4,5,6\n7,8,9\n");
  CsvOptions options;
  options.task = Task::Regression;
  Dataset data = read_csv(in, options);

  std::ostringstream out;
  write_csv(out, DataView(data));
  std::istringstream in2(out.str());
  CsvOptions options2;
  options2.task = Task::Regression;
  options2.label_column = "label";
  Dataset data2 = read_csv(in2, options2);
  ASSERT_EQ(data2.n_rows(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(data2.value(i, 0), data.value(i, 0));
    EXPECT_FLOAT_EQ(data2.value(i, 1), data.value(i, 1));
    EXPECT_DOUBLE_EQ(data2.label(i), data.label(i));
  }
}

TEST(Csv, CustomDelimiter) {
  std::istringstream in("a;y\n1;2\n");
  CsvOptions options;
  options.delimiter = ';';
  options.task = Task::Regression;
  Dataset data = read_csv(in, options);
  EXPECT_EQ(data.n_rows(), 1u);
  EXPECT_DOUBLE_EQ(data.label(0), 2.0);
}

TEST(Csv, MissingFileRejected) {
  EXPECT_THROW(read_csv_file("/nonexistent/path.csv", CsvOptions{}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Loader edge cases: line endings, trailing fields/newlines, and the
// non-finite cell spellings std::from_chars accepts.
// ---------------------------------------------------------------------------

TEST(Csv, CrlfLineEndingsParse) {
  std::istringstream in("a,y\r\n1.5,2\r\n3,4\r\n");
  CsvOptions options;
  options.task = Task::Regression;
  Dataset data = read_csv(in, options);
  ASSERT_EQ(data.n_rows(), 2u);
  EXPECT_EQ(data.column_info(0).name, "a");  // no stray \r in the header
  EXPECT_FLOAT_EQ(data.value(0, 0), 1.5f);
  EXPECT_DOUBLE_EQ(data.label(1), 4.0);
}

TEST(Csv, MissingTrailingNewlineParses) {
  std::istringstream in("a,y\n1,2\n3,4");  // file ends mid-line
  CsvOptions options;
  options.task = Task::Regression;
  Dataset data = read_csv(in, options);
  ASSERT_EQ(data.n_rows(), 2u);
  EXPECT_DOUBLE_EQ(data.label(1), 4.0);
}

TEST(Csv, EmptyTrailingFieldIsMissingFeature) {
  // The label is the FIRST column, so a line ending in the delimiter has an
  // empty final feature cell — a missing value, not a ragged row.
  std::istringstream in("y,a\n1,\n2,3\n");
  CsvOptions options;
  options.task = Task::Regression;
  options.label_column = "y";
  Dataset data = read_csv(in, options);
  ASSERT_EQ(data.n_rows(), 2u);
  EXPECT_TRUE(Dataset::is_missing(data.value(0, 0)));
  EXPECT_FLOAT_EQ(data.value(1, 0), 3.0f);
}

TEST(Csv, EmptyTrailingLabelRejected) {
  // Same shape but the label is the LAST column: the empty cell is now a
  // missing label, which is an error, not a missing value.
  std::istringstream in("a,y\n1,\n");
  CsvOptions options;
  options.task = Task::Regression;
  EXPECT_THROW(read_csv(in, options), InvalidArgument);
}

TEST(Csv, NanCellIsMissingValue) {
  // std::from_chars parses "nan" as a float NaN, which is the dataset's
  // missing-value encoding — same meaning as an empty cell.
  std::istringstream in("a,b,y\nnan,1,2\nNaN,3,4\n");
  CsvOptions options;
  options.task = Task::Regression;
  Dataset data = read_csv(in, options);
  ASSERT_EQ(data.n_rows(), 2u);
  EXPECT_TRUE(Dataset::is_missing(data.value(0, 0)));
  EXPECT_TRUE(Dataset::is_missing(data.value(1, 0)));
  EXPECT_EQ(data.column_info(0).type, ColumnType::Numeric);
}

TEST(Csv, InfCellParsesAsInfiniteFeature) {
  std::istringstream in("a,y\ninf,1\n-inf,2\n3,4\n");
  CsvOptions options;
  options.task = Task::Regression;
  Dataset data = read_csv(in, options);
  ASSERT_EQ(data.n_rows(), 3u);
  EXPECT_EQ(data.column_info(0).type, ColumnType::Numeric);
  EXPECT_TRUE(std::isinf(data.value(0, 0)));
  EXPECT_GT(data.value(0, 0), 0.0f);
  EXPECT_TRUE(std::isinf(data.value(1, 0)));
  EXPECT_LT(data.value(1, 0), 0.0f);
}

TEST(Csv, NonFiniteRegressionLabelRejected) {
  {
    std::istringstream in("a,y\n1,nan\n");
    CsvOptions options;
    options.task = Task::Regression;
    EXPECT_THROW(read_csv(in, options), InvalidArgument);
  }
  {
    std::istringstream in("a,y\n1,inf\n");
    CsvOptions options;
    options.task = Task::Regression;
    EXPECT_THROW(read_csv(in, options), InvalidArgument);
  }
}

TEST(Csv, MissingValuesSurviveWriteReadRoundTrip) {
  std::istringstream in("a,b,y\n1,,2\n,3,4\n");
  CsvOptions options;
  options.task = Task::Regression;
  Dataset data = read_csv(in, options);

  std::ostringstream out;
  write_csv(out, DataView(data));
  std::istringstream in2(out.str());
  CsvOptions options2;
  options2.task = Task::Regression;
  options2.label_column = "label";
  Dataset back = read_csv(in2, options2);
  ASSERT_EQ(back.n_rows(), 2u);
  EXPECT_TRUE(Dataset::is_missing(back.value(0, 1)));
  EXPECT_TRUE(Dataset::is_missing(back.value(1, 0)));
  EXPECT_FLOAT_EQ(back.value(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(back.value(1, 1), 3.0f);
}


// ---------------------------------------------------------------------------
// Round-trip fuzz (tests/support/prop.h): random synthetic datasets survive
// write_csv → read_csv with every float/double bit intact. write_csv uses
// std::to_chars shortest representations, so equality here is exact, not
// approximate.

std::uint32_t float_bits(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

std::uint64_t double_bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

FLAML_PROP(CsvProp, RandomDatasetRoundTripsBitwise, 30) {
  SyntheticSpec spec;
  switch (prop.rng.uniform_index(3)) {
    case 0:
      spec.task = Task::Regression;
      break;
    case 1:
      spec.task = Task::BinaryClassification;
      break;
    default:
      spec.task = Task::MultiClassification;
      spec.n_classes = 3 + static_cast<int>(prop.rng.uniform_index(3));
      break;
  }
  spec.n_rows = 5 + prop.rng.uniform_index(56);
  spec.n_features = 1 + static_cast<int>(prop.rng.uniform_index(8));
  spec.label_noise = prop.rng.uniform(0.0, 0.2);
  if (prop.rng.bernoulli(0.5)) spec.missing_fraction = prop.rng.uniform(0.0, 0.3);
  if (prop.rng.bernoulli(0.3)) {
    spec.categorical_fraction = prop.rng.uniform(0.0, 0.5);
  }
  spec.seed = prop.rng.next() | 1;
  Dataset data = make_synthetic(spec);

  std::ostringstream out;
  write_csv(out, DataView(data));

  std::istringstream in(out.str());
  CsvOptions options;
  options.task = spec.task;
  options.label_column = "label";
  Dataset parsed = read_csv(in, options);

  ASSERT_EQ(parsed.n_rows(), data.n_rows());
  ASSERT_EQ(parsed.n_cols(), data.n_cols());
  for (std::size_t r = 0; r < data.n_rows(); ++r) {
    for (std::size_t c = 0; c < data.n_cols(); ++c) {
      const float a = data.value(r, c);
      const float b = parsed.value(r, c);
      if (Dataset::is_missing(a)) {
        EXPECT_TRUE(Dataset::is_missing(b)) << "row " << r << " col " << c;
      } else {
        EXPECT_EQ(float_bits(a), float_bits(b))
            << "row " << r << " col " << c << ": " << a << " vs " << b;
      }
    }
    EXPECT_EQ(double_bits(data.label(r)), double_bits(parsed.label(r)))
        << "label row " << r << ": " << data.label(r) << " vs "
        << parsed.label(r);
  }
}

// Adversarial float bit patterns — subnormals, extremes, negative zero,
// values whose default 6-digit stream form would NOT round-trip — must
// survive write_csv's shortest-form std::to_chars encoding bitwise.
FLAML_PROP(CsvProp, ExtremeFloatsRoundTripBitwise, 40) {
  std::vector<float> pool = {
      0.0f,
      -0.0f,
      std::numeric_limits<float>::min(),
      std::numeric_limits<float>::denorm_min(),
      -std::numeric_limits<float>::denorm_min(),
      std::numeric_limits<float>::max(),
      std::numeric_limits<float>::lowest(),
      std::numeric_limits<float>::epsilon(),
      0.1f,
      1.0f / 3.0f,
      16777217.0f,  // just past the last exactly-representable integer
  };
  // Plus random bit patterns, rejecting NaN (NaN is the missing encoding)
  // and inf.
  while (pool.size() < 16) {
    std::uint32_t bits = static_cast<std::uint32_t>(prop.rng.next());
    float v;
    std::memcpy(&v, &bits, sizeof v);
    if (std::isnan(v) || std::isinf(v)) continue;
    pool.push_back(v);
  }

  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0}});
  for (std::size_t i = 0; i < pool.size(); ++i) {
    data.add_row({pool[i]}, static_cast<double>(i));
  }

  std::ostringstream out;
  write_csv(out, DataView(data));
  std::istringstream in(out.str());
  CsvOptions options;
  options.task = Task::Regression;
  options.label_column = "label";
  Dataset back = read_csv(in, options);
  ASSERT_EQ(back.n_rows(), pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(float_bits(back.value(i, 0)), float_bits(pool[i]))
        << "value " << pool[i] << " (seed " << prop.seed << ")";
  }
}

// --- unlabeled files (has_label = false) -----------------------------------

TEST(Csv, NoLabelReadsEveryColumnAsAFeature) {
  // Regression guard: with a label expected, the reader silently claims the
  // last column — a prediction-only file would lose its last feature AND
  // score against it. has_label = false keeps all columns.
  std::istringstream in("a,b,c\n1,2,3\n4,5,6\n");
  CsvOptions options;
  options.has_label = false;
  Dataset data = read_csv(in, options);
  EXPECT_EQ(data.n_cols(), 3u);
  EXPECT_EQ(data.n_rows(), 2u);
  EXPECT_FLOAT_EQ(data.value(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(data.value(1, 2), 6.0f);
  // The container is a regression dataset with all-zero labels (a
  // classification container would reject single-class labels).
  EXPECT_EQ(static_cast<int>(data.task()), static_cast<int>(Task::Regression));
  EXPECT_DOUBLE_EQ(data.label(0), 0.0);
}

TEST(Csv, NoLabelIgnoresTaskAndLabelColumn) {
  std::istringstream in("a\n1\n2\n");
  CsvOptions options;
  options.has_label = false;
  options.task = Task::BinaryClassification;  // ignored
  Dataset data = read_csv(in, options);
  EXPECT_EQ(data.n_cols(), 1u);
  EXPECT_EQ(static_cast<int>(data.task()), static_cast<int>(Task::Regression));
}

TEST(Csv, NoLabelSingleColumnAcceptedLabeledRejected) {
  // One column is a valid unlabeled file but not a valid labeled one.
  {
    std::istringstream in("a\n1\n");
    CsvOptions options;
    options.has_label = false;
    EXPECT_EQ(read_csv(in, options).n_cols(), 1u);
  }
  {
    std::istringstream in("a\n1\n");
    EXPECT_THROW(read_csv(in, CsvOptions{}), InvalidArgument);
  }
}

// --- round-trip number writing ---------------------------------------------

TEST(Csv, WriteCsvValueRoundTripsExactly) {
  // The predict tool used to print at the default 6-sig-fig ostream
  // precision, so written predictions re-read as different doubles.
  const double doubles[] = {0.1,
                            1.0 / 3.0,
                            -0.0,
                            1e-300,
                            123456.789012345,
                            std::numeric_limits<double>::max(),
                            std::numeric_limits<double>::denorm_min()};
  for (const double v : doubles) {
    std::ostringstream out;
    write_csv_value(out, v);
    const double back = std::strtod(out.str().c_str(), nullptr);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back), std::bit_cast<std::uint64_t>(v))
        << out.str();
  }
  const float floats[] = {0.1f, 1.0f / 3.0f, -0.0f, 3.4028235e38f};
  for (const float v : floats) {
    std::ostringstream out;
    write_csv_value(out, v);
    const float back = std::strtof(out.str().c_str(), nullptr);
    EXPECT_EQ(std::bit_cast<std::uint32_t>(back), std::bit_cast<std::uint32_t>(v))
        << out.str();
  }
}

}  // namespace
}  // namespace flaml
