#include "tree/tree.h"

#include <gtest/gtest.h>

#include <limits>

namespace flaml {
namespace {

const float kNaN = std::numeric_limits<float>::quiet_NaN();

Dataset two_feature_data() {
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0},
                                  {"c", ColumnType::Categorical, 3}});
  data.add_row({1.0f, 0.0f}, 0.0);
  data.add_row({5.0f, 1.0f}, 0.0);
  data.add_row({kNaN, 2.0f}, 0.0);
  return data;
}

TEST(Tree, DefaultIsSingleLeafPredictingZero) {
  Tree tree;
  Dataset data = two_feature_data();
  EXPECT_EQ(tree.n_nodes(), 1u);
  EXPECT_EQ(tree.n_leaves(), 1u);
  EXPECT_EQ(tree.depth(), 1);
  EXPECT_DOUBLE_EQ(tree.predict_row(data, 0), 0.0);
}

TEST(Tree, SplitLeafCreatesChildren) {
  Tree tree;
  auto [left, right] = tree.split_leaf(0);
  EXPECT_EQ(tree.n_nodes(), 3u);
  EXPECT_EQ(tree.n_leaves(), 2u);
  EXPECT_EQ(left, 1);
  EXPECT_EQ(right, 2);
  EXPECT_FALSE(tree.node(0).is_leaf());
}

TEST(Tree, NumericRouting) {
  Tree tree;
  tree.node(0).feature = 0;
  tree.node(0).threshold = 3.0f;
  auto [left, right] = tree.split_leaf(0);
  tree.node(static_cast<std::size_t>(left)).leaf_value = -1.0;
  tree.node(static_cast<std::size_t>(right)).leaf_value = 1.0;
  Dataset data = two_feature_data();
  EXPECT_DOUBLE_EQ(tree.predict_row(data, 0), -1.0);  // 1.0 <= 3.0
  EXPECT_DOUBLE_EQ(tree.predict_row(data, 1), 1.0);   // 5.0 > 3.0
}

TEST(Tree, MissingRouting) {
  Tree tree;
  tree.node(0).feature = 0;
  tree.node(0).threshold = 3.0f;
  tree.node(0).missing_left = true;
  auto [left, right] = tree.split_leaf(0);
  tree.node(static_cast<std::size_t>(left)).leaf_value = -1.0;
  tree.node(static_cast<std::size_t>(right)).leaf_value = 1.0;
  Dataset data = two_feature_data();
  EXPECT_DOUBLE_EQ(tree.predict_row(data, 2), -1.0);  // NaN goes left
  tree.node(0).missing_left = false;
  EXPECT_DOUBLE_EQ(tree.predict_row(data, 2), 1.0);
}

TEST(Tree, CategoricalRouting) {
  Tree tree;
  tree.node(0).feature = 1;
  tree.node(0).categorical = true;
  tree.node(0).category = 1;
  auto [left, right] = tree.split_leaf(0);
  tree.node(static_cast<std::size_t>(left)).leaf_value = 10.0;
  tree.node(static_cast<std::size_t>(right)).leaf_value = 20.0;
  Dataset data = two_feature_data();
  EXPECT_DOUBLE_EQ(tree.predict_row(data, 0), 20.0);  // code 0 != 1
  EXPECT_DOUBLE_EQ(tree.predict_row(data, 1), 10.0);  // code 1 == 1
}

TEST(Tree, AddPredictionsAccumulates) {
  Tree tree;
  tree.node(0).leaf_value = 2.0;
  Dataset data = two_feature_data();
  DataView view(data);
  std::vector<double> out(3, 1.0);
  tree.add_predictions(view, 0.5, out);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Tree, DepthOfChain) {
  Tree tree;
  tree.node(0).feature = 0;
  auto [l1, r1] = tree.split_leaf(0);
  (void)r1;
  tree.node(static_cast<std::size_t>(l1)).feature = 0;
  tree.split_leaf(l1);
  EXPECT_EQ(tree.depth(), 3);
  EXPECT_EQ(tree.n_leaves(), 3u);
}

TEST(TreeFromNodes, RoundTripsValidTree) {
  Tree tree;
  tree.node(0).feature = 0;
  tree.node(0).threshold = 1.0f;
  auto [l, r] = tree.split_leaf(0);
  tree.node(static_cast<std::size_t>(l)).leaf_value = 5.0;
  tree.node(static_cast<std::size_t>(r)).leaf_value = 7.0;

  std::vector<TreeNode> nodes;
  for (std::size_t i = 0; i < tree.n_nodes(); ++i) nodes.push_back(tree.node(i));
  Tree rebuilt = Tree::from_nodes(nodes);
  Dataset data = two_feature_data();
  for (std::size_t row = 0; row < 2; ++row) {
    EXPECT_DOUBLE_EQ(rebuilt.predict_row(data, row), tree.predict_row(data, row));
  }
}

TEST(TreeFromNodes, RejectsOutOfRangeChild) {
  std::vector<TreeNode> nodes(1);
  nodes[0].left = 5;
  nodes[0].right = 6;
  nodes[0].feature = 0;
  EXPECT_THROW(Tree::from_nodes(nodes), InvalidArgument);
}

TEST(TreeFromNodes, RejectsOrphanNode) {
  std::vector<TreeNode> nodes(2);  // node 1 has no parent
  EXPECT_THROW(Tree::from_nodes(nodes), InvalidArgument);
}

TEST(TreeFromNodes, RejectsEmpty) {
  EXPECT_THROW(Tree::from_nodes({}), InvalidArgument);
}

}  // namespace
}  // namespace flaml
