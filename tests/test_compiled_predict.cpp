// Differential prediction suite for the compiled serving engine
// (src/serve/compiled_model.h) — the PR's headline correctness contract:
// every learner in the zoo (gbdt ×3 styles, rf, extra_tree, lr), trained on
// seeded datasets spanning regression / binary / multiclass with dense and
// NaN-bearing cells, must predict BIT-identically interpreted vs. compiled
// vs. compiled-after-artifact-round-trip, at every thread count, including
// empty-batch and single-row edge cases. A seeded property additionally
// pins missing-value routing: rows whose split feature is NaN at every tree
// depth position route the same through the interpreted walker and the
// flat tables.
#include "serve/compiled_model.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "automl/automl.h"
#include "boosting/gbdt.h"
#include "common/error.h"
#include "data/generators.h"
#include "forest/forest.h"
#include "learners/registry.h"
#include "serve/artifact.h"
#include "support/prop.h"
#include "tree/tree.h"

namespace flaml {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// Bit-level equality: NaN-safe and distinguishes -0.0 from 0.0, which
// double == would not. Stops at the first differing cell to keep failure
// output readable.
void expect_bits_equal(const Predictions& a, const Predictions& b,
                       const std::string& what) {
  ASSERT_EQ(static_cast<int>(a.task), static_cast<int>(b.task)) << what;
  ASSERT_EQ(a.n_classes, b.n_classes) << what;
  ASSERT_EQ(a.values.size(), b.values.size()) << what;
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.values[i]),
              std::bit_cast<std::uint64_t>(b.values[i]))
        << what << ": value " << i << " differs (" << a.values[i] << " vs "
        << b.values[i] << ")";
  }
}

Dataset make_data(Task task, double missing_fraction, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.task = task;
  spec.n_rows = 260;
  spec.n_features = 8;
  spec.n_classes = task == Task::MultiClassification ? 3 : 2;
  spec.categorical_fraction = 0.25;
  spec.missing_fraction = missing_fraction;
  spec.seed = seed;
  return make_synthetic(spec);
}

// Train with the learner's low-cost initial configuration, with the tree
// count bumped so the differential covers multi-tree accumulation order.
std::unique_ptr<Model> train_zoo_model(const Learner& learner, const DataView& view) {
  Config config = learner.space(view.data().task(), view.n_rows()).initial_config();
  if (config.count("tree_num")) config["tree_num"] = 20;
  if (config.count("leaf_num")) config["leaf_num"] = 8;
  TrainContext ctx;
  ctx.train = view;
  ctx.seed = 7;
  ctx.n_threads = 1;
  return learner.train(ctx, config);
}

// The full differential chain for one trained model: interpreted vs
// compiled (1 and 3 threads) vs payload round-trip vs file round-trip.
void check_differential(const Model& model, const serve::CompiledModel& compiled,
                        const DataView& eval, const std::string& what) {
  const Predictions interpreted = model.predict(eval);
  expect_bits_equal(interpreted, compiled.predict_many(eval, 1), what + " [compiled]");
  expect_bits_equal(interpreted, compiled.predict_many(eval, 3),
                    what + " [compiled, 3 threads]");

  const std::string payload = compiled.serialize();
  const serve::CompiledModel reloaded = serve::CompiledModel::deserialize(payload);
  expect_bits_equal(interpreted, reloaded.predict_many(eval, 1),
                    what + " [round-trip]");
  EXPECT_EQ(payload, reloaded.serialize()) << what << ": serialize not stable";

  const std::string path = tmp_path("compiled_" + what + ".bin");
  compiled.save_file(path);
  expect_bits_equal(interpreted,
                    serve::CompiledModel::load_file(path).predict_many(eval, 1),
                    what + " [file round-trip]");
}

void run_zoo(Task task, double missing_fraction) {
  const Dataset data =
      make_data(task, missing_fraction, missing_fraction > 0 ? 0x5ea : 0x5e9);
  std::vector<std::uint32_t> train_rows, eval_rows;
  for (std::uint32_t i = 0; i < 200; ++i) train_rows.push_back(i);
  for (std::uint32_t i = 0; i < data.n_rows(); ++i) eval_rows.push_back(i);
  const DataView train(data, train_rows);
  const DataView eval(data, eval_rows);

  for (const LearnerPtr& learner : builtin_learners()) {
    if (!learner->supports(task)) continue;
    SCOPED_TRACE(learner->name());
    std::unique_ptr<Model> model = train_zoo_model(*learner, train);
    // Compile through the save path — the model wrappers hide the concrete
    // model types, exactly like a deployment would meet them.
    std::ostringstream saved;
    model->save(saved);
    std::istringstream in(saved.str());
    const serve::CompiledModel compiled = serve::compile_saved(in);
    check_differential(*model, compiled, eval,
                       learner->name() + "_" + task_name(task) +
                           (missing_fraction > 0 ? "_nan" : "_dense"));
  }
}

TEST(CompiledPredictDifferential, RegressionDense) { run_zoo(Task::Regression, 0.0); }
TEST(CompiledPredictDifferential, RegressionWithNaN) { run_zoo(Task::Regression, 0.15); }
TEST(CompiledPredictDifferential, BinaryDense) {
  run_zoo(Task::BinaryClassification, 0.0);
}
TEST(CompiledPredictDifferential, BinaryWithNaN) {
  run_zoo(Task::BinaryClassification, 0.15);
}
TEST(CompiledPredictDifferential, MulticlassDense) {
  run_zoo(Task::MultiClassification, 0.0);
}
TEST(CompiledPredictDifferential, MulticlassWithNaN) {
  run_zoo(Task::MultiClassification, 0.15);
}

TEST(CompiledPredictEdge, EmptyBatchAndSingleRow) {
  const Dataset data = make_data(Task::BinaryClassification, 0.1, 11);
  const DataView all(data);
  const GBDTParams params = [] {
    GBDTParams p;
    p.n_trees = 12;
    p.max_leaves = 8;
    return p;
  }();
  const GBDTModel model = train_gbdt(all, nullptr, params);
  const serve::CompiledModel compiled = serve::compile(model);

  // Empty batch: zero rows, correct shape, no dataset access.
  const Predictions empty = compiled.predict_many(DataView(data, {}), 4);
  EXPECT_EQ(empty.n_rows(), 0u);
  EXPECT_EQ(empty.n_classes, 2);
  EXPECT_TRUE(empty.values.empty());

  // Single row, every thread count (the shard planner's smallest input).
  const DataView one(data, {5});
  const Predictions interpreted = model.predict(one);
  for (int threads = 1; threads <= 8; ++threads) {
    expect_bits_equal(interpreted, compiled.predict_many(one, threads),
                      "single row, " + std::to_string(threads) + " threads");
  }
}

// Trees wider than 64 leaves exceed the QuickScorer's per-tree bitvector,
// so compiled prediction falls back to the flat-table walker
// (FlatForest::route_block) — this differential keeps that engine pinned
// to the interpreted walker too, NaN cells included.
TEST(CompiledPredictDifferential, WideTreesUseWalkerFallback) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 1200;
  spec.n_features = 8;
  spec.categorical_fraction = 0.25;
  spec.missing_fraction = 0.1;
  spec.seed = 0x51de;
  const Dataset data = make_synthetic(spec);
  const DataView all(data);

  const auto check = [&](const Predictions& interpreted,
                         const serve::CompiledModel& compiled,
                         const std::string& what) {
    expect_bits_equal(interpreted, compiled.predict_many(all, 1),
                      what + " [compiled]");
    expect_bits_equal(interpreted, compiled.predict_many(all, 3),
                      what + " [compiled, 3 threads]");
    const serve::CompiledModel reloaded =
        serve::CompiledModel::deserialize(compiled.serialize());
    expect_bits_equal(interpreted, reloaded.predict_many(all, 1),
                      what + " [round-trip]");
  };

  GBDTParams gparams;
  gparams.n_trees = 10;
  gparams.max_leaves = 100;  // > 64: QuickScorer build must bow out
  const GBDTModel gbdt = train_gbdt(all, nullptr, gparams);
  std::size_t widest = 0;
  for (const Tree& t : gbdt.trees()) widest = std::max(widest, t.n_leaves());
  ASSERT_GT(widest, 64u) << "model too small to exercise the fallback";
  check(gbdt.predict(all), serve::compile(gbdt), "gbdt_wide");

  ForestParams fparams;
  fparams.n_trees = 8;
  fparams.max_leaves = 100;
  const ForestModel forest = train_forest(all, fparams);
  check(forest.predict(all), serve::compile(forest), "forest_wide");
}

TEST(CompiledPredictEdge, ViewWithTooFewColumnsThrows) {
  const Dataset wide = make_data(Task::Regression, 0.0, 3);
  SyntheticSpec narrow_spec;
  narrow_spec.task = Task::Regression;
  narrow_spec.n_rows = 40;
  narrow_spec.n_features = 2;
  narrow_spec.seed = 4;
  const Dataset narrow = make_synthetic(narrow_spec);

  GBDTParams params;
  params.n_trees = 8;
  const serve::CompiledModel compiled =
      serve::compile(train_gbdt(DataView(wide), nullptr, params));
  if (compiled.n_features() > narrow.n_cols()) {
    EXPECT_THROW(compiled.predict_many(DataView(narrow), 1), InvalidArgument);
  }
}

// Compiling the best-model blob out of a search checkpoint must serve the
// same bits as the in-memory best model the search produced.
TEST(CompiledPredictDifferential, CheckpointBlobMatchesAutoML) {
  const Dataset data = make_data(Task::BinaryClassification, 0.1, 21);
  AutoMLOptions options;
  options.time_budget_seconds = 1e6;
  options.max_iterations = 3;
  options.estimator_list = {"lgbm"};
  options.resampling = ResamplingPolicy::ForceHoldout;
  options.seed = 5;

  AutoML automl;
  automl.fit(data, options);
  const std::string path = tmp_path("compiled_from_ckpt.ckpt");
  automl.checkpoint_to_file(path);

  const serve::CompiledModel compiled = serve::compile_checkpoint_file(path);
  const DataView all(data);
  expect_bits_equal(automl.predict(all), compiled.predict_many(all, 2),
                    "checkpoint blob");
}

// ---------------------------------------------------------------------------
// Missing-value routing property (ISSUE 6 satellite): hand-built trees with
// randomized missing-direction flags, evaluated on rows that are NaN at
// EVERY depth position — the interpreted walker and the flat tables must
// route identically. Leaf values are made distinct so value equality is
// routing equality.

FLAML_PROP(CompiledPredictProp, MissingRoutingMatchesEveryDepth, 60) {
  // Random tree over 6 numeric features, depth up to 5.
  const int n_features = 6;
  Tree tree;
  std::vector<std::int32_t> leaves = {0};
  const int n_splits = 1 + static_cast<int>(prop.rng.uniform_index(20));
  double next_leaf_value = 1.0;
  for (int s = 0; s < n_splits; ++s) {
    const std::size_t pick = prop.rng.uniform_index(leaves.size());
    const std::int32_t target = leaves[pick];
    leaves.erase(leaves.begin() + static_cast<std::ptrdiff_t>(pick));
    const auto [left, right] = tree.split_leaf(target);
    TreeNode& node = tree.node(static_cast<std::size_t>(target));
    node.feature = static_cast<std::int32_t>(prop.rng.uniform_index(n_features));
    node.threshold = static_cast<float>(prop.rng.uniform() * 2.0 - 1.0);
    node.missing_left = prop.rng.uniform() < 0.5;
    leaves.push_back(left);
    leaves.push_back(right);
  }
  for (std::int32_t leaf : leaves) {
    // Distinct values: equal predictions <=> equal routing.
    tree.node(static_cast<std::size_t>(leaf)).leaf_value = next_leaf_value;
    next_leaf_value += 1.0;
  }

  GBDTModel model(Task::Regression, 0, {0.0});
  model.add_tree(tree, 1.0);
  const serve::CompiledModel compiled = serve::compile(model);

  // Rows with per-cell NaN probability 1/2 hit "split feature missing" at
  // every depth position across cases; the all-NaN row forces the missing
  // branch at EVERY level of this tree in this very case.
  std::vector<ColumnInfo> columns(n_features);
  Dataset data(Task::Regression, columns);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (int r = 0; r < 40; ++r) {
    std::vector<float> row(n_features);
    for (float& v : row) {
      v = prop.rng.uniform() < 0.5 ? nan
                                   : static_cast<float>(prop.rng.uniform() * 2.0 - 1.0);
    }
    data.add_row(row, 0.0);
  }
  data.add_row(std::vector<float>(n_features, nan), 0.0);

  const DataView view(data);
  const Predictions interpreted = model.predict(view);
  const Predictions compiled_out = compiled.predict_many(view, 1);
  ASSERT_EQ(interpreted.values.size(), compiled_out.values.size());
  for (std::size_t i = 0; i < interpreted.values.size(); ++i) {
    ASSERT_EQ(interpreted.values[i], compiled_out.values[i])
        << "row " << i << " routed differently — seed " << prop.seed;
  }
}

}  // namespace
}  // namespace flaml
