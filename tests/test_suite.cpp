#include "data/suite.h"

#include <gtest/gtest.h>

#include <set>

namespace flaml {
namespace {

TEST(Suite, HasAllThreeGroups) {
  EXPECT_GE(suite_group(SuiteGroup::Binary).size(), 10u);
  EXPECT_GE(suite_group(SuiteGroup::MultiClass).size(), 8u);
  EXPECT_GE(suite_group(SuiteGroup::Regression).size(), 6u);
}

TEST(Suite, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& e : benchmark_suite()) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate " << e.name;
  }
}

TEST(Suite, LookupByName) {
  const SuiteEntry& e = suite_entry("higgs");
  EXPECT_EQ(e.group, SuiteGroup::Binary);
  EXPECT_THROW(suite_entry("nope"), InvalidArgument);
}

TEST(Suite, GroupNames) {
  EXPECT_STREQ(suite_group_name(SuiteGroup::Binary), "binary");
  EXPECT_STREQ(suite_group_name(SuiteGroup::MultiClass), "multiclass");
  EXPECT_STREQ(suite_group_name(SuiteGroup::Regression), "regression");
}

class SuiteMaterializeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteMaterializeTest, MaterializesAtSmallScale) {
  const SuiteEntry& entry = suite_entry(GetParam());
  Dataset data = make_suite_dataset(entry, 0.2);
  EXPECT_GE(data.n_rows(), 200u);
  EXPECT_NO_THROW(data.validate());
  switch (entry.group) {
    case SuiteGroup::Binary:
      EXPECT_EQ(data.task(), Task::BinaryClassification);
      break;
    case SuiteGroup::MultiClass:
      EXPECT_EQ(data.task(), Task::MultiClassification);
      EXPECT_GE(data.n_classes(), 3);
      break;
    case SuiteGroup::Regression:
      EXPECT_EQ(data.task(), Task::Regression);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEntries, SuiteMaterializeTest,
    ::testing::Values("blood-transfusion", "australian", "credit-g", "kc1", "phoneme",
                      "christine", "amazon-employee", "adult", "aps-failure", "higgs",
                      "miniboone", "airlines", "car", "vehicle", "mfeat-factors",
                      "segment", "shuttle", "connect-4", "helena", "jannis",
                      "covertype", "dionis", "bng-echomonths", "pol", "houses",
                      "house-16h", "fried", "mv", "poker", "bng-pbc"));

TEST(Suite, RowScaleScalesRows) {
  const SuiteEntry& entry = suite_entry("higgs");
  Dataset small = make_suite_dataset(entry, 0.05);
  Dataset big = make_suite_dataset(entry, 0.2);
  EXPECT_LT(small.n_rows(), big.n_rows());
}

TEST(Suite, DeterministicMaterialization) {
  const SuiteEntry& entry = suite_entry("adult");
  Dataset a = make_suite_dataset(entry, 0.1);
  Dataset b = make_suite_dataset(entry, 0.1);
  ASSERT_EQ(a.n_rows(), b.n_rows());
  for (std::size_t i = 0; i < a.n_rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.label(i), b.label(i));
  }
}

TEST(Suite, RejectsNonPositiveScale) {
  EXPECT_THROW(make_suite_dataset(suite_entry("higgs"), 0.0), InvalidArgument);
}

}  // namespace
}  // namespace flaml
