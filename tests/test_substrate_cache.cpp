// The cross-trial binned-substrate cache (src/automl/substrate_cache.h):
// exact-row keying, hit/miss/bytes accounting, memoized CV folds, the
// trainers' accept-or-rebin guard, and — the contract everything rests on —
// byte-identity between cached and freshly built substrates and between
// models trained with and without a provider.
#include "automl/substrate_cache.h"

#include <gtest/gtest.h>

#include <sstream>

#include "automl/trial_runner.h"
#include "boosting/gbdt.h"
#include "data/generators.h"
#include "forest/forest.h"
#include "learners/registry.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "support/prop.h"
#include "tree/histogram.h"

namespace flaml {
namespace {

Dataset binary_data(std::size_t n = 300, std::uint64_t seed = 11) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = n;
  spec.n_features = 5;
  spec.seed = seed;
  return make_classification(spec);
}

void expect_matrices_equal(const BinnedMatrix& a, const BinnedMatrix& b,
                           const std::string& what) {
  ASSERT_EQ(a.n_rows(), b.n_rows()) << what;
  ASSERT_EQ(a.n_features(), b.n_features()) << what;
  for (std::size_t f = 0; f < a.n_features(); ++f) {
    EXPECT_EQ(a.feature(f), b.feature(f)) << what << " feature " << f;
  }
}

void expect_substrates_equal(const BinnedSubstrate& a, const BinnedSubstrate& b,
                             const std::string& what) {
  EXPECT_EQ(a.max_bin, b.max_bin) << what;
  ASSERT_EQ(a.mapper.n_features(), b.mapper.n_features()) << what;
  for (std::size_t f = 0; f < a.mapper.n_features(); ++f) {
    const FeatureBins& fa = a.mapper.feature(f);
    const FeatureBins& fb = b.mapper.feature(f);
    EXPECT_EQ(fa.n_value_bins, fb.n_value_bins) << what << " feature " << f;
    EXPECT_EQ(fa.edges, fb.edges) << what << " feature " << f;
  }
  expect_matrices_equal(a.binned, b.binned, what);
}

TEST(SubstrateCache, PrefixMatchesFreshBuildExactly) {
  Dataset data = binary_data(250);
  DataView view(data);
  SubstrateCache cache(&view, 7, observe::Tracer(), nullptr);
  for (std::size_t s : {10u, 40u, 250u}) {
    for (int max_bin : {15, 255}) {
      auto cached = cache.prefix(s, max_bin);
      ASSERT_NE(cached, nullptr);
      BinnedSubstrate fresh = build_substrate(view.prefix(s), max_bin);
      expect_substrates_equal(*cached, fresh,
                              "prefix s=" + std::to_string(s) + " max_bin=" +
                                  std::to_string(max_bin));
    }
  }
}

TEST(SubstrateCache, HitMissAndBytesCounters) {
  Dataset data = binary_data(200);
  DataView view(data);
  observe::MetricsRegistry metrics;
  SubstrateCache cache(&view, 7, observe::Tracer(), &metrics);

  auto a = cache.prefix(100, 255);  // miss
  auto b = cache.prefix(100, 255);  // hit: same key
  EXPECT_EQ(a.get(), b.get());      // the SAME shared substrate
  cache.prefix(100, 63);            // miss: different max_bin
  cache.prefix(50, 255);            // miss: different rows

  const SubstrateCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 3u);
  // 3 substrates of 100/100/50 rows × 5 features: 2-byte columns, plus the
  // 1-byte packed row-major plane (all codes ≤ 255 here) unless the scalar
  // kernel escape hatch disabled packing.
  const std::size_t cells = (100 + 100 + 50) * 5;
  const std::size_t expected_bytes =
      cells * sizeof(std::uint16_t) +
      (packed_bins_enabled() ? cells * sizeof(std::uint8_t) : 0);
  EXPECT_EQ(c.bytes, expected_bytes);
  EXPECT_DOUBLE_EQ(metrics.value("substrate_cache.hits"), 1.0);
  EXPECT_DOUBLE_EQ(metrics.value("substrate_cache.misses"), 3.0);
  EXPECT_DOUBLE_EQ(metrics.value("substrate_cache.bytes"),
                   static_cast<double>(c.bytes));
}

TEST(SubstrateCache, FoldsMemoizedAndEqualToFreshSplit) {
  Dataset data = binary_data(120);
  DataView view(data);
  const std::uint64_t fold_seed = 12345;
  SubstrateCache cache(&view, fold_seed, observe::Tracer(), nullptr);

  auto folds_a = cache.folds(80, 4);
  auto folds_b = cache.folds(80, 4);
  EXPECT_EQ(folds_a.get(), folds_b.get());  // memoized, not re-split

  Rng rng(fold_seed);
  std::vector<Fold> fresh = kfold_split(view.prefix(80), 4, rng);
  ASSERT_EQ(folds_a->size(), fresh.size());
  for (std::size_t f = 0; f < fresh.size(); ++f) {
    EXPECT_EQ((*folds_a)[f].train.rows(), fresh[f].train.rows()) << "fold " << f;
    EXPECT_EQ((*folds_a)[f].valid.rows(), fresh[f].valid.rows()) << "fold " << f;
  }
}

TEST(SubstrateCache, FoldTrainMatchesFreshBuildOnFoldRows) {
  Dataset data = binary_data(150);
  DataView view(data);
  const std::uint64_t fold_seed = 99;
  SubstrateCache cache(&view, fold_seed, observe::Tracer(), nullptr);

  const int k = 3;
  auto folds = cache.folds(90, k);
  for (int f = 0; f < k; ++f) {
    auto cached = cache.fold_train(90, k, f, 127);
    BinnedSubstrate fresh =
        build_substrate((*folds)[static_cast<std::size_t>(f)].train, 127);
    expect_substrates_equal(*cached, fresh, "fold " + std::to_string(f));
  }
}

TEST(SubstrateCache, BuildEmitsTraceEvents) {
  Dataset data = binary_data(100);
  DataView view(data);
  auto sink = std::make_shared<observe::MemoryTraceSink>();
  SubstrateCache cache(&view, 7, observe::Tracer(sink), nullptr);
  cache.prefix(60, 255);
  cache.prefix(60, 255);  // hit: no second event
  cache.folds(60, 3);
  cache.fold_train(60, 3, 1, 255);

  auto events = sink->of_type("substrate_cache");
  ASSERT_EQ(events.size(), 2u);  // one prefix build + one fold build
  EXPECT_EQ(events[0].fields.at("scope").str, "prefix");
  EXPECT_DOUBLE_EQ(events[0].fields.at("sample_size").number, 60.0);
  EXPECT_DOUBLE_EQ(events[0].fields.at("max_bin").number, 255.0);
  EXPECT_GT(events[0].fields.at("bytes").number, 0.0);
  EXPECT_EQ(events[1].fields.at("scope").str, "fold");
  EXPECT_DOUBLE_EQ(events[1].fields.at("k").number, 3.0);
  EXPECT_DOUBLE_EQ(events[1].fields.at("fold").number, 1.0);
  EXPECT_GE(events[1].fields.at("total_bytes").number,
            events[1].fields.at("bytes").number);
}

// --- Trainer integration: provider == no provider, byte for byte ---

TEST(SubstrateCache, GbdtWithProviderIsByteIdentical) {
  Dataset data = binary_data(220);
  DataView view(data);
  SubstrateCache cache(&view, 7, observe::Tracer(), nullptr);

  GBDTParams params;
  params.n_trees = 10;
  params.max_leaves = 8;
  params.max_bin = 63;
  params.seed = 5;
  const std::string plain = train_gbdt(view, nullptr, params).to_string();

  params.substrate = [&](int max_bin) { return cache.prefix(220, max_bin); };
  const std::string cached = train_gbdt(view, nullptr, params).to_string();
  EXPECT_EQ(plain, cached);
  EXPECT_EQ(cache.counters().misses, 1u);  // the provider was consulted
}

TEST(SubstrateCache, ForestWithProviderIsByteIdentical) {
  Dataset data = binary_data(220);
  DataView view(data);
  SubstrateCache cache(&view, 7, observe::Tracer(), nullptr);

  ForestParams params;
  params.n_trees = 8;
  params.max_leaves = 16;
  params.seed = 5;
  const auto save_text = [](const ForestModel& model) {
    std::ostringstream os;
    model.save(os);
    return os.str();
  };
  const std::string plain = save_text(train_forest(view, params));

  params.substrate = [&](int max_bin) { return cache.prefix(220, max_bin); };
  const std::string cached = save_text(train_forest(view, params));
  EXPECT_EQ(plain, cached);
}

TEST(SubstrateCache, TrainerGuardRejectsMismatchedSubstrate) {
  Dataset data = binary_data(200);
  DataView view(data);
  // A provider serving the WRONG substrate (different rows / different
  // max_bin) must be ignored — the trainer falls back to a fresh fit and
  // the model is unchanged.
  auto wrong_rows = std::make_shared<const BinnedSubstrate>(
      build_substrate(view.prefix(100), 255));
  auto wrong_bins = std::make_shared<const BinnedSubstrate>(
      build_substrate(view, 31));

  GBDTParams params;
  params.n_trees = 6;
  params.max_leaves = 8;
  params.max_bin = 255;
  params.seed = 3;
  const std::string plain = train_gbdt(view, nullptr, params).to_string();

  params.substrate = [&](int) { return wrong_rows; };
  EXPECT_EQ(train_gbdt(view, nullptr, params).to_string(), plain);
  params.substrate = [&](int) { return wrong_bins; };
  EXPECT_EQ(train_gbdt(view, nullptr, params).to_string(), plain);
  params.substrate = [&](int) {
    return std::shared_ptr<const BinnedSubstrate>();  // provider declines
  };
  EXPECT_EQ(train_gbdt(view, nullptr, params).to_string(), plain);
}

// --- TrialRunner integration ---

TEST(SubstrateCache, RunnerReusesSubstrateAcrossTrials) {
  Dataset data = binary_data(400);
  TrialRunner::Options options;
  options.resampling = Resampling::Holdout;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  ASSERT_NE(runner.substrate_cache(), nullptr);
  LearnerPtr learner = builtin_learner("lgbm");
  Config config =
      learner->space(data.task(), runner.max_sample_size()).initial_config();

  TrialResult first = runner.run(*learner, config, 200, 0.0, 1);
  const auto after_first = runner.substrate_cache()->counters();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_GT(after_first.misses, 0u);

  TrialResult second = runner.run(*learner, config, 200, 0.0, 1);
  const auto after_second = runner.substrate_cache()->counters();
  EXPECT_GT(after_second.hits, 0u);
  EXPECT_EQ(after_second.misses, after_first.misses);
  // Same salt, same sample: the trials are identical either way.
  EXPECT_DOUBLE_EQ(first.error, second.error);
}

TEST(SubstrateCache, RunnerCacheOnOffTrialsIdentical) {
  Dataset data = binary_data(360);
  for (Resampling mode : {Resampling::Holdout, Resampling::CV}) {
    TrialRunner::Options on;
    on.resampling = mode;
    TrialRunner::Options off = on;
    off.reuse_binned_data = false;
    TrialRunner runner_on(data, ErrorMetric::default_for(data.task()), on);
    TrialRunner runner_off(data, ErrorMetric::default_for(data.task()), off);
    EXPECT_EQ(runner_off.substrate_cache(), nullptr);
    for (const char* name : {"lgbm", "rf"}) {
      LearnerPtr learner = builtin_learner(name);
      Config config =
          learner->space(data.task(), runner_on.max_sample_size())
              .initial_config();
      for (std::size_t s : {90u, 180u, 180u}) {  // repeat exercises a hit
        TrialResult a = runner_on.run(*learner, config, s, 0.0, 7);
        TrialResult b = runner_off.run(*learner, config, s, 0.0, 7);
        EXPECT_DOUBLE_EQ(a.error, b.error)
            << name << " s=" << s << " mode=" << resampling_name(mode);
      }
    }
    EXPECT_GT(runner_on.substrate_cache()->counters().hits, 0u);
  }
}

// --- Properties ---

// Cached prefix and fold substrates are bit-identical to a fresh fit+encode
// on the same rows, for random shapes, sample sizes, fold counts and bin
// budgets.
FLAML_PROP(SubstrateCacheProp, CachedEqualsFreshOnSameRows, 25) {
  SyntheticSpec spec;
  spec.task = prop.rng.uniform() < 0.5 ? Task::BinaryClassification
                                       : Task::Regression;
  spec.n_rows = 30 + prop.rng.uniform_index(170);
  spec.n_features = 2 + static_cast<int>(prop.rng.uniform_index(6));
  spec.seed = prop.seed;
  Dataset data = make_synthetic(spec);
  DataView view(data);
  const std::uint64_t fold_seed = prop.rng.next();
  SubstrateCache cache(&view, fold_seed, observe::Tracer(), nullptr);

  const std::size_t s = 10 + prop.rng.uniform_index(view.n_rows() - 9);
  const int max_bin = 2 + static_cast<int>(prop.rng.uniform_index(300));
  auto cached = cache.prefix(s, max_bin);
  expect_substrates_equal(*cached, build_substrate(view.prefix(s), max_bin),
                          "prefix");

  const int k = choose_cv_k(view.prefix(s), 2 + static_cast<int>(
                                                    prop.rng.uniform_index(5)));
  if (k != 0) {
    const int f = static_cast<int>(prop.rng.uniform_index(
        static_cast<std::size_t>(k)));
    auto fold_sub = cache.fold_train(s, k, f, max_bin);
    Rng rng(fold_seed);
    std::vector<Fold> fresh = kfold_split(view.prefix(s), k, rng);
    expect_substrates_equal(
        *fold_sub,
        build_substrate(fresh[static_cast<std::size_t>(f)].train, max_bin),
        "fold");
  }
}

// Under a FIXED mapper, a BinnedView window over the first n rows equals
// encoding those rows directly — encode() is row-independent. (This is why
// the window type is safe as a test/bench utility, and why the cache must
// NOT serve slices of a full-size FIT, whose edges depend on the rows seen.)
FLAML_PROP(SubstrateCacheProp, BinnedViewSliceEqualsDirectEncode, 25) {
  SyntheticSpec spec;
  spec.task = Task::Regression;
  spec.n_rows = 20 + prop.rng.uniform_index(120);
  spec.n_features = 1 + static_cast<int>(prop.rng.uniform_index(5));
  spec.missing_fraction = prop.rng.uniform() < 0.3 ? 0.1 : 0.0;
  spec.seed = prop.seed;
  Dataset data = make_synthetic(spec);
  DataView view(data);
  const int max_bin = 2 + static_cast<int>(prop.rng.uniform_index(100));
  BinMapper mapper = BinMapper::fit(view, max_bin);
  BinnedMatrix full = mapper.encode(view);

  const std::size_t n = 1 + prop.rng.uniform_index(view.n_rows());
  BinnedView window(full, n);
  ASSERT_EQ(window.n_rows(), n);
  BinnedMatrix direct = mapper.encode(view.prefix(n));
  expect_matrices_equal(window.materialize(), direct, "slice");
  for (std::size_t f = 0; f < direct.n_features(); ++f) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(window.bin(i, f), direct.bin(i, f));
    }
  }
}

}  // namespace
}  // namespace flaml
