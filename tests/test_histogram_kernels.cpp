// Kernel differential-test harness (docs/TESTING.md, "Kernel differential
// testing"): every packed histogram kernel (portable / sse2 / avx2, whichever
// this build + CPU supports) is compared against the legacy scalar build —
// the reference implementation — over a sweep of bin widths crossing the
// uint8/uint16 packing boundary and a battery of edge shapes:
//
//   * bin counts {2, 16, 255, 256, 257, 1024}: 256 is the last width that
//     packs to uint8 codes (max code 255), 257 the first that needs uint16;
//   * NaN feature values (missing bin via a real BinMapper encode);
//   * missing-bin-heavy synthetic codes;
//   * all rows in one bin (constant feature — the worst same-accumulator
//     dependency chain);
//   * empty features (excluded from the selection; zero-row builds).
//
// Contracts checked, per kernel:
//   * counts (n, and class-layout cells under unit weights) exactly equal;
//   * (g, h) sums within kUlpBound ulps of scalar — pinned at ZERO: the
//     packed kernels execute the same IEEE adds in the same per-accumulator
//     order as the scalar loop (see hist_kernels_impl.h), so they are
//     bit-identical, NaN payloads included. The bound is a named constant so
//     a future kernel that genuinely must reorder states its looseness in
//     the diff of this file, not silently.
//   * kernel-vs-kernel and run-vs-run bit-identity at thread counts 1..8 —
//     the determinism contract that lets simd default on under the golden
//     search digests.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "data/generators.h"
#include "support/prop.h"
#include "tree/binning.h"
#include "tree/histogram.h"
#include "tree/packed_bins.h"

namespace flaml {
namespace {

using testing::PropCase;

// Pinned accuracy bound for (g, h) sums vs the scalar reference, in ulps.
// Zero is intentional — see the file comment. Loosening it is an API-level
// decision, not a test fix.
constexpr std::int64_t kUlpBound = 0;

std::uint64_t double_bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

// Distance in representable doubles. Identical bit patterns (including a
// shared NaN payload and -0.0 vs -0.0) are 0; any NaN-vs-non-NaN pair is
// maximal, never "close".
std::int64_t ulp_distance(double a, double b) {
  if (double_bits(a) == double_bits(b)) return 0;
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  const auto ordered = [](double v) {
    const auto i = static_cast<std::int64_t>(double_bits(v));
    return i < 0 ? static_cast<std::int64_t>(0x8000000000000000ULL) - i : i;
  };
  const std::int64_t da = ordered(a), db = ordered(b);
  return da > db ? da - db : db - da;
}

std::vector<HistKernel> packed_kernels() {
  std::vector<HistKernel> out;
  for (HistKernel k :
       {HistKernel::Portable, HistKernel::Sse2, HistKernel::Avx2}) {
    if (hist_kernel_available(k)) out.push_back(k);
  }
  return out;
}

void expect_grad_equal(const std::vector<HistEntry>& got,
                       const std::vector<HistEntry>& ref,
                       const std::string& what) {
  ASSERT_EQ(got.size(), ref.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(got[i].n, ref[i].n) << what << " slot " << i;
    EXPECT_LE(ulp_distance(got[i].g, ref[i].g), kUlpBound)
        << what << " slot " << i << " g: " << got[i].g << " vs " << ref[i].g;
    EXPECT_LE(ulp_distance(got[i].h, ref[i].h), kUlpBound)
        << what << " slot " << i << " h: " << got[i].h << " vs " << ref[i].h;
    if (::testing::Test::HasFailure()) return;  // one slot is enough noise
  }
}

void expect_cells_equal(const std::vector<double>& got,
                        const std::vector<double>& ref,
                        const std::string& what) {
  ASSERT_EQ(got.size(), ref.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_LE(ulp_distance(got[i], ref[i]), kUlpBound)
        << what << " cell " << i << ": " << got[i] << " vs " << ref[i];
    if (::testing::Test::HasFailure()) return;
  }
}

// One synthetic fixture: codes are authored directly (no BinMapper), so the
// sweep controls the exact bin width and edge shape.
enum class Edge { Random, AllOneBin, MissingHeavy, EmptyFeature };

const char* edge_name(Edge e) {
  switch (e) {
    case Edge::Random: return "random";
    case Edge::AllOneBin: return "all-one-bin";
    case Edge::MissingHeavy: return "missing-heavy";
    case Edge::EmptyFeature: return "empty-feature";
  }
  return "?";
}

struct Fixture {
  BinnedMatrix binned;
  PackedBins packed;
  std::vector<std::size_t> offsets;
  std::vector<int> features;  // gradient-build selection (may exclude some)
  std::vector<double> grad, hess, unit, weights;
  std::vector<int> labels;
  std::vector<std::uint32_t> rows, subset;
  int n_classes = 3;
};

Fixture make_fixture(Rng& rng, std::size_t n_rows, int n_bins, Edge edge) {
  const std::size_t n_features = 5;
  Fixture fx;
  fx.binned = BinnedMatrix(n_rows, n_features);
  fx.offsets.assign(n_features + 1, 0);
  for (std::size_t f = 0; f < n_features; ++f) {
    fx.offsets[f + 1] = fx.offsets[f] + static_cast<std::size_t>(n_bins);
    auto& col = fx.binned.feature(f);
    for (std::size_t r = 0; r < n_rows; ++r) {
      std::uint16_t code =
          static_cast<std::uint16_t>(rng.uniform_index(
              static_cast<std::size_t>(n_bins)));
      if (edge == Edge::AllOneBin) {
        code = static_cast<std::uint16_t>(n_bins - 1);  // sole hot bin
      } else if (edge == Edge::MissingHeavy && rng.bernoulli(0.8)) {
        code = static_cast<std::uint16_t>(n_bins - 1);  // the missing bin
      }
      col[r] = code;
    }
  }
  // Force the width boundary to be about the BIN COUNT, not sampling luck:
  // the last row of feature 0 carries the maximal code.
  fx.binned.feature(0)[n_rows - 1] = static_cast<std::uint16_t>(n_bins - 1);
  fx.packed = PackedBins::pack(fx.binned);

  fx.features.resize(n_features);
  std::iota(fx.features.begin(), fx.features.end(), 0);
  if (edge == Edge::EmptyFeature) {
    fx.features.erase(fx.features.begin() + 2);  // feature 2 stays all-zero
  }
  fx.grad.resize(n_rows);
  fx.hess.resize(n_rows);
  fx.unit.assign(n_rows, 1.0);
  fx.weights.resize(n_rows);
  fx.labels.resize(n_rows);
  for (std::size_t i = 0; i < n_rows; ++i) {
    fx.grad[i] = rng.normal();
    fx.hess[i] = rng.uniform(1e-3, 2.0);
    fx.weights[i] = rng.uniform(0.1, 2.0);
    fx.labels[i] = static_cast<int>(rng.uniform_index(
        static_cast<std::size_t>(fx.n_classes)));
  }
  fx.rows.resize(n_rows);
  std::iota(fx.rows.begin(), fx.rows.end(), 0u);
  for (std::uint32_t i = 0; i < n_rows; i += 3) fx.subset.push_back(i);
  return fx;
}

// The full differential: every packed kernel against the scalar reference,
// over gradient (unit and general hessians, full rows and a gather subset,
// plus a zero-row build), class build, class remove, and the compact
// per-feature fill.
void run_differential(const Fixture& fx, const std::string& what) {
  std::vector<HistEntry> ref_full, ref_sub, ref_unit, ref_empty;
  build_gradient_histogram(fx.binned, fx.offsets, fx.features, fx.rows.data(),
                           fx.rows.size(), fx.grad, fx.hess, ref_full);
  build_gradient_histogram(fx.binned, fx.offsets, fx.features,
                           fx.subset.data(), fx.subset.size(), fx.grad,
                           fx.hess, ref_sub);
  build_gradient_histogram(fx.binned, fx.offsets, fx.features, fx.rows.data(),
                           fx.rows.size(), fx.grad, fx.unit, ref_unit);
  build_gradient_histogram(fx.binned, fx.offsets, fx.features, fx.rows.data(),
                           0, fx.grad, fx.hess, ref_empty);

  std::vector<double> ref_class, ref_removed, ref_fill;
  build_class_histogram(fx.binned, fx.offsets, fx.n_classes, fx.rows.data(),
                        fx.rows.size(), fx.labels, fx.weights, ref_class);
  ref_removed = ref_class;
  remove_rows_from_class_histogram(fx.binned, fx.offsets, fx.n_classes,
                                   fx.subset.data(), fx.subset.size(),
                                   fx.labels, fx.weights, ref_removed);
  const int f0_bins = static_cast<int>(fx.offsets[1] - fx.offsets[0]);
  fill_feature_class_counts(fx.binned.feature(0), f0_bins, fx.n_classes,
                            fx.subset.data(), fx.subset.size(), fx.labels,
                            fx.weights, ref_fill);

  for (HistKernel k : packed_kernels()) {
    const std::string tag = what + " kernel=" + hist_kernel_name(k);
    std::vector<HistEntry> hist;
    build_gradient_histogram_packed(fx.packed, fx.offsets, fx.features,
                                    fx.rows.data(), fx.rows.size(), fx.grad,
                                    fx.hess, /*unit_hess=*/false, hist, k);
    expect_grad_equal(hist, ref_full, tag + " grad-full");
    build_gradient_histogram_packed(fx.packed, fx.offsets, fx.features,
                                    fx.subset.data(), fx.subset.size(),
                                    fx.grad, fx.hess, false, hist, k);
    expect_grad_equal(hist, ref_sub, tag + " grad-subset");
    build_gradient_histogram_packed(fx.packed, fx.offsets, fx.features,
                                    fx.rows.data(), fx.rows.size(), fx.grad,
                                    fx.unit, /*unit_hess=*/true, hist, k);
    expect_grad_equal(hist, ref_unit, tag + " grad-unit");
    build_gradient_histogram_packed(fx.packed, fx.offsets, fx.features,
                                    fx.rows.data(), 0, fx.grad, fx.hess,
                                    false, hist, k);
    expect_grad_equal(hist, ref_empty, tag + " grad-zero-rows");

    std::vector<double> cells;
    build_class_histogram_packed(fx.packed, fx.offsets, fx.n_classes,
                                 fx.rows.data(), fx.rows.size(), fx.labels,
                                 fx.weights, cells, k);
    expect_cells_equal(cells, ref_class, tag + " class-full");
    remove_rows_from_class_histogram_packed(
        fx.packed, fx.offsets, fx.n_classes, fx.subset.data(),
        fx.subset.size(), fx.labels, fx.weights, cells, k);
    expect_cells_equal(cells, ref_removed, tag + " class-removed");
    std::vector<double> fill;
    fill_feature_class_counts_packed(fx.packed, 0, f0_bins, fx.n_classes,
                                     fx.subset.data(), fx.subset.size(),
                                     fx.labels, fx.weights, fill, k);
    expect_cells_equal(fill, ref_fill, tag + " compact-fill");
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(HistogramKernels, AtLeastOnePackedKernelIsAvailable) {
  // Portable has no ISA requirement, so the packed path can never be
  // silently absent. best_hist_kernel() must be one of the packed kernels.
  EXPECT_TRUE(hist_kernel_available(HistKernel::Portable));
  EXPECT_FALSE(packed_kernels().empty());
  EXPECT_NE(best_hist_kernel(), HistKernel::Scalar);
  EXPECT_TRUE(hist_kernel_available(best_hist_kernel()));
}

TEST(HistogramKernels, DifferentialSweepAcrossBinWidthsAndEdges) {
  Rng rng(0x9e11);
  for (int n_bins : {2, 16, 255, 256, 257, 1024}) {
    for (Edge edge : {Edge::Random, Edge::AllOneBin, Edge::MissingHeavy,
                      Edge::EmptyFeature}) {
      Fixture fx = make_fixture(rng, /*n_rows=*/384, n_bins, edge);
      // The packing width is part of the contract under test: uint8 through
      // 256 bins (max code 255), uint16 from 257 up.
      EXPECT_EQ(fx.packed.wide(), n_bins > 256)
          << "n_bins " << n_bins << " " << edge_name(edge);
      run_differential(fx, "bins=" + std::to_string(n_bins) + " edge=" +
                               std::string(edge_name(edge)));
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(HistogramKernels, NanFeatureValuesLandInMissingBinIdentically) {
  // End-to-end NaN handling: a real BinMapper encode routes NaNs to each
  // feature's missing bin; the packed kernels must reproduce the scalar
  // histograms over that encoding bit for bit.
  SyntheticSpec spec;
  spec.task = Task::Regression;
  spec.n_rows = 500;
  spec.n_features = 6;
  spec.missing_fraction = 0.35;
  spec.categorical_fraction = 0.3;
  spec.seed = 77;
  const Dataset data = make_regression(spec);
  const BinMapper mapper = BinMapper::fit(DataView(data), 63);

  Fixture fx;
  fx.binned = mapper.encode(DataView(data));
  fx.packed = PackedBins::pack(fx.binned);
  fx.offsets = histogram_offsets(mapper);
  fx.features.resize(mapper.n_features());
  std::iota(fx.features.begin(), fx.features.end(), 0);
  Rng rng(0xabcd);
  const std::size_t n = data.n_rows();
  fx.grad.resize(n);
  fx.hess.resize(n);
  fx.unit.assign(n, 1.0);
  fx.weights.resize(n);
  fx.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    fx.grad[i] = rng.normal();
    fx.hess[i] = rng.uniform(1e-3, 2.0);
    fx.weights[i] = rng.uniform(0.1, 2.0);
    fx.labels[i] = static_cast<int>(rng.uniform_index(3));
  }
  fx.rows.resize(n);
  std::iota(fx.rows.begin(), fx.rows.end(), 0u);
  for (std::uint32_t i = 0; i < n; i += 3) fx.subset.push_back(i);
  run_differential(fx, "nan-encode");
}

TEST(HistogramKernels, NanGradientsPropagateBitIdentically) {
  // Poisoned gradients must not diverge between kernels: the adds happen in
  // the same order, so even NaN payloads and infinities come out bitwise
  // equal to scalar (ulp_distance treats equal-bits NaN as 0).
  Rng rng(0x517e);
  Fixture fx = make_fixture(rng, 256, 64, Edge::Random);
  fx.grad[3] = std::numeric_limits<double>::quiet_NaN();
  fx.grad[100] = std::numeric_limits<double>::infinity();
  fx.grad[101] = -std::numeric_limits<double>::infinity();
  fx.hess[50] = std::numeric_limits<double>::quiet_NaN();
  run_differential(fx, "nan-grad");
}

TEST(HistogramKernels, BitIdenticalAcrossRunsAndThreadCounts1To8) {
  Rng rng(0x7ead5);
  // 1500 rows crosses the parallel gate, so threads > 1 genuinely shard.
  Fixture fx = make_fixture(rng, 1500, 200, Edge::Random);
  for (HistKernel k : packed_kernels()) {
    std::vector<HistEntry> first;
    std::vector<double> first_cells;
    for (int run = 0; run < 2; ++run) {
      for (int n_threads = 1; n_threads <= 8; ++n_threads) {
        const HistParallel par{&shared_pool(), n_threads};
        const std::string tag = std::string("kernel=") + hist_kernel_name(k) +
                                " run=" + std::to_string(run) +
                                " threads=" + std::to_string(n_threads);
        std::vector<HistEntry> hist;
        build_gradient_histogram_packed(fx.packed, fx.offsets, fx.features,
                                        fx.rows.data(), fx.rows.size(),
                                        fx.grad, fx.hess, false, hist, k, par);
        std::vector<double> cells;
        build_class_histogram_packed(fx.packed, fx.offsets, fx.n_classes,
                                     fx.rows.data(), fx.rows.size(),
                                     fx.labels, fx.weights, cells, k, par);
        if (first.empty()) {
          first = hist;
          first_cells = cells;
          continue;
        }
        ASSERT_EQ(hist.size(), first.size()) << tag;
        for (std::size_t i = 0; i < first.size(); ++i) {
          EXPECT_EQ(double_bits(hist[i].g), double_bits(first[i].g)) << tag;
          EXPECT_EQ(double_bits(hist[i].h), double_bits(first[i].h)) << tag;
          EXPECT_EQ(hist[i].n, first[i].n) << tag;
          if (::testing::Test::HasFailure()) return;
        }
        ASSERT_EQ(cells.size(), first_cells.size()) << tag;
        for (std::size_t i = 0; i < first_cells.size(); ++i) {
          EXPECT_EQ(double_bits(cells[i]), double_bits(first_cells[i])) << tag;
          if (::testing::Test::HasFailure()) return;
        }
      }
    }
  }
}

FLAML_PROP(HistogramKernelsProp, DifferentialHoldsOnRandomShapes, 12) {
  const std::size_t n_rows = 32 + prop.rng.uniform_index(600);
  const int n_bins = 2 + static_cast<int>(prop.rng.uniform_index(400));
  const Edge edge = static_cast<Edge>(prop.rng.uniform_index(4));
  Fixture fx = make_fixture(prop.rng, n_rows, n_bins, edge);
  run_differential(fx, "prop bins=" + std::to_string(n_bins) + " edge=" +
                           std::string(edge_name(edge)));
}

// ---------------------------------------------------------------------------
// Packed-layout properties: PackedBins must be a lossless, width-minimal,
// row-major transpose of the BinnedMatrix it came from.

FLAML_PROP(PackedBinsProp, RoundTripIsLossless, 25) {
  const std::size_t n_rows = 1 + prop.rng.uniform_index(300);
  const std::size_t n_features = 1 + prop.rng.uniform_index(12);
  // Sweep the max code across the uint8/uint16 boundary with extra mass on
  // the interesting region (254..257).
  const int max_code =
      prop.rng.bernoulli(0.5)
          ? 254 + static_cast<int>(prop.rng.uniform_index(4))
          : static_cast<int>(prop.rng.uniform_index(1200));
  BinnedMatrix binned(n_rows, n_features);
  std::uint16_t seen_max = 0;
  for (std::size_t f = 0; f < n_features; ++f) {
    for (std::size_t r = 0; r < n_rows; ++r) {
      const auto code = static_cast<std::uint16_t>(
          prop.rng.uniform_index(static_cast<std::size_t>(max_code) + 1));
      binned.feature(f)[r] = code;
      seen_max = std::max(seen_max, code);
    }
  }
  const PackedBins packed = PackedBins::pack(binned);
  ASSERT_FALSE(packed.empty());
  ASSERT_EQ(packed.n_rows(), n_rows);
  ASSERT_EQ(packed.n_features(), n_features);
  // Width-minimal: uint8 exactly when every code fits in a byte.
  EXPECT_EQ(packed.wide(), seen_max > 255) << "max code " << seen_max;
  EXPECT_EQ(packed.bytes(),
            n_rows * n_features * (packed.wide() ? sizeof(std::uint16_t)
                                                 : sizeof(std::uint8_t)));
  // Lossless: every (row, feature) code survives the transpose, via both
  // the checked accessor and the raw plane the kernels read.
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (std::size_t f = 0; f < n_features; ++f) {
      ASSERT_EQ(packed.bin(r, f), binned.bin(r, f))
          << "row " << r << " feature " << f;
      const std::size_t at = r * n_features + f;
      const std::uint16_t raw =
          packed.wide() ? packed.codes16()[at]
                        : static_cast<std::uint16_t>(packed.codes8()[at]);
      ASSERT_EQ(raw, binned.bin(r, f)) << "row " << r << " feature " << f;
    }
  }
}

FLAML_PROP(PackedBinsProp, MapperEncodePacksToMapperWidth, 8) {
  // Through the real pipeline: fit a mapper at a random max_bin (including
  // the 256 boundary), encode, pack — the packed width must follow the
  // actual maximum code, which the mapper caps at max_bin (value bins +
  // missing bin - 1).
  SyntheticSpec spec;
  spec.task = Task::Regression;
  spec.n_rows = 64 + prop.rng.uniform_index(400);
  spec.n_features = 2 + static_cast<int>(prop.rng.uniform_index(6));
  spec.missing_fraction = prop.rng.uniform(0.0, 0.3);
  spec.seed = prop.rng.next();
  const Dataset data = make_regression(spec);
  const int max_bin =
      prop.rng.bernoulli(0.4) ? 256
                              : 2 + static_cast<int>(prop.rng.uniform_index(500));
  const BinMapper mapper = BinMapper::fit(DataView(data), max_bin);
  const BinnedMatrix binned = mapper.encode(DataView(data));
  const PackedBins packed = PackedBins::pack(binned);
  std::uint16_t seen_max = 0;
  for (std::size_t f = 0; f < binned.n_features(); ++f) {
    for (std::uint16_t code : binned.feature(f)) {
      seen_max = std::max(seen_max, code);
    }
  }
  EXPECT_EQ(packed.wide(), seen_max > 255);
  for (std::size_t r = 0; r < binned.n_rows(); ++r) {
    for (std::size_t f = 0; f < binned.n_features(); ++f) {
      ASSERT_EQ(packed.bin(r, f), binned.bin(r, f));
    }
  }
}

TEST(PackedBinsProp, EmptyMatrixPacksEmpty) {
  const PackedBins packed = PackedBins::pack(BinnedMatrix());
  EXPECT_TRUE(packed.empty());
  EXPECT_EQ(packed.bytes(), 0u);
}

}  // namespace
}  // namespace flaml
