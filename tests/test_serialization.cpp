#include <gtest/gtest.h>

#include <sstream>

#include "automl/automl.h"
#include "data/generators.h"
#include "forest/forest.h"
#include "linear/linear_model.h"
#include "tree/tree_io.h"

namespace flaml {
namespace {

Dataset binary_data(std::size_t n = 300, std::uint64_t seed = 61) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = n;
  spec.n_features = 6;
  spec.seed = seed;
  return make_classification(spec);
}

TEST(TreeIo, RoundTripsPlainTree) {
  Tree tree;
  tree.node(0).feature = 2;
  tree.node(0).threshold = 1.5f;
  tree.node(0).missing_left = true;
  auto [l, r] = tree.split_leaf(0);
  tree.node(static_cast<std::size_t>(l)).leaf_value = -3.25;
  tree.node(static_cast<std::size_t>(r)).leaf_value = 7.5;

  std::stringstream ss;
  write_tree(ss, tree);
  Tree back = read_tree(ss);
  ASSERT_EQ(back.n_nodes(), 3u);
  EXPECT_EQ(back.node(0).feature, 2);
  EXPECT_TRUE(back.node(0).missing_left);
  EXPECT_DOUBLE_EQ(back.node(1).leaf_value, -3.25);
  EXPECT_DOUBLE_EQ(back.node(2).leaf_value, 7.5);
}

TEST(TreeIo, RoundTripsLeafDistributions) {
  Tree tree;
  tree.node(0).feature = 0;
  tree.split_leaf(0);
  tree.leaf_distributions().assign(3, {});
  tree.leaf_distributions()[1] = {0.25, 0.75};
  tree.leaf_distributions()[2] = {0.9, 0.1};

  std::stringstream ss;
  write_tree(ss, tree);
  Tree back = read_tree(ss);
  ASSERT_EQ(back.leaf_distributions().size(), 3u);
  EXPECT_TRUE(back.leaf_distributions()[0].empty());
  ASSERT_EQ(back.leaf_distributions()[1].size(), 2u);
  EXPECT_DOUBLE_EQ(back.leaf_distributions()[1][1], 0.75);
}

TEST(TreeIo, RejectsGarbage) {
  std::stringstream ss("hello world");
  EXPECT_THROW(read_tree(ss), InvalidArgument);
}

TEST(ForestIo, PredictionsSurviveRoundTrip) {
  Dataset data = binary_data();
  ForestParams params;
  params.n_trees = 8;
  params.max_features = 0.7;
  ForestModel model = train_forest(DataView(data), params);

  std::stringstream ss;
  model.save(ss);
  ForestModel back = ForestModel::load(ss);
  EXPECT_EQ(back.n_trees(), model.n_trees());
  Predictions a = model.predict(DataView(data));
  Predictions b = back.predict(DataView(data));
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-9);
  }
}

TEST(ForestIo, RegressionRoundTrip) {
  Dataset data = make_friedman1(200, 6, 0.3, 5);
  ForestParams params;
  params.n_trees = 5;
  ForestModel model = train_forest(DataView(data), params);
  std::stringstream ss;
  model.save(ss);
  ForestModel back = ForestModel::load(ss);
  Predictions a = model.predict(DataView(data));
  Predictions b = back.predict(DataView(data));
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-9);
  }
}

TEST(LinearIo, PredictionsSurviveRoundTrip) {
  Dataset data = binary_data();
  LinearParams params;
  params.c = 2.0;
  LinearModel model = train_linear(DataView(data), params);
  std::stringstream ss;
  model.save(ss);
  LinearModel back = LinearModel::load(ss);
  Predictions a = model.predict(DataView(data));
  Predictions b = back.predict(DataView(data));
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-12);
  }
}

TEST(LinearIo, HandlesCategoricalEncoder) {
  Dataset data(Task::BinaryClassification, {{"x", ColumnType::Numeric, 0},
                                            {"c", ColumnType::Categorical, 3}});
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    float code = static_cast<float>(i % 3);
    data.add_row({static_cast<float>(rng.normal()), code}, code == 1.0f ? 1.0 : 0.0);
  }
  LinearModel model = train_linear(DataView(data), LinearParams{});
  std::stringstream ss;
  model.save(ss);
  LinearModel back = LinearModel::load(ss);
  Predictions a = model.predict(DataView(data));
  Predictions b = back.predict(DataView(data));
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-12);
  }
}

class AutoMlIoTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AutoMlIoTest, BestModelRoundTripsPerLearner) {
  Dataset data = binary_data(300, 71);
  AutoML automl;
  AutoMLOptions options;
  options.time_budget_seconds = 0.3;
  options.initial_sample_size = 100;
  options.estimator_list = {GetParam()};
  options.seed = 3;
  automl.fit(data, options);

  std::stringstream ss;
  automl.save_best_model(ss);
  auto model = load_automl_model(ss);
  Predictions a = automl.predict(DataView(data));
  Predictions b = model->predict(DataView(data));
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Learners, AutoMlIoTest,
                         ::testing::Values("lgbm", "xgboost", "catboost", "rf",
                                           "extra_tree", "lr"));

TEST(AutoMlIo, SaveBeforeFitRejected) {
  AutoML automl;
  std::stringstream ss;
  EXPECT_THROW(automl.save_best_model(ss), InvalidArgument);
}

TEST(AutoMlIo, LoadRejectsBadHeader) {
  std::stringstream ss("not-a-model v9 lgbm");
  EXPECT_THROW(load_automl_model(ss), InvalidArgument);
}

TEST(AutoMlIo, HistoryCsvHasHeaderAndRows) {
  Dataset data = binary_data(200, 73);
  AutoML automl;
  AutoMLOptions options;
  options.time_budget_seconds = 0.2;
  options.initial_sample_size = 100;
  automl.fit(data, options);
  std::stringstream ss;
  write_history_csv(ss, automl.history());
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line,
            "iteration,finished_at,learner,sample_size,cost,error,best_error,config");
  std::size_t rows = 0;
  while (std::getline(ss, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, automl.history().size());
}

TEST(ModelIo, DefaultModelSaveUnsupported) {
  class Dummy final : public Model {
   public:
    Predictions predict(const DataView&) const override { return {}; }
  };
  Dummy dummy;
  std::stringstream ss;
  EXPECT_THROW(dummy.save(ss), InvalidArgument);
}

}  // namespace
}  // namespace flaml
