#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "automl/automl.h"
#include "boosting/gbdt.h"
#include "data/generators.h"
#include "forest/forest.h"
#include "linear/linear_model.h"
#include "tree/tree_io.h"

namespace flaml {
namespace {

Dataset binary_data(std::size_t n = 300, std::uint64_t seed = 61) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = n;
  spec.n_features = 6;
  spec.seed = seed;
  return make_classification(spec);
}

TEST(TreeIo, RoundTripsPlainTree) {
  Tree tree;
  tree.node(0).feature = 2;
  tree.node(0).threshold = 1.5f;
  tree.node(0).missing_left = true;
  auto [l, r] = tree.split_leaf(0);
  tree.node(static_cast<std::size_t>(l)).leaf_value = -3.25;
  tree.node(static_cast<std::size_t>(r)).leaf_value = 7.5;

  std::stringstream ss;
  write_tree(ss, tree);
  Tree back = read_tree(ss);
  ASSERT_EQ(back.n_nodes(), 3u);
  EXPECT_EQ(back.node(0).feature, 2);
  EXPECT_TRUE(back.node(0).missing_left);
  EXPECT_DOUBLE_EQ(back.node(1).leaf_value, -3.25);
  EXPECT_DOUBLE_EQ(back.node(2).leaf_value, 7.5);
}

TEST(TreeIo, RoundTripsLeafDistributions) {
  Tree tree;
  tree.node(0).feature = 0;
  tree.split_leaf(0);
  tree.leaf_distributions().assign(3, {});
  tree.leaf_distributions()[1] = {0.25, 0.75};
  tree.leaf_distributions()[2] = {0.9, 0.1};

  std::stringstream ss;
  write_tree(ss, tree);
  Tree back = read_tree(ss);
  ASSERT_EQ(back.leaf_distributions().size(), 3u);
  EXPECT_TRUE(back.leaf_distributions()[0].empty());
  ASSERT_EQ(back.leaf_distributions()[1].size(), 2u);
  EXPECT_DOUBLE_EQ(back.leaf_distributions()[1][1], 0.75);
}

// The forest growers legitimately emit +inf thresholds (splits that send
// every non-missing row one way); operator>> cannot parse the "inf" token
// operator<< writes, so the reader goes through strtof/strtod. Regression
// for the compiled-predict differential suite's NaN-bearing zoo runs.
TEST(TreeIo, RoundTripsNonFiniteThreshold) {
  const float inf = std::numeric_limits<float>::infinity();
  Tree tree;
  tree.node(0).feature = 1;
  tree.node(0).threshold = inf;
  tree.node(0).missing_left = false;
  auto [l, r] = tree.split_leaf(0);
  tree.node(static_cast<std::size_t>(l)).feature = 0;
  tree.node(static_cast<std::size_t>(l)).threshold = -inf;
  auto [ll, lr] = tree.split_leaf(l);
  tree.node(static_cast<std::size_t>(ll)).leaf_value = 1.0;
  tree.node(static_cast<std::size_t>(lr)).leaf_value = 2.0;
  tree.node(static_cast<std::size_t>(r)).leaf_value = 3.0;

  std::stringstream ss;
  write_tree(ss, tree);
  Tree back = read_tree(ss);
  ASSERT_EQ(back.n_nodes(), 5u);
  EXPECT_EQ(back.node(0).threshold, inf);
  EXPECT_EQ(back.node(static_cast<std::size_t>(l)).threshold, -inf);
  EXPECT_DOUBLE_EQ(back.node(static_cast<std::size_t>(r)).leaf_value, 3.0);
}

TEST(TreeIo, RejectsGarbage) {
  std::stringstream ss("hello world");
  EXPECT_THROW(read_tree(ss), InvalidArgument);
}

TEST(ForestIo, PredictionsSurviveRoundTrip) {
  Dataset data = binary_data();
  ForestParams params;
  params.n_trees = 8;
  params.max_features = 0.7;
  ForestModel model = train_forest(DataView(data), params);

  std::stringstream ss;
  model.save(ss);
  ForestModel back = ForestModel::load(ss);
  EXPECT_EQ(back.n_trees(), model.n_trees());
  Predictions a = model.predict(DataView(data));
  Predictions b = back.predict(DataView(data));
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-9);
  }
}

TEST(ForestIo, RegressionRoundTrip) {
  Dataset data = make_friedman1(200, 6, 0.3, 5);
  ForestParams params;
  params.n_trees = 5;
  ForestModel model = train_forest(DataView(data), params);
  std::stringstream ss;
  model.save(ss);
  ForestModel back = ForestModel::load(ss);
  Predictions a = model.predict(DataView(data));
  Predictions b = back.predict(DataView(data));
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-9);
  }
}

TEST(LinearIo, PredictionsSurviveRoundTrip) {
  Dataset data = binary_data();
  LinearParams params;
  params.c = 2.0;
  LinearModel model = train_linear(DataView(data), params);
  std::stringstream ss;
  model.save(ss);
  LinearModel back = LinearModel::load(ss);
  Predictions a = model.predict(DataView(data));
  Predictions b = back.predict(DataView(data));
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-12);
  }
}

TEST(LinearIo, HandlesCategoricalEncoder) {
  Dataset data(Task::BinaryClassification, {{"x", ColumnType::Numeric, 0},
                                            {"c", ColumnType::Categorical, 3}});
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    float code = static_cast<float>(i % 3);
    data.add_row({static_cast<float>(rng.normal()), code}, code == 1.0f ? 1.0 : 0.0);
  }
  LinearModel model = train_linear(DataView(data), LinearParams{});
  std::stringstream ss;
  model.save(ss);
  LinearModel back = LinearModel::load(ss);
  Predictions a = model.predict(DataView(data));
  Predictions b = back.predict(DataView(data));
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-12);
  }
}

class AutoMlIoTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AutoMlIoTest, BestModelRoundTripsPerLearner) {
  Dataset data = binary_data(300, 71);
  AutoML automl;
  AutoMLOptions options;
  options.time_budget_seconds = 0.3;
  options.initial_sample_size = 100;
  options.estimator_list = {GetParam()};
  options.seed = 3;
  automl.fit(data, options);

  std::stringstream ss;
  automl.save_best_model(ss);
  auto model = load_automl_model(ss);
  Predictions a = automl.predict(DataView(data));
  Predictions b = model->predict(DataView(data));
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Learners, AutoMlIoTest,
                         ::testing::Values("lgbm", "xgboost", "catboost", "rf",
                                           "extra_tree", "lr"));

TEST(AutoMlIo, SaveBeforeFitRejected) {
  AutoML automl;
  std::stringstream ss;
  EXPECT_THROW(automl.save_best_model(ss), InvalidArgument);
}

TEST(AutoMlIo, LoadRejectsBadHeader) {
  std::stringstream ss("not-a-model v9 lgbm");
  EXPECT_THROW(load_automl_model(ss), InvalidArgument);
}

TEST(AutoMlIo, HistoryCsvHasHeaderAndRows) {
  Dataset data = binary_data(200, 73);
  AutoML automl;
  AutoMLOptions options;
  options.time_budget_seconds = 0.2;
  options.initial_sample_size = 100;
  automl.fit(data, options);
  std::stringstream ss;
  write_history_csv(ss, automl.history());
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line,
            "iteration,finished_at,learner,sample_size,cost,error,best_error,config");
  std::size_t rows = 0;
  while (std::getline(ss, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, automl.history().size());
}

TEST(ModelIo, DefaultModelSaveUnsupported) {
  class Dummy final : public Model {
   public:
    Predictions predict(const DataView&) const override { return {}; }
  };
  Dummy dummy;
  std::stringstream ss;
  EXPECT_THROW(dummy.save(ss), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Adversarial loader inputs: every loader consumes untrusted streams, so a
// truncated, corrupted or oversized input must surface as InvalidArgument —
// never UB, an out-of-bounds access or a multi-gigabyte allocation. Run
// under ASan/UBSan via the sanitizer presets.
// ---------------------------------------------------------------------------

TEST(TreeIoAdversarial, OversizedNodeCountRejected) {
  // Must throw on the count alone, before attempting the allocation.
  std::stringstream ss("99999999999999999\n");
  EXPECT_THROW(read_tree(ss), InvalidArgument);
}

TEST(TreeIoAdversarial, NegativeFeatureOnInternalNodeRejected) {
  // Node 0 is internal (children 1, 2) but its feature index is -1: predict
  // would read column -1.
  std::stringstream ss(
      "3\n"
      "1 2 -1 0 0.5 -1 0 0 1\n"
      "-1 -1 -1 0 0 -1 0 1.0 0\n"
      "-1 -1 -1 0 0 -1 0 2.0 0\n"
      "0\n");
  EXPECT_THROW(read_tree(ss), InvalidArgument);
}

TEST(TreeIoAdversarial, ChildIndexOutOfRangeRejected) {
  std::stringstream ss(
      "2\n"
      "1 5 0 0 0.5 -1 0 0 1\n"
      "-1 -1 -1 0 0 -1 0 1.0 0\n"
      "0\n");
  EXPECT_THROW(read_tree(ss), InvalidArgument);
}

TEST(TreeIoAdversarial, CorruptedLeafDistributionsRejected) {
  // More distributions than nodes.
  std::stringstream more("1\n-1 -1 -1 0 0 -1 0 1.0 0\n2\n0 2 0.5 0.5\n0 2 0.5 0.5\n");
  EXPECT_THROW(read_tree(more), InvalidArgument);
  // Distribution attached to an out-of-range node.
  std::stringstream bad_node("1\n-1 -1 -1 0 0 -1 0 1.0 0\n1\n7 2 0.5 0.5\n");
  EXPECT_THROW(read_tree(bad_node), InvalidArgument);
  // Oversized distribution length: typed error before the allocation.
  std::stringstream huge("1\n-1 -1 -1 0 0 -1 0 1.0 0\n1\n0 99999999999999\n");
  EXPECT_THROW(read_tree(huge), InvalidArgument);
}

TEST(TreeIoAdversarial, EveryTruncationRejected) {
  Tree tree;
  tree.node(0).feature = 1;
  tree.node(0).threshold = 0.25f;
  tree.split_leaf(0);
  tree.leaf_distributions().assign(3, {});
  tree.leaf_distributions()[1] = {0.25, 0.75};
  std::stringstream full;
  write_tree(full, tree);
  const std::string text = full.str();
  for (std::size_t n = 0; n < text.size(); ++n) {
    std::stringstream damaged(text.substr(0, n));
    EXPECT_THROW(read_tree(damaged), InvalidArgument)
        << "prefix of " << n << " / " << text.size() << " bytes parsed";
  }
}

TEST(GbdtIoAdversarial, CorruptHeadersRejected) {
  {
    std::stringstream ss("gbdt v1 7 2 1 0.0 0\n");  // task 7 does not exist
    EXPECT_THROW(GBDTModel::load(ss), InvalidArgument);
  }
  {
    std::stringstream ss("gbdt v1 0 -3 1 0.0 0\n");  // negative class count
    EXPECT_THROW(GBDTModel::load(ss), InvalidArgument);
  }
  {
    std::stringstream ss("gbdt v1 0 2 99999999999999\n");  // oversized bases
    EXPECT_THROW(GBDTModel::load(ss), InvalidArgument);
  }
  {
    std::stringstream ss("gbdt v1 0 2 1 0.0 99999999999999\n");  // tree count
    EXPECT_THROW(GBDTModel::load(ss), InvalidArgument);
  }
  {
    std::stringstream ss("gbdt v2 0 2 1 0.0 0\n");  // unknown version
    EXPECT_THROW(GBDTModel::load(ss), InvalidArgument);
  }
}

TEST(ForestIoAdversarial, CorruptHeadersRejected) {
  {
    std::stringstream ss("forest v1 9 2 1\n");  // task 9 does not exist
    EXPECT_THROW(ForestModel::load(ss), InvalidArgument);
  }
  {
    std::stringstream ss("forest v1 0 -1 1\n");  // negative class count
    EXPECT_THROW(ForestModel::load(ss), InvalidArgument);
  }
  {
    std::stringstream ss("forest v1 0 2 99999999999999\n");  // tree count
    EXPECT_THROW(ForestModel::load(ss), InvalidArgument);
  }
}

TEST(ForestIoAdversarial, TruncationSweepRejected) {
  Dataset data = binary_data(120, 83);
  ForestParams params;
  params.n_trees = 3;
  ForestModel model = train_forest(DataView(data), params);
  std::stringstream full;
  model.save(full);
  const std::string text = full.str();
  // Every 7th prefix keeps the sweep fast while still covering every
  // structural section of the format.
  for (std::size_t n = 0; n < text.size(); n += 7) {
    std::stringstream damaged(text.substr(0, n));
    EXPECT_THROW(ForestModel::load(damaged), InvalidArgument)
        << "prefix of " << n << " / " << text.size() << " bytes parsed";
  }
}

TEST(LinearIoAdversarial, CorruptHeadersRejected) {
  {
    std::stringstream ss("linear v1 5 2 1 1 0.0\n");  // task 5 does not exist
    EXPECT_THROW(LinearModel::load(ss), InvalidArgument);
  }
  {
    std::stringstream ss("linear v1 0 2 1 99999999999999\n");  // weight count
    EXPECT_THROW(LinearModel::load(ss), InvalidArgument);
  }
  {
    std::stringstream ss("linear v1 0 2 0 1 0.0\n");  // zero outputs
    EXPECT_THROW(LinearModel::load(ss), InvalidArgument);
  }
}

TEST(LinearIoAdversarial, EncoderRangeOverflowRejected) {
  // A categorical plan whose [offset, offset + cardinality) range exceeds
  // the encoder dimension: encode_row would write out of bounds (this is a
  // regression test for exactly that heap overflow).
  {
    std::stringstream ss(
        "linear v1 0 2 1 1 0.5\n"
        "encoder v1\n1 1\n1 0 5 0 1\n");  // cardinality 5 into dim 1
    EXPECT_THROW(LinearModel::load(ss), InvalidArgument);
  }
  {
    std::stringstream ss(
        "linear v1 0 2 1 1 0.5\n"
        "encoder v1\n1 1\n0 3 0 0 1\n");  // numeric offset 3 into dim 1
    EXPECT_THROW(LinearModel::load(ss), InvalidArgument);
  }
  {
    std::stringstream ss(
        "linear v1 0 2 1 1 0.5\n"
        "encoder v1\n1 4\n1 0 -2 0 1\n");  // negative cardinality
    EXPECT_THROW(LinearModel::load(ss), InvalidArgument);
  }
  {
    std::stringstream ss(
        "linear v1 0 2 1 1 0.5\n"
        "encoder v1\n99999999999999 1\n");  // oversized plan count
    EXPECT_THROW(LinearModel::load(ss), InvalidArgument);
  }
}

TEST(AutoMlIoAdversarial, WrongLearnerNameRejected) {
  std::stringstream ss("flaml-model v1 no_such_learner\n");
  EXPECT_THROW(load_automl_model(ss), InvalidArgument);
}

TEST(AutoMlIoAdversarial, TruncatedModelBlobRejected) {
  Dataset data = binary_data(200, 91);
  AutoMLOptions options;
  options.time_budget_seconds = 1e6;
  options.max_iterations = 3;
  options.estimator_list = {"lgbm"};
  options.resampling = ResamplingPolicy::ForceHoldout;
  AutoML automl;
  automl.fit(data, options);
  std::stringstream full;
  automl.save_best_model(full);
  const std::string text = full.str();
  for (std::size_t n = 0; n < text.size(); n += 11) {
    std::stringstream damaged(text.substr(0, n));
    EXPECT_THROW(load_automl_model(damaged), InvalidArgument)
        << "prefix of " << n << " / " << text.size() << " bytes parsed";
  }
}

}  // namespace
}  // namespace flaml
