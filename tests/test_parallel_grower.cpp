// The determinism contract of intra-trial parallelism (docs/TESTING.md):
// growing a tree / forest / GBDT with n_threads ∈ {2, 4, 8} must produce
// BYTE-IDENTICAL models to the serial path — same splits, same thresholds,
// same leaf values — and bit-identical predictions. Each property serializes
// both models through tree_io / model save() and compares the strings, which
// catches any float-level divergence, not just structural mismatches.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <sstream>
#include <vector>

#include "boosting/gbdt.h"
#include "data/generators.h"
#include "forest/forest.h"
#include "support/prop.h"
#include "tree/class_grower.h"
#include "tree/grower.h"
#include "tree/tree_io.h"

namespace flaml {
namespace {

using testing::PropCase;

constexpr int kThreadCounts[] = {2, 4, 8};

std::string tree_string(const Tree& tree) {
  std::ostringstream os;
  os.precision(17);
  write_tree(os, tree);
  return os.str();
}

struct BinnedFixture {
  Dataset data;
  BinMapper mapper;
  BinnedMatrix binned;

  explicit BinnedFixture(Dataset d, int max_bin = 255)
      : data(std::move(d)),
        mapper(BinMapper::fit(DataView(data), max_bin)),
        binned(mapper.encode(DataView(data))) {}
};

Dataset random_regression_data(Rng& rng) {
  SyntheticSpec spec;
  spec.task = Task::Regression;
  // Large enough that the root engages the parallel build/find gates.
  spec.n_rows = 400 + rng.uniform_index(600);
  spec.n_features = 4 + static_cast<int>(rng.uniform_index(8));
  spec.categorical_fraction = rng.uniform(0.0, 0.4);
  spec.missing_fraction = rng.uniform(0.0, 0.2);
  spec.nonlinearity = rng.uniform(0.0, 1.0);
  spec.seed = rng.next();
  return make_regression(spec);
}

Dataset random_classification_data(Rng& rng, int n_classes) {
  SyntheticSpec spec;
  spec.task = n_classes > 2 ? Task::MultiClassification : Task::BinaryClassification;
  spec.n_classes = n_classes;
  spec.n_rows = 400 + rng.uniform_index(600);
  spec.n_features = 4 + static_cast<int>(rng.uniform_index(8));
  spec.categorical_fraction = rng.uniform(0.0, 0.4);
  spec.missing_fraction = rng.uniform(0.0, 0.2);
  spec.seed = rng.next();
  return make_classification(spec);
}

GrowerParams random_grower_params(Rng& rng) {
  GrowerParams params;
  params.max_leaves = 4 + static_cast<int>(rng.uniform_index(61));
  params.min_samples_leaf = 1 + static_cast<int>(rng.uniform_index(5));
  params.reg_lambda = rng.uniform(1e-9, 2.0);
  params.reg_alpha = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.5) : 0.0;
  params.colsample_bylevel = rng.bernoulli(0.5) ? rng.uniform(0.4, 1.0) : 1.0;
  return params;
}

FLAML_PROP(ParallelGrowerProp, LeafWiseTreeBitIdentical, 8) {
  BinnedFixture fx(random_regression_data(prop.rng));
  const std::size_t n = fx.data.n_rows();
  std::vector<std::uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0u);
  std::vector<double> grad(n), hess(n);
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = -fx.data.label(i);
    hess[i] = 1.0;
  }
  std::vector<int> features(fx.data.n_cols());
  std::iota(features.begin(), features.end(), 0);
  GrowerParams params = random_grower_params(prop.rng);
  params.style = TreeStyle::LeafWise;
  const std::uint64_t seed = prop.rng.next();

  GradientTreeGrower grower(fx.mapper, fx.binned);
  Rng serial_rng(seed);
  const std::string serial =
      tree_string(grower.grow(rows, grad, hess, features, params, serial_rng));
  for (int n_threads : kThreadCounts) {
    params.n_threads = n_threads;
    Rng parallel_rng(seed);
    const std::string parallel =
        tree_string(grower.grow(rows, grad, hess, features, params, parallel_rng));
    EXPECT_EQ(parallel, serial) << "n_threads " << n_threads;
  }
}

FLAML_PROP(ParallelGrowerProp, ObliviousTreeBitIdentical, 8) {
  BinnedFixture fx(random_regression_data(prop.rng));
  const std::size_t n = fx.data.n_rows();
  std::vector<std::uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0u);
  std::vector<double> grad(n), hess(n);
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = -fx.data.label(i);
    hess[i] = 1.0;
  }
  std::vector<int> features(fx.data.n_cols());
  std::iota(features.begin(), features.end(), 0);
  GrowerParams params = random_grower_params(prop.rng);
  params.style = TreeStyle::Oblivious;
  params.oblivious_depth = 3 + static_cast<int>(prop.rng.uniform_index(4));
  const std::uint64_t seed = prop.rng.next();

  GradientTreeGrower grower(fx.mapper, fx.binned);
  Rng serial_rng(seed);
  const std::string serial =
      tree_string(grower.grow(rows, grad, hess, features, params, serial_rng));
  for (int n_threads : kThreadCounts) {
    params.n_threads = n_threads;
    Rng parallel_rng(seed);
    const std::string parallel =
        tree_string(grower.grow(rows, grad, hess, features, params, parallel_rng));
    EXPECT_EQ(parallel, serial) << "n_threads " << n_threads;
  }
}

FLAML_PROP(ParallelGrowerProp, ClassTreeBitIdentical, 8) {
  const int n_classes = 2 + static_cast<int>(prop.rng.uniform_index(3));
  BinnedFixture fx(random_classification_data(prop.rng, n_classes));
  const std::size_t n = fx.data.n_rows();
  std::vector<std::uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0u);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(fx.data.label(i));
  }
  std::vector<double> weights;
  if (prop.rng.bernoulli(0.4)) {
    weights.resize(n);
    for (double& w : weights) w = prop.rng.uniform(0.1, 2.0);
  }
  ClassGrowerParams params;
  params.max_leaves = 8 + static_cast<int>(prop.rng.uniform_index(120));
  params.min_samples_leaf = 1 + static_cast<int>(prop.rng.uniform_index(4));
  params.max_features = prop.rng.bernoulli(0.5) ? prop.rng.uniform(0.4, 1.0) : 1.0;
  params.criterion =
      prop.rng.bernoulli(0.5) ? SplitCriterion::Gini : SplitCriterion::Entropy;
  // extra_random exercises the serially pre-drawn threshold path.
  params.extra_random = prop.rng.bernoulli(0.4);
  const std::uint64_t seed = prop.rng.next();

  ClassTreeGrower grower(fx.mapper, fx.binned, n_classes);
  Rng serial_rng(seed);
  const std::string serial =
      tree_string(grower.grow(rows, labels, weights, params, serial_rng));
  for (int n_threads : kThreadCounts) {
    params.n_threads = n_threads;
    Rng parallel_rng(seed);
    const std::string parallel =
        tree_string(grower.grow(rows, labels, weights, params, parallel_rng));
    EXPECT_EQ(parallel, serial) << "n_threads " << n_threads;
  }
}

FLAML_PROP(ParallelGrowerProp, ForestModelBitIdentical, 6) {
  const bool classification = prop.rng.bernoulli(0.5);
  Dataset data = classification
                     ? random_classification_data(
                           prop.rng, 2 + static_cast<int>(prop.rng.uniform_index(2)))
                     : random_regression_data(prop.rng);
  DataView view(data);
  ForestParams params;
  params.n_trees = 3 + static_cast<int>(prop.rng.uniform_index(8));
  params.max_features = prop.rng.uniform(0.4, 1.0);
  params.extra_trees = prop.rng.bernoulli(0.4);
  params.seed = prop.rng.next() | 1;

  params.n_threads = 1;
  ForestModel serial = train_forest(view, params);
  std::ostringstream serial_os;
  serial.save(serial_os);
  const Predictions serial_pred = serial.predict(view);

  for (int n_threads : kThreadCounts) {
    params.n_threads = n_threads;
    ForestModel parallel = train_forest(view, params);
    std::ostringstream parallel_os;
    parallel.save(parallel_os);
    EXPECT_EQ(parallel_os.str(), serial_os.str()) << "n_threads " << n_threads;
    // Row-sharded prediction must match the serial accumulation bit for bit.
    const Predictions parallel_pred = parallel.predict(view, n_threads);
    ASSERT_EQ(parallel_pred.values.size(), serial_pred.values.size());
    for (std::size_t i = 0; i < serial_pred.values.size(); ++i) {
      EXPECT_EQ(parallel_pred.values[i], serial_pred.values[i])
          << "n_threads " << n_threads << " row-slot " << i;
    }
  }
}

FLAML_PROP(ParallelGrowerProp, GbdtModelBitIdentical, 6) {
  const bool classification = prop.rng.bernoulli(0.5);
  Dataset data = classification
                     ? random_classification_data(
                           prop.rng, 2 + static_cast<int>(prop.rng.uniform_index(2)))
                     : random_regression_data(prop.rng);
  DataView view(data);
  GBDTParams params;
  params.n_trees = 3 + static_cast<int>(prop.rng.uniform_index(6));
  params.max_leaves = 4 + static_cast<int>(prop.rng.uniform_index(29));
  params.learning_rate = prop.rng.uniform(0.05, 0.3);
  params.subsample = prop.rng.bernoulli(0.5) ? prop.rng.uniform(0.7, 1.0) : 1.0;
  params.colsample_bytree = prop.rng.bernoulli(0.5) ? prop.rng.uniform(0.7, 1.0) : 1.0;
  params.colsample_bylevel = prop.rng.bernoulli(0.5) ? prop.rng.uniform(0.6, 1.0) : 1.0;
  params.tree_style =
      prop.rng.bernoulli(0.3) ? TreeStyle::Oblivious : TreeStyle::LeafWise;
  params.seed = prop.rng.next() | 1;

  params.n_threads = 1;
  GBDTModel serial = train_gbdt(view, nullptr, params);
  const std::string serial_str = serial.to_string();
  const std::vector<double> serial_scores = serial.raw_scores(view);

  for (int n_threads : kThreadCounts) {
    params.n_threads = n_threads;
    GBDTModel parallel = train_gbdt(view, nullptr, params);
    EXPECT_EQ(parallel.to_string(), serial_str) << "n_threads " << n_threads;
    const std::vector<double> parallel_scores = parallel.raw_scores(view, n_threads);
    ASSERT_EQ(parallel_scores.size(), serial_scores.size());
    for (std::size_t i = 0; i < serial_scores.size(); ++i) {
      EXPECT_EQ(parallel_scores[i], serial_scores[i])
          << "n_threads " << n_threads << " slot " << i;
    }
  }
}

}  // namespace
}  // namespace flaml
