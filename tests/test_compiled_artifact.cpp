// Adversarial loader suite for the compiled-model artifact format
// (src/serve/artifact.h + CompiledModel::deserialize): every truncation,
// every bit flip and every header tamper of a serialized artifact must
// surface as a typed SerializationError — and structured payload mutations
// that pass the checksum must either load an equivalent model or throw,
// never crash or index out of bounds (ASan/UBSan CI runs this suite by
// name: -R 'Resume|Adversarial').
#include "serve/artifact.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"
#include "data/generators.h"
#include "forest/forest.h"
#include "boosting/gbdt.h"
#include "linear/linear_model.h"
#include "serve/compiled_model.h"
#include "support/corruption.h"

namespace flaml {
namespace {

using testing::expect_every_bit_flip_throws;
using testing::expect_every_truncation_throws;

Dataset small_data(Task task) {
  SyntheticSpec spec;
  spec.task = task;
  spec.n_rows = 60;
  spec.n_features = 4;
  spec.n_classes = task == Task::MultiClassification ? 3 : 2;
  spec.missing_fraction = 0.1;
  spec.seed = 17;
  return make_synthetic(spec);
}

// A small-but-real artifact of each kind (every code path of the format).
std::string gbdt_payload() {
  const Dataset data = small_data(Task::BinaryClassification);
  GBDTParams params;
  params.n_trees = 3;
  params.max_leaves = 5;
  return serve::compile(train_gbdt(DataView(data), nullptr, params)).serialize();
}

std::string forest_payload() {
  const Dataset data = small_data(Task::MultiClassification);
  ForestParams params;
  params.n_trees = 3;
  params.max_leaves = 6;
  return serve::compile(train_forest(DataView(data), params)).serialize();
}

std::string linear_payload() {
  const Dataset data = small_data(Task::BinaryClassification);
  LinearParams params;
  return serve::compile(train_linear(DataView(data), params)).serialize();
}

void parse_artifact(const std::string& text) {
  serve::CompiledModel::deserialize(serve::unwrap_artifact(text));
}

TEST(CompiledArtifactAdversarial, EveryTruncationThrows) {
  expect_every_truncation_throws(serve::wrap_artifact(gbdt_payload()), parse_artifact);
}

TEST(CompiledArtifactAdversarial, EveryBitFlipThrows) {
  expect_every_bit_flip_throws(serve::wrap_artifact(gbdt_payload()), parse_artifact);
}

TEST(CompiledArtifactAdversarial, HeaderTamperingThrows) {
  const std::string payload = linear_payload();
  const std::string text = serve::wrap_artifact(payload);
  const std::size_t newline = text.find('\n');
  ASSERT_NE(newline, std::string::npos);
  const std::string header = text.substr(0, newline);

  // Wrong magic (including the sibling container's).
  EXPECT_THROW(parse_artifact("flaml-checkpoint v1 1 0000000000000000\n" + payload),
               SerializationError);
  // Unknown versions must be rejected, not silently migrated.
  for (const char* version : {"v0", "v2", "v10"}) {
    EXPECT_THROW(
        parse_artifact("flaml-compiled " + std::string(version) + " " +
                       std::to_string(payload.size()) + " 0000000000000000\n" +
                       payload),
        SerializationError);
  }
  // Declared length shorter / longer than the actual payload.
  for (int delta : {-1, 1}) {
    EXPECT_THROW(
        parse_artifact("flaml-compiled v1 " +
                       std::to_string(payload.size() + delta) +
                       " 0000000000000000\n" + payload),
        SerializationError);
  }
  // Wrong, malformed, uppercase and over-long checksums.
  for (const char* checksum :
       {"0000000000000000", "000000000000000g", "0ABCDEF012345678",
        "00000000000000000", "0"}) {
    EXPECT_THROW(parse_artifact("flaml-compiled v1 " +
                                std::to_string(payload.size()) + " " + checksum +
                                "\n" + payload),
                 SerializationError);
  }
  // Trailing tokens in the header line.
  EXPECT_THROW(parse_artifact(header + " extra\n" + payload), SerializationError);
  // Trailing garbage after a valid envelope.
  EXPECT_THROW(parse_artifact(text + "x"), SerializationError);
  // Missing header newline entirely.
  EXPECT_THROW(parse_artifact(header), SerializationError);
  // Absurd declared size must throw before allocating.
  EXPECT_THROW(parse_artifact("flaml-compiled v1 99999999999999 0000000000000000\n"),
               SerializationError);
}

// Checksum-valid payload corruption: re-wrap every single-byte overwrite of
// the payload with a CORRECT envelope, so the damage reaches the structural
// validator. Each variant must either deserialize (the byte happened to be
// a don't-care, e.g. inside a float) — in which case predicting with it
// must be memory-safe — or throw SerializationError. Never UB: ASan/UBSan
// turn any overrun or uninitialized read into a hard failure here.
void kill_every_byte(const std::string& payload, Task task) {
  SyntheticSpec spec;
  spec.task = task;
  spec.n_rows = 16;
  spec.n_features = 8;
  spec.n_classes = task == Task::MultiClassification ? 3 : 2;
  spec.missing_fraction = 0.2;
  spec.seed = 23;
  const Dataset probe = make_synthetic(spec);
  const DataView view(probe);

  for (std::size_t byte = 0; byte < payload.size(); ++byte) {
    for (const unsigned char value : {0x00, 0xff}) {
      std::string damaged = payload;
      if (static_cast<unsigned char>(damaged[byte]) == value) continue;
      damaged[byte] = static_cast<char>(value);
      try {
        const serve::CompiledModel model = serve::CompiledModel::deserialize(damaged);
        // Survivors must still be safe to serve (validated tables cannot
        // walk out of bounds or loop forever).
        if (model.n_features() <= probe.n_cols()) {
          (void)model.predict_many(view, 2);
        }
      } catch (const SerializationError&) {
        // The expected rejection path.
      }
    }
  }
}

TEST(CompiledArtifactAdversarial, KillEveryByteGbdt) {
  kill_every_byte(gbdt_payload(), Task::BinaryClassification);
}

TEST(CompiledArtifactAdversarial, KillEveryByteForest) {
  kill_every_byte(forest_payload(), Task::MultiClassification);
}

TEST(CompiledArtifactAdversarial, KillEveryByteLinear) {
  kill_every_byte(linear_payload(), Task::BinaryClassification);
}

// Payload truncation behind a valid envelope must be caught by the
// structural reader (bounded reads + require_done), independent of the
// checksum layer the sweeps above exercise.
TEST(CompiledArtifactAdversarial, PayloadTruncationAndTrailingBytesThrow) {
  for (const std::string& payload :
       {gbdt_payload(), forest_payload(), linear_payload()}) {
    for (std::size_t n = 0; n < payload.size(); ++n) {
      EXPECT_THROW(serve::CompiledModel::deserialize(payload.substr(0, n)),
                   SerializationError)
          << "payload truncated to " << n << " of " << payload.size();
    }
    EXPECT_THROW(serve::CompiledModel::deserialize(payload + "x"),
                 SerializationError);
  }
}

// Structural validation of the flat tables themselves: cycles, double
// references, orphans and out-of-range links are each rejected. (A cycle
// reachable from a root necessarily double-references its entry node, so
// the exactly-once reference count is what guarantees termination.)
TEST(CompiledArtifactAdversarial, FlatTableValidation) {
  // Valid two-node tree: root 0 -> leaves ~0, ~1.
  serve::FlatForest good;
  good.feature = {0};
  good.threshold = {0.5f};
  good.category = {-1};
  good.flags = {0};
  good.left = {~0};
  good.right = {~1};
  good.roots = {0};
  good.leaf_value = {1.0, 2.0};
  EXPECT_NO_THROW(good.validate(1));

  {  // Self-cycle: node 0's left edge points back at node 0.
    serve::FlatForest f = good;
    f.left = {0};
    EXPECT_THROW(f.validate(1), SerializationError);
  }
  {  // Double-referenced leaf (and orphaned leaf 1).
    serve::FlatForest f = good;
    f.right = {~0};
    EXPECT_THROW(f.validate(1), SerializationError);
  }
  {  // Out-of-range child.
    serve::FlatForest f = good;
    f.right = {7};
    EXPECT_THROW(f.validate(1), SerializationError);
  }
  {  // Out-of-range leaf reference.
    serve::FlatForest f = good;
    f.right = {~5};
    EXPECT_THROW(f.validate(1), SerializationError);
  }
  {  // Split feature outside the declared feature count.
    serve::FlatForest f = good;
    EXPECT_THROW(f.validate(0), SerializationError);
  }
  {  // Unknown flag bits.
    serve::FlatForest f = good;
    f.flags = {0x80};
    EXPECT_THROW(f.validate(1), SerializationError);
  }
  {  // Orphaned internal node (root skips straight to a leaf).
    serve::FlatForest f = good;
    f.roots = {~0};
    f.right = {~1};
    f.left = {~0};  // still double-references leaf 0 -> rejected
    EXPECT_THROW(f.validate(1), SerializationError);
  }
  {  // Leaf-distribution block size mismatch.
    serve::FlatForest f = good;
    f.dist_width = 2;
    f.leaf_dist = {0.5, 0.5, 1.0};  // needs 2 leaves × 2 = 4 entries
    EXPECT_THROW(f.validate(1), SerializationError);
  }
}

TEST(CompiledArtifactAdversarial, MissingFileThrows) {
  EXPECT_THROW(serve::CompiledModel::load_file(::testing::TempDir() +
                                               "no_such_artifact.bin"),
               SerializationError);
}

}  // namespace
}  // namespace flaml
