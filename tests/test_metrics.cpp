#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace flaml {
namespace {

TEST(RocAuc, PerfectRankingIsOne) {
  std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  std::vector<double> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 1.0);
}

TEST(RocAuc, InvertedRankingIsZero) {
  std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  std::vector<double> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.0);
}

TEST(RocAuc, RandomScoresNearHalf) {
  Rng rng(1);
  std::vector<double> scores(5000), labels(5000);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.uniform();
    labels[i] = rng.bernoulli(0.4) ? 1.0 : 0.0;
  }
  EXPECT_NEAR(roc_auc(scores, labels), 0.5, 0.03);
}

TEST(RocAuc, AllTiedScoresIsHalf) {
  std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  std::vector<double> labels{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.5);
}

// AUC is invariant under strictly monotone transforms of the scores.
class AucMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(AucMonotoneTest, InvariantUnderMonotoneTransform) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> scores(200), labels(200);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    labels[i] = rng.bernoulli(0.5) ? 1.0 : 0.0;
    scores[i] = labels[i] + rng.normal();
  }
  double base = roc_auc(scores, labels);
  std::vector<double> transformed = scores;
  for (double& s : transformed) s = std::exp(0.3 * s) + 7.0;
  EXPECT_NEAR(roc_auc(transformed, labels), base, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AucMonotoneTest, ::testing::Range(1, 6));

TEST(RocAuc, RejectsSingleClass) {
  std::vector<double> scores{0.1, 0.2};
  std::vector<double> labels{1, 1};
  EXPECT_THROW(roc_auc(scores, labels), InvalidArgument);
}

TEST(RocAuc, RejectsNonBinaryLabels) {
  std::vector<double> scores{0.1, 0.2};
  std::vector<double> labels{0, 2};
  EXPECT_THROW(roc_auc(scores, labels), InvalidArgument);
}

TEST(LogLossBinary, PerfectPredictionNearZero) {
  std::vector<double> p{0.999999, 0.000001};
  std::vector<double> y{1, 0};
  EXPECT_LT(log_loss_binary(p, y), 1e-5);
}

TEST(LogLossBinary, HalfProbabilityIsLog2) {
  std::vector<double> p{0.5, 0.5};
  std::vector<double> y{1, 0};
  EXPECT_NEAR(log_loss_binary(p, y), std::log(2.0), 1e-12);
}

TEST(LogLossBinary, ClipsExtremeProbabilities) {
  std::vector<double> p{0.0, 1.0};
  std::vector<double> y{1, 0};
  double loss = log_loss_binary(p, y);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 10.0);
}

// The expected log-loss is minimized when predicting the true conditional
// probability (propriety of the scoring rule).
TEST(LogLossBinary, MinimizedAtTrueProbability) {
  Rng rng(3);
  const double true_p = 0.7;
  std::vector<double> y(20000);
  for (auto& v : y) v = rng.bernoulli(true_p) ? 1.0 : 0.0;
  auto loss_at = [&](double q) {
    std::vector<double> p(y.size(), q);
    return log_loss_binary(p, y);
  };
  double at_truth = loss_at(true_p);
  EXPECT_LT(at_truth, loss_at(0.5));
  EXPECT_LT(at_truth, loss_at(0.9));
}

TEST(LogLossMulti, UniformIsLogK) {
  std::vector<double> probs{1.0 / 3, 1.0 / 3, 1.0 / 3, 1.0 / 3, 1.0 / 3, 1.0 / 3};
  std::vector<double> labels{0, 2};
  EXPECT_NEAR(log_loss_multi(probs, 3, labels), std::log(3.0), 1e-12);
}

TEST(LogLossMulti, ShapeMismatchRejected) {
  std::vector<double> probs{0.5, 0.5};
  std::vector<double> labels{0, 1};
  EXPECT_THROW(log_loss_multi(probs, 3, labels), InvalidArgument);
}

TEST(Accuracy, MultiArgmax) {
  std::vector<double> probs{0.7, 0.2, 0.1, 0.1, 0.8, 0.1, 0.3, 0.3, 0.4};
  std::vector<double> labels{0, 1, 0};
  EXPECT_NEAR(accuracy_multi(probs, 3, labels), 2.0 / 3.0, 1e-12);
}

TEST(Accuracy, BinaryThreshold) {
  std::vector<double> p{0.6, 0.4, 0.5};
  std::vector<double> y{1, 0, 1};
  EXPECT_NEAR(accuracy_binary(p, y), 1.0, 1e-12);  // 0.5 rounds to class 1
}

TEST(RegressionMetrics, PerfectPrediction) {
  std::vector<double> pred{1.0, 2.0, 3.0};
  std::vector<double> truth{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mse(pred, truth), 0.0);
  EXPECT_DOUBLE_EQ(mae(pred, truth), 0.0);
  EXPECT_DOUBLE_EQ(r2(pred, truth), 1.0);
}

TEST(RegressionMetrics, KnownValues) {
  std::vector<double> pred{2.0, 4.0};
  std::vector<double> truth{1.0, 2.0};
  EXPECT_DOUBLE_EQ(mse(pred, truth), 2.5);
  EXPECT_DOUBLE_EQ(rmse(pred, truth), std::sqrt(2.5));
  EXPECT_DOUBLE_EQ(mae(pred, truth), 1.5);
}

TEST(R2, MeanPredictorIsZero) {
  std::vector<double> truth{1.0, 2.0, 3.0, 4.0};
  std::vector<double> pred(4, 2.5);
  EXPECT_DOUBLE_EQ(r2(pred, truth), 0.0);
}

TEST(R2, WorseThanMeanIsNegative) {
  std::vector<double> truth{1.0, 2.0, 3.0};
  std::vector<double> pred{3.0, 2.0, 1.0};
  EXPECT_LT(r2(pred, truth), 0.0);
}

TEST(R2, ConstantTruthEdgeCase) {
  std::vector<double> truth{5.0, 5.0};
  std::vector<double> exact{5.0, 5.0};
  std::vector<double> wrong{4.0, 6.0};
  EXPECT_DOUBLE_EQ(r2(exact, truth), 1.0);
  EXPECT_DOUBLE_EQ(r2(wrong, truth), 0.0);
}

TEST(QError, AtLeastOne) {
  EXPECT_DOUBLE_EQ(q_error(10.0, 10.0), 1.0);
  EXPECT_GE(q_error(3.0, 7.0), 1.0);
}

TEST(QError, SymmetricInOverAndUnderEstimation) {
  EXPECT_DOUBLE_EQ(q_error(10.0, 100.0), q_error(100.0, 10.0));
  EXPECT_DOUBLE_EQ(q_error(10.0, 100.0), 10.0);
}

TEST(QError, FloorsSmallValues) {
  EXPECT_DOUBLE_EQ(q_error(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(q_error(0.5, 8.0), 8.0);  // pred floored to 1
}

TEST(QErrorQuantile, MedianOfKnownSet) {
  std::vector<double> pred{1, 2, 4, 8, 16};
  std::vector<double> truth{1, 1, 1, 1, 1};
  // q-errors: 1, 2, 4, 8, 16
  EXPECT_DOUBLE_EQ(q_error_quantile(pred, truth, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(q_error_quantile(pred, truth, 1.0), 16.0);
}

}  // namespace
}  // namespace flaml
