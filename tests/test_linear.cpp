#include "linear/linear_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "data/split.h"
#include "linear/lbfgs.h"
#include "metrics/metrics.h"

namespace flaml {
namespace {

TEST(Lbfgs, MinimizesQuadratic) {
  // f(x) = (x0-3)^2 + 2 (x1+1)^2
  ObjectiveFn fn = [](const std::vector<double>& x, std::vector<double>& g) {
    g.resize(2);
    g[0] = 2.0 * (x[0] - 3.0);
    g[1] = 4.0 * (x[1] + 1.0);
    return (x[0] - 3.0) * (x[0] - 3.0) + 2.0 * (x[1] + 1.0) * (x[1] + 1.0);
  };
  std::vector<double> x{0.0, 0.0};
  LbfgsResult result = lbfgs_minimize(fn, x);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(x[0], 3.0, 1e-5);
  EXPECT_NEAR(x[1], -1.0, 1e-5);
  EXPECT_NEAR(result.objective, 0.0, 1e-9);
}

TEST(Lbfgs, MinimizesRosenbrockApproximately) {
  ObjectiveFn fn = [](const std::vector<double>& x, std::vector<double>& g) {
    double a = 1.0 - x[0];
    double b = x[1] - x[0] * x[0];
    g.resize(2);
    g[0] = -2.0 * a - 400.0 * x[0] * b;
    g[1] = 200.0 * b;
    return a * a + 100.0 * b * b;
  };
  std::vector<double> x{-1.2, 1.0};
  LbfgsOptions options;
  options.max_iterations = 500;
  LbfgsResult result = lbfgs_minimize(fn, x, options);
  EXPECT_LT(result.objective, 1e-6);
  EXPECT_NEAR(x[0], 1.0, 1e-2);
}

TEST(Encoder, StandardizesNumericColumns) {
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0}});
  data.set_column(0, {0.0f, 2.0f, 4.0f, 6.0f});
  data.set_labels({0, 0, 0, 0});
  FeatureEncoder enc = FeatureEncoder::fit(DataView(data));
  EXPECT_EQ(enc.dim(), 1u);
  auto matrix = enc.encode(DataView(data));
  double sum = 0.0, sum_sq = 0.0;
  for (double v : matrix) {
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum, 0.0, 1e-6);
  EXPECT_NEAR(sum_sq / 4.0, 1.0, 1e-6);
}

TEST(Encoder, OneHotForCategorical) {
  Dataset data(Task::Regression, {{"c", ColumnType::Categorical, 3}});
  data.set_column(0, {0.0f, 2.0f});
  data.set_labels({0, 0});
  FeatureEncoder enc = FeatureEncoder::fit(DataView(data));
  EXPECT_EQ(enc.dim(), 3u);
  std::vector<double> row;
  enc.encode_row(DataView(data), 0, row);
  EXPECT_DOUBLE_EQ(row[0], 1.0);
  EXPECT_DOUBLE_EQ(row[1], 0.0);
  EXPECT_DOUBLE_EQ(row[2], 0.0);
  enc.encode_row(DataView(data), 1, row);
  EXPECT_DOUBLE_EQ(row[2], 1.0);
}

TEST(Encoder, MissingEncodesAsZero) {
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0},
                                  {"c", ColumnType::Categorical, 2}});
  const float kNaN = std::numeric_limits<float>::quiet_NaN();
  data.add_row({1.0f, 0.0f}, 0.0);
  data.add_row({3.0f, 1.0f}, 0.0);
  data.add_row({kNaN, kNaN}, 0.0);
  FeatureEncoder enc = FeatureEncoder::fit(DataView(data));
  std::vector<double> row;
  enc.encode_row(DataView(data), 2, row);
  for (double v : row) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Linear, LogisticSeparatesLinearData) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 600;
  spec.n_features = 6;
  spec.nonlinearity = 0.0;
  spec.class_sep = 1.5;
  spec.seed = 3;
  Dataset data = make_classification(spec);
  Rng rng(1);
  auto split = holdout_split(DataView(data), 0.3, rng);
  LinearParams params;
  params.c = 10.0;
  LinearModel model = train_linear(split.train, params);
  Predictions pred = model.predict(split.test);
  EXPECT_GT(roc_auc(pred.prob1(), split.test.labels()), 0.9);
}

TEST(Linear, SoftmaxMulticlass) {
  SyntheticSpec spec;
  spec.task = Task::MultiClassification;
  spec.n_classes = 4;
  spec.n_rows = 500;
  spec.n_features = 6;
  spec.nonlinearity = 0.0;
  spec.class_sep = 2.0;
  spec.n_clusters_per_class = 1;  // keep classes linearly separable
  spec.seed = 5;
  Dataset data = make_classification(spec);
  LinearParams params;
  LinearModel model = train_linear(DataView(data), params);
  Predictions pred = model.predict(DataView(data));
  for (std::size_t i = 0; i < pred.n_rows(); ++i) {
    double sum = 0.0;
    for (int c = 0; c < 4; ++c) sum += pred.prob(i, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  EXPECT_GT(accuracy_multi(pred.values, 4, data.labels()), 0.8);
}

TEST(Linear, RidgeRecoversLinearFunction) {
  // y = 2 x0 - 3 x1 + 1, no noise.
  Dataset data(Task::Regression, {{"x0", ColumnType::Numeric, 0},
                                  {"x1", ColumnType::Numeric, 0}});
  Rng rng(7);
  std::vector<float> x0(200), x1(200);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x0[i] = static_cast<float>(rng.normal());
    x1[i] = static_cast<float>(rng.normal());
    y[i] = 2.0 * x0[i] - 3.0 * x1[i] + 1.0;
  }
  Dataset d = data;
  d.set_column(0, std::move(x0));
  d.set_column(1, std::move(x1));
  d.set_labels(std::move(y));
  LinearParams params;
  params.c = 1e6;  // effectively unregularized
  LinearModel model = train_linear(DataView(d), params);
  Predictions pred = model.predict(DataView(d));
  EXPECT_GT(r2(pred.values, d.labels()), 0.999);
}

TEST(Linear, StrongRegularizationShrinksPredictionSpread) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 300;
  spec.n_features = 5;
  spec.seed = 9;
  Dataset data = make_classification(spec);
  auto spread = [&](double c) {
    LinearParams params;
    params.c = c;
    LinearModel model = train_linear(DataView(data), params);
    Predictions pred = model.predict(DataView(data));
    double lo = 1.0, hi = 0.0;
    for (std::size_t i = 0; i < pred.n_rows(); ++i) {
      lo = std::min(lo, pred.prob(i, 1));
      hi = std::max(hi, pred.prob(i, 1));
    }
    return hi - lo;
  };
  EXPECT_LT(spread(1e-4), spread(100.0));
}

TEST(Linear, RejectsNonPositiveC) {
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0}});
  data.set_column(0, {1.0f, 2.0f});
  data.set_labels({1.0, 2.0});
  LinearParams params;
  params.c = 0.0;
  EXPECT_THROW(train_linear(DataView(data), params), InvalidArgument);
}

TEST(Linear, PredictBeforeTrainRejected) {
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0}});
  data.set_column(0, {1.0f});
  data.set_labels({1.0});
  LinearModel model;
  EXPECT_THROW(model.predict(DataView(data)), InvalidArgument);
}

}  // namespace
}  // namespace flaml
