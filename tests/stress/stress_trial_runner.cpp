// Concurrency stress for TrialRunner::run (parallel search mode): many
// threads evaluating trials against one shared runner must neither race
// (run under TSan) nor change any result relative to serial execution.
#include "automl/trial_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "learners/registry.h"
#include "support/prop.h"
#include "support/stub_learner.h"

namespace flaml {
namespace {

Dataset tiny_binary(std::uint64_t seed, std::size_t n_rows = 120) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = n_rows;
  spec.n_features = 5;
  spec.seed = seed;
  return make_classification(spec);
}

struct TrialKey {
  std::uint64_t salt;
  std::size_t sample_size;
  double slope;
};

// Concurrent salted runs must produce bitwise the same (error, cost) as the
// same trials run serially: the salt pins the training seed and the cost
// model pins the cost, so thread scheduling can contribute nothing.
FLAML_PROP(TrialRunnerStress, ConcurrentRunsMatchSerialRuns, 8) {
  Dataset data = tiny_binary(prop.seed | 1);
  TrialRunner::Options options;
  options.resampling = prop.rng.bernoulli(0.5) ? Resampling::Holdout : Resampling::CV;
  options.cv_folds = 3;
  options.seed = prop.rng.next();
  options.cost_model = [](const Learner&, const Config& config,
                          std::size_t sample_size) {
    return 0.01 + 0.001 * static_cast<double>(sample_size) + config.at("slope");
  };
  TrialRunner runner(data, ErrorMetric::default_for(Task::BinaryClassification),
                     options);
  testing::StubLearner learner("stub", 1.0);
  ConfigSpace space = learner.space(Task::BinaryClassification, data.n_rows());

  // Generate a batch of distinct trials.
  const int n_trials = 24;
  std::vector<TrialKey> keys;
  std::vector<Config> configs;
  for (int i = 0; i < n_trials; ++i) {
    Config config = space.random_config(prop.rng);
    config["slope"] = std::abs(config["slope"]) + 0.1;  // keep cost positive
    TrialKey key;
    key.salt = prop.rng.next() | 1;
    // Floor of 12 rows: every fold of a 3-fold CV split stays non-empty.
    key.sample_size = 12 + prop.rng.uniform_index(runner.max_sample_size() - 11);
    key.slope = config.at("slope");
    keys.push_back(key);
    configs.push_back(std::move(config));
  }

  // Parallel pass: threads grab trials off a shared counter.
  std::vector<TrialResult> parallel_results(n_trials);
  std::atomic<std::size_t> next{0};
  const int n_threads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= static_cast<std::size_t>(n_trials)) return;
        parallel_results[i] = runner.run(learner, configs[i], keys[i].sample_size,
                                         /*max_seconds=*/0.0, keys[i].salt);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Serial pass over the same trials, in a different order for good measure.
  for (int i = n_trials - 1; i >= 0; --i) {
    TrialResult serial = runner.run(learner, configs[i], keys[i].sample_size,
                                    /*max_seconds=*/0.0, keys[i].salt);
    EXPECT_TRUE(serial.ok);
    EXPECT_TRUE(parallel_results[i].ok);
    EXPECT_DOUBLE_EQ(serial.error, parallel_results[i].error) << "trial " << i;
    EXPECT_DOUBLE_EQ(serial.cost, parallel_results[i].cost) << "trial " << i;
  }
}

// Same hammering with a real learner: races in the tree/GBDT training path
// would surface here under TSan even though each thread trains its own model.
TEST(TrialRunnerStress, ConcurrentRealLearnerTrials) {
  Dataset data = tiny_binary(99, 150);
  TrialRunner::Options options;
  options.resampling = Resampling::Holdout;
  options.seed = 7;
  TrialRunner runner(data, ErrorMetric::default_for(Task::BinaryClassification),
                     options);
  LearnerPtr lgbm = builtin_learner("lgbm");
  ConfigSpace space = lgbm->space(Task::BinaryClassification, data.n_rows());
  const Config config = space.initial_config();

  std::vector<TrialResult> results(12);
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= results.size()) return;
        results[i] = runner.run(*lgbm, config, 64, /*max_seconds=*/0.0,
                                /*seed_salt=*/i + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok) << "trial " << i;
    EXPECT_GT(results[i].cost, 0.0);
    // Same salt ⇒ same result, also when recomputed on this thread.
    TrialResult again = runner.run(*lgbm, config, 64, 0.0, i + 1);
    EXPECT_DOUBLE_EQ(again.error, results[i].error) << "trial " << i;
  }
}

}  // namespace
}  // namespace flaml
