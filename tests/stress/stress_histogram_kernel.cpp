// Histogram-kernel concurrency stress (run under TSan via the `stress`
// label): the packed substrate is immutable and shared — many threads
// hammering one PackedBins with simultaneous kernel builds must (a) never
// race, (b) produce histograms bit-identical to solo single-threaded runs,
// including when the hammer threads themselves use the shared pool for
// intra-build sharding. Then end-to-end: a PARALLEL cached CV search with
// the simd kernels on (worker trials sharing one packed substrate through
// the SubstrateCache) must produce record-for-record the same history as
// the scalar-forced run — kernel concurrency can never leak into search
// results.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "automl/automl.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "support/prop.h"
#include "tree/binning.h"
#include "tree/histogram.h"
#include "tree/packed_bins.h"

namespace flaml {
namespace {

Dataset stress_data(std::uint64_t seed, Task task) {
  SyntheticSpec spec;
  spec.task = task;
  spec.n_rows = 900;
  spec.n_features = 8;
  spec.missing_fraction = 0.1;
  spec.categorical_fraction = 0.25;
  spec.seed = seed;
  return task == Task::Regression ? make_regression(spec)
                                  : make_classification(spec);
}

TEST(HistogramKernelStress, ConcurrentBuildsOnSharedPackedMatchSoloRuns) {
  const Dataset data = stress_data(0xbeef, Task::Regression);
  const BinnedSubstrate substrate = build_substrate(DataView(data), 127);
  // The substrate carries the shared packed plane unless the run forces the
  // scalar escape hatch, in which case pack locally so the hammer still runs.
  const PackedBins local_packed = substrate.packed.empty()
                                      ? PackedBins::pack(substrate.binned)
                                      : PackedBins();
  const PackedBins& packed =
      substrate.packed.empty() ? local_packed : substrate.packed;
  const std::vector<std::size_t> offsets = histogram_offsets(substrate.mapper);
  const std::size_t n = data.n_rows();

  std::vector<int> features(substrate.mapper.n_features());
  std::iota(features.begin(), features.end(), 0);
  Rng rng(0xfeed);
  std::vector<double> grad(n), hess(n), unit(n, 1.0), weights(n);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = rng.normal();
    hess[i] = rng.uniform(1e-3, 2.0);
    weights[i] = rng.uniform(0.1, 2.0);
    labels[i] = static_cast<int>(rng.uniform_index(3));
  }
  // A handful of distinct row subsets; threads cycle through them in
  // different orders so concurrent builds overlap on the same packed lines.
  std::vector<std::vector<std::uint32_t>> subsets;
  for (std::uint32_t stride = 1; stride <= 4; ++stride) {
    std::vector<std::uint32_t> rows;
    for (std::uint32_t i = 0; i < n; i += stride) rows.push_back(i);
    subsets.push_back(std::move(rows));
  }

  const HistKernel kernel = best_hist_kernel();
  ASSERT_NE(kernel, HistKernel::Scalar);

  // Solo references, built before any concurrency.
  std::vector<std::vector<HistEntry>> ref_grad(subsets.size());
  std::vector<std::vector<double>> ref_class(subsets.size());
  for (std::size_t s = 0; s < subsets.size(); ++s) {
    build_gradient_histogram_packed(packed, offsets, features,
                                    subsets[s].data(), subsets[s].size(),
                                    grad, hess, false, ref_grad[s], kernel);
    build_class_histogram_packed(packed, offsets, 3, subsets[s].data(),
                                 subsets[s].size(), labels, weights,
                                 ref_class[s], kernel);
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<HistEntry> hist;
      std::vector<double> cells;
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < subsets.size(); ++i) {
          const std::size_t s = (i + static_cast<std::size_t>(t)) % subsets.size();
          // Even threads also shard intra-build over the shared pool, so
          // pool-level and caller-level concurrency overlap under TSan.
          const HistParallel par =
              t % 2 == 0 ? HistParallel{&shared_pool(), 4} : HistParallel{};
          build_gradient_histogram_packed(packed, offsets, features,
                                          subsets[s].data(), subsets[s].size(),
                                          grad, hess, false, hist, kernel, par);
          bool ok = hist.size() == ref_grad[s].size();
          for (std::size_t j = 0; ok && j < hist.size(); ++j) {
            ok = hist[j].g == ref_grad[s][j].g &&
                 hist[j].h == ref_grad[s][j].h && hist[j].n == ref_grad[s][j].n;
          }
          build_class_histogram_packed(packed, offsets, 3, subsets[s].data(),
                                       subsets[s].size(), labels, weights,
                                       cells, kernel, par);
          ok = ok && cells.size() == ref_class[s].size();
          for (std::size_t j = 0; ok && j < cells.size(); ++j) {
            ok = cells[j] == ref_class[s][j];
          }
          if (!ok) ++mismatches[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0) << "thread " << t;
  }
}

// End-to-end: simd kernels under a parallel cached CV search vs the scalar
// escape hatch. The histories must match record for record — the packed
// fast path is bit-transparent even with worker trials sharing substrates.
FLAML_PROP(HistogramKernelStress, ParallelSearchSimdMatchesScalarForced, 2) {
  const Dataset data = stress_data(prop.seed | 1, Task::BinaryClassification);
  AutoMLOptions options;
  options.time_budget_seconds = 1e6;
  options.max_iterations = 6;
  options.initial_sample_size = 64;
  options.resampling = ResamplingPolicy::ForceCV;
  options.estimator_list = {"lgbm", "rf"};
  options.n_parallel = 4;
  options.reuse_binned_data = true;
  options.trial_cost_model = [](const Learner& learner, const Config&,
                                std::size_t sample_size) {
    return learner.initial_cost_multiplier() *
           (0.1 + 0.001 * static_cast<double>(sample_size));
  };
  options.seed = prop.rng.next();

  ::setenv("FLAML_HISTOGRAM_KERNEL", "simd", 1);
  AutoML simd;
  simd.fit(data, options);
  ::setenv("FLAML_HISTOGRAM_KERNEL", "scalar", 1);
  AutoML scalar;
  scalar.fit(data, options);
  ::unsetenv("FLAML_HISTOGRAM_KERNEL");

  const TrialHistory& a = simd.history();
  const TrialHistory& b = scalar.history();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string what = "record " + std::to_string(i);
    EXPECT_EQ(a[i].learner, b[i].learner) << what;
    EXPECT_EQ(a[i].config, b[i].config) << what;
    EXPECT_EQ(a[i].sample_size, b[i].sample_size) << what;
    EXPECT_DOUBLE_EQ(a[i].error, b[i].error) << what;
  }
  EXPECT_DOUBLE_EQ(simd.best_error(), scalar.best_error());
  EXPECT_EQ(simd.best_learner(), scalar.best_learner());
}

}  // namespace
}  // namespace flaml
