// Concurrent tracing stress: with n_parallel > 1 the trace sink is hit from
// pool threads (trial_started) and the controller thread at once, and the
// metrics registry is updated while proposals are being traced. Run under
// TSan (`ctest --preset tsan -L stress`) to catch sink races; in Release it
// doubles as a schema check for parallel traces.
#include "observe/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "automl/automl.h"
#include "data/generators.h"
#include "observe/trace_check.h"
#include "support/prop.h"
#include "support/stub_learner.h"

namespace flaml {
namespace {

using observe::JsonlTraceSink;
using observe::MemoryTraceSink;
using observe::TraceEvent;

Dataset tiny_binary(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 100;
  spec.n_features = 5;
  spec.seed = seed;
  return make_classification(spec);
}

AutoMLOptions stub_options(std::uint64_t seed, std::size_t max_iterations) {
  AutoMLOptions options;
  options.time_budget_seconds = 1e6;
  options.max_iterations = max_iterations;
  options.initial_sample_size = 16;
  options.resampling = ResamplingPolicy::ForceHoldout;
  options.estimator_list = {"stub_fast", "stub_mid", "stub_slow"};
  options.trial_cost_model = [](const Learner& learner, const Config& config,
                                std::size_t sample_size) {
    return learner.initial_cost_multiplier() *
           (0.05 + 0.001 * static_cast<double>(sample_size) +
            0.002 * config.at("units"));
  };
  options.seed = seed;
  return options;
}

void add_stub_lineup(AutoML& automl) {
  automl.add_learner(std::make_shared<testing::StubLearner>("stub_fast", 1.0));
  automl.add_learner(std::make_shared<testing::StubLearner>("stub_mid", 1.9));
  automl.add_learner(std::make_shared<testing::StubLearner>("stub_slow", 15.0));
}

// Raw sink hammer: many threads emitting concurrently into both sink
// backends; every event must land exactly once and every JSONL line must
// stay an unbroken record.
FLAML_PROP(TraceStress, ConcurrentEmissionsLandExactlyOnce, 5) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;

  MemoryTraceSink memory;
  std::ostringstream out;
  JsonlTraceSink jsonl(out);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceEvent event;
        event.type = "stress";
        event.time = static_cast<double>(i);
        event.fields = JsonValue::make_object();
        event.fields.set("thread", JsonValue::make_number(t));
        event.fields.set("i", JsonValue::make_number(i));
        memory.emit(event);
        jsonl.emit(event);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(memory.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(jsonl.n_events(), static_cast<std::size_t>(kThreads * kPerThread));

  std::istringstream in(out.str());
  std::string line;
  std::size_t n_lines = 0;
  std::vector<int> per_thread(kThreads, 0);
  while (std::getline(in, line)) {
    ++n_lines;
    const JsonValue parsed = parse_json(line);  // throws on a torn line
    ++per_thread[static_cast<int>(parsed.at("thread").number)];
  }
  EXPECT_EQ(n_lines, static_cast<std::size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_thread[t], kPerThread);
}

// Parallel traced fit: the full pipeline — controller, pool threads, FLOW2
// tuners and the metrics registry — shares one JSONL sink, and the result
// must still pass every schema invariant.
FLAML_PROP(TraceStress, ParallelTracedFitValidates, 5) {
  Dataset data = tiny_binary(prop.seed | 1);
  std::ostringstream out;
  AutoMLOptions options = stub_options(prop.rng.next(), /*max_iterations=*/16);
  options.n_parallel = 4;
  options.trace_sink = std::make_shared<JsonlTraceSink>(out);

  AutoML automl;
  add_stub_lineup(automl);
  automl.fit(data, options);

  std::istringstream in(out.str());
  const auto result = observe::check_trace(in);
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_EQ(result.n_trials, 16u);
  EXPECT_DOUBLE_EQ(automl.metrics().value("trials_total"), 16.0);
}

// Tracing must not perturb the search: the parallel==serial determinism
// contract holds with a sink attached.
FLAML_PROP(TraceStress, TracedParallelMatchesUntracedSerial, 3) {
  Dataset data = tiny_binary(prop.seed | 1);
  AutoMLOptions options = stub_options(prop.rng.next(), /*max_iterations=*/12);
  options.learner_choice = LearnerChoice::RoundRobin;

  AutoML serial;
  add_stub_lineup(serial);
  serial.fit(data, options);

  AutoMLOptions traced = options;
  traced.n_parallel = 4;
  traced.trace_sink = std::make_shared<MemoryTraceSink>();
  AutoML parallel;
  add_stub_lineup(parallel);
  parallel.fit(data, traced);

  ASSERT_EQ(serial.history().size(), parallel.history().size());
  for (std::size_t i = 0; i < serial.history().size(); ++i) {
    EXPECT_EQ(serial.history()[i].learner, parallel.history()[i].learner) << i;
    EXPECT_EQ(serial.history()[i].config, parallel.history()[i].config) << i;
    EXPECT_DOUBLE_EQ(serial.history()[i].error, parallel.history()[i].error) << i;
  }
}

}  // namespace
}  // namespace flaml
