// Stress tests for the search daemon (src/server), designed to run under
// TSan (docs/TESTING.md). They drive the acceptance matrix for the daemon:
// N concurrent jobs over M workers — quantum-sliced, API-preempted and
// deadline-free — must each produce a trial history byte-identical to a solo
// uninterrupted run of the same options, including jobs that were explicitly
// preempted mid-flight and resumed from their checkpoint.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "server/daemon.h"
#include "support/prop.h"
#include "support/resume_test_util.h"

namespace flaml::testing {
namespace {

using server::job_state_name;
using server::JobOptions;
using server::JobState;
using server::SearchDaemon;

std::vector<LearnerPtr> stub_lineup() {
  return {std::make_shared<StubLearner>("stub_fast", 1.0),
          std::make_shared<StubLearner>("stub_mid", 1.9),
          std::make_shared<StubLearner>("stub_slow", 15.0)};
}

void solo_run(AutoML& automl, const Dataset& data, std::uint64_t seed,
              std::size_t iterations) {
  add_resume_lineup(automl);
  automl.fit(data, resume_options(seed, iterations));
}

// N jobs × M workers, tight quanta so every job gets sliced repeatedly, and
// one job additionally evicted through the public preempt() API mid-run.
// However the scheduler interleaves them, each history must equal its solo
// reference run — scheduling may never leak into search results.
FLAML_PROP(ServerStress, NJobsByMWorkersMatchSoloRuns, 6) {
  const std::size_t slots = 1 + prop.rng.uniform_index(4);
  const std::size_t n_jobs = 3 + prop.rng.uniform_index(4);
  const std::size_t iterations = 10;
  const std::uint64_t base_seed = 400 + 100 * prop.index;

  SearchDaemon::Options daemon_options;
  daemon_options.slots = slots;
  SearchDaemon daemon(daemon_options);

  std::vector<std::shared_ptr<const Dataset>> datasets;
  std::vector<std::uint64_t> ids;
  for (std::size_t j = 0; j < n_jobs; ++j) {
    const std::uint64_t seed = base_seed + j;
    datasets.push_back(
        std::make_shared<const Dataset>(resume_tiny_binary(seed)));
    JobOptions job;
    job.name = "stress-" + std::to_string(j);
    job.quantum_trials = 1 + prop.rng.uniform_index(3);
    ids.push_back(daemon.submit(datasets.back(),
                                resume_options(seed, iterations), job,
                                stub_lineup()));
  }

  // Hit job 0 with public-API preemptions while the matrix runs; each hit
  // evicts it to a checkpoint and the scheduler resumes it later. Capped so
  // an adversarial interleaving can't starve the job of forward progress.
  std::atomic<bool> done{false};
  std::thread preemptor([&] {
    int hits = 0;
    while (!done.load() && hits < 4) {
      if (daemon.preempt(ids.front())) ++hits;
      std::this_thread::yield();
    }
  });
  daemon.wait_all();
  done.store(true);
  preemptor.join();

  for (std::size_t j = 0; j < n_jobs; ++j) {
    ASSERT_EQ(daemon.state(ids[j]), JobState::Finished)
        << "job " << j << " seed " << prop.seed;
    AutoML reference;
    solo_run(reference, *datasets[j], base_seed + j, iterations);
    expect_resumed_equals_reference(
        daemon.automl(ids[j]), reference,
        "job " + std::to_string(j) + " slots " + std::to_string(slots));
  }
  daemon.shutdown();
}

// The kill-at-every-boundary sweep from tests/test_server.cpp, lifted into
// the daemon: one job per boundary, each preempted exactly once at its
// assigned trial boundary via the test_control hook, all running
// concurrently over a small worker pool. Every resumed job must match solo.
TEST(ServerStress, PreemptAtEveryBoundarySweepThroughDaemon) {
  const std::size_t iterations = 8;
  const std::uint64_t seed = 77;
  const auto data = std::make_shared<const Dataset>(resume_tiny_binary(seed));
  AutoML reference;
  solo_run(reference, *data, seed, iterations);

  SearchDaemon::Options daemon_options;
  daemon_options.slots = 3;
  SearchDaemon daemon(daemon_options);

  std::vector<std::uint64_t> ids;
  for (std::size_t kill_at = 0; kill_at < iterations; ++kill_at) {
    JobOptions job;
    job.name = "boundary-" + std::to_string(kill_at);
    job.quantum_trials = iterations + 1;  // only the hook preempts
    // One-shot preempt at this job's boundary. The hook runs under the
    // daemon mutex, so the flag needs no synchronization of its own.
    auto fired = std::make_shared<bool>(false);
    job.test_control = [fired, kill_at](std::size_t iteration) {
      if (!*fired && iteration == kill_at) {
        *fired = true;
        return SearchSignal::Preempt;
      }
      return SearchSignal::Run;
    };
    ids.push_back(daemon.submit(data, resume_options(seed, iterations), job,
                                stub_lineup()));
  }
  daemon.wait_all();

  for (std::size_t kill_at = 0; kill_at < iterations; ++kill_at) {
    ASSERT_EQ(daemon.state(ids[kill_at]), JobState::Finished)
        << "boundary " << kill_at;
    const auto status = daemon.status(ids[kill_at]);
    EXPECT_GE(status.at("preemptions").number, 1.0) << "boundary " << kill_at;
    expect_resumed_equals_reference(daemon.automl(ids[kill_at]), reference,
                                    "boundary " + std::to_string(kill_at));
  }
  daemon.shutdown();
}

// Lifecycle churn: submit/cancel/preempt/status racing from several client
// threads against running jobs, then a shutdown with work still in flight.
// No assertion beyond "terminal states are coherent" — under TSan this is
// a data-race detector for the daemon's locking discipline.
TEST(ServerStress, ConcurrentClientsAndShutdownRaceCleanly) {
  const std::uint64_t seed = 91;
  const auto data = std::make_shared<const Dataset>(resume_tiny_binary(seed));

  SearchDaemon::Options daemon_options;
  daemon_options.slots = 2;
  SearchDaemon daemon(daemon_options);

  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> ids;
  std::mutex ids_mutex;
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + c);
      while (!stop.load()) {
        const std::size_t pick = rng.uniform_index(4);
        try {
          if (pick == 0) {
            JobOptions job;
            job.quantum_trials = 2;
            const std::uint64_t id = daemon.submit(
                data, resume_options(seed, 12), job, stub_lineup());
            std::lock_guard<std::mutex> lock(ids_mutex);
            ids.push_back(id);
          } else {
            std::uint64_t id = 0;
            {
              std::lock_guard<std::mutex> lock(ids_mutex);
              if (ids.empty()) continue;
              id = ids[rng.uniform_index(ids.size())];
            }
            if (pick == 1) daemon.preempt(id);
            if (pick == 2) daemon.cancel(id);
            if (pick == 3) daemon.status(id);
          }
        } catch (const InvalidArgument&) {
          return;  // daemon shut down mid-call — expected
        }
        std::this_thread::yield();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  daemon.shutdown();
  stop.store(true);
  for (auto& t : clients) t.join();

  for (const auto& entry : daemon.list().array) {
    const JobState state =
        daemon.state(static_cast<std::uint64_t>(entry.at("id").number));
    EXPECT_TRUE(state == JobState::Finished || state == JobState::Cancelled ||
                state == JobState::Failed)
        << job_state_name(state);
  }
}

}  // namespace
}  // namespace flaml::testing
