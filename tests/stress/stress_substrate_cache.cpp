// Substrate-cache concurrency stress: many threads hammering one
// SubstrateCache with overlapping keys must (a) never race (run under TSan),
// (b) agree on ONE shared entry per key — the same shared_ptr, built exactly
// once — and (c) serve contents bit-identical to a fresh single-threaded
// fit+encode. Then end-to-end: a PARALLEL CV search with the cache on must
// produce the same trial history as with it off, so cache contention in the
// real trial loop cannot leak into search results.
#include "automl/substrate_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "automl/automl.h"
#include "data/generators.h"
#include "support/prop.h"

namespace flaml {
namespace {

Dataset stress_binary(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 120;
  spec.n_features = 6;
  spec.seed = seed;
  return make_classification(spec);
}

void expect_substrates_identical(const BinnedSubstrate& a,
                                 const BinnedSubstrate& b,
                                 const std::string& what) {
  ASSERT_EQ(a.max_bin, b.max_bin) << what;
  ASSERT_EQ(a.binned.n_rows(), b.binned.n_rows()) << what;
  ASSERT_EQ(a.binned.n_features(), b.binned.n_features()) << what;
  ASSERT_EQ(a.mapper.n_features(), b.mapper.n_features()) << what;
  for (std::size_t f = 0; f < a.binned.n_features(); ++f) {
    EXPECT_EQ(a.mapper.feature(f).n_value_bins, b.mapper.feature(f).n_value_bins)
        << what << " feature " << f;
    EXPECT_EQ(a.mapper.feature(f).edges, b.mapper.feature(f).edges)
        << what << " feature " << f;
    ASSERT_EQ(a.binned.feature(f), b.binned.feature(f))
        << what << " feature " << f;
  }
}

// Every thread asks for every key several times; keys deliberately collide
// across threads so first-build races, hit-path races and folds/substrate
// interleavings are all exercised. Each thread records what it was served;
// the main thread then checks one identity per key and compares against
// uncached single-threaded builds.
TEST(SubstrateCacheStress, ParallelHammerServesOneIdenticalEntryPerKey) {
  const Dataset data = stress_binary(4242);
  const DataView view(data);
  SubstrateCache cache(&view, /*fold_seed=*/99, observe::Tracer(), nullptr);

  const std::vector<std::size_t> sizes = {40, 80, 120};
  const std::vector<int> bins = {15, 63, 255};
  constexpr int kFolds = 3;
  constexpr int kThreads = 8;
  constexpr int kRounds = 4;

  using PrefixKey = std::tuple<std::size_t, int>;
  using FoldKey = std::tuple<std::size_t, int, int>;
  struct Served {
    std::map<PrefixKey, std::shared_ptr<const BinnedSubstrate>> prefixes;
    std::map<FoldKey, std::shared_ptr<const BinnedSubstrate>> fold_trains;
    std::map<std::size_t, std::shared_ptr<const std::vector<Fold>>> folds;
    bool stable = true;  // repeated lookups returned the same object
  };
  std::vector<Served> served(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Served& mine = served[t];
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t s : sizes) {
          auto folds = cache.folds(s, kFolds);
          auto [fit, fold_inserted] = mine.folds.emplace(s, folds);
          if (!fold_inserted && fit->second != folds) mine.stable = false;
          for (int b : bins) {
            auto sub = cache.prefix(s, b);
            auto [it, inserted] = mine.prefixes.emplace(PrefixKey{s, b}, sub);
            if (!inserted && it->second != sub) mine.stable = false;
            for (int f = 0; f < kFolds; ++f) {
              auto train = cache.fold_train(s, kFolds, f, b);
              auto [fi, fin] = mine.fold_trains.emplace(FoldKey{s, f, b}, train);
              if (!fin && fi->second != train) mine.stable = false;
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(served[t].stable) << "thread " << t;
    // All threads were served the SAME entry object per key.
    for (const auto& [key, sub] : served[t].prefixes) {
      EXPECT_EQ(sub, served[0].prefixes.at(key)) << "thread " << t;
    }
    for (const auto& [key, sub] : served[t].fold_trains) {
      EXPECT_EQ(sub, served[0].fold_trains.at(key)) << "thread " << t;
    }
    for (const auto& [key, folds] : served[t].folds) {
      EXPECT_EQ(folds, served[0].folds.at(key)) << "thread " << t;
    }
  }

  // Each entry was built exactly once: every lookup after the first per key
  // was a hit, and the contents equal a fresh single-threaded build.
  const SubstrateCache::Counters counters = cache.counters();
  const std::uint64_t n_keys = sizes.size() * bins.size() * (1 + kFolds);
  EXPECT_EQ(counters.misses, n_keys);
  EXPECT_EQ(counters.hits,
            static_cast<std::uint64_t>(kThreads) * kRounds *
                    (sizes.size() * bins.size() * (1 + kFolds)) -
                n_keys);

  for (std::size_t s : sizes) {
    for (int b : bins) {
      const BinnedSubstrate fresh = build_substrate(view.prefix(s), b);
      expect_substrates_identical(*served[0].prefixes.at(PrefixKey{s, b}), fresh,
                                  "prefix s=" + std::to_string(s) +
                                      " bins=" + std::to_string(b));
      const auto& folds = *served[0].folds.at(s);
      for (int f = 0; f < kFolds; ++f) {
        const BinnedSubstrate fold_fresh =
            build_substrate(folds[static_cast<std::size_t>(f)].train, b);
        expect_substrates_identical(
            *served[0].fold_trains.at(FoldKey{s, f, b}), fold_fresh,
            "fold s=" + std::to_string(s) + " f=" + std::to_string(f) +
                " bins=" + std::to_string(b));
      }
    }
  }
}

// End-to-end under TSan: parallel CV searches with real tree learners, cache
// on vs off, must agree record-for-record — contention inside the cache can
// never surface as a search-result difference.
FLAML_PROP(SubstrateCacheStress, ParallelCvSearchCacheOnOffIdentical, 3) {
  const Dataset data = stress_binary(prop.seed | 1);
  AutoMLOptions options;
  options.time_budget_seconds = 1e6;
  options.max_iterations = 6;
  options.initial_sample_size = 32;
  options.resampling = ResamplingPolicy::ForceCV;
  options.estimator_list = {"lgbm", "rf"};
  options.n_parallel = 4;
  options.trial_cost_model = [](const Learner& learner, const Config&,
                                std::size_t sample_size) {
    return learner.initial_cost_multiplier() *
           (0.1 + 0.001 * static_cast<double>(sample_size));
  };
  options.seed = prop.rng.next();

  options.reuse_binned_data = true;
  AutoML cached;
  cached.fit(data, options);

  options.reuse_binned_data = false;
  AutoML fresh;
  fresh.fit(data, options);

  const TrialHistory& a = cached.history();
  const TrialHistory& b = fresh.history();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string what = "record " + std::to_string(i);
    EXPECT_EQ(a[i].learner, b[i].learner) << what;
    EXPECT_EQ(a[i].config, b[i].config) << what;
    EXPECT_EQ(a[i].sample_size, b[i].sample_size) << what;
    EXPECT_DOUBLE_EQ(a[i].error, b[i].error) << what;
    EXPECT_DOUBLE_EQ(a[i].cost, b[i].cost) << what;
  }
  EXPECT_DOUBLE_EQ(cached.best_error(), fresh.best_error());
  EXPECT_EQ(cached.best_learner(), fresh.best_learner());
  EXPECT_GT(cached.metrics().value("substrate_cache.hits"), 0.0);
}

}  // namespace
}  // namespace flaml
