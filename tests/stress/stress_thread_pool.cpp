// Stress tests for ThreadPool, designed to be run under TSan/ASan/UBSan
// (docs/TESTING.md). They hammer the shutdown/enqueue ordering, nested
// parallel_for, and exception paths that the unit tests only touch once.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/prop.h"

namespace flaml {
namespace {

FLAML_PROP(ThreadPoolStress, ParallelForCoversEveryIndexOnce, 25) {
  const std::size_t workers = 1 + prop.rng.uniform_index(8);
  const std::size_t n = prop.rng.uniform_index(512);
  ThreadPool pool(workers);
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
  }
}

FLAML_PROP(ThreadPoolStress, ConcurrentSubmittersAllTasksRun, 10) {
  const std::size_t workers = 2 + prop.rng.uniform_index(4);
  const int submitters = 2 + static_cast<int>(prop.rng.uniform_index(4));
  const int per_thread = 50;
  ThreadPool pool(workers);
  std::atomic<int> ran{0};
  std::vector<std::thread> threads;
  std::vector<std::vector<std::future<void>>> futures(submitters);
  for (int t = 0; t < submitters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < per_thread; ++i) {
        futures[t].push_back(pool.submit([&ran] { ran.fetch_add(1); }));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& fs : futures) {
    for (auto& f : fs) f.get();
  }
  EXPECT_EQ(ran.load(), submitters * per_thread);
}

// The shutdown-ordering contract: a submitter racing the destructor either
// gets its task executed (accepted before stop) or an InvalidArgument
// (rejected after stop) — never a dropped task, a hang, or a torn queue.
FLAML_PROP(ThreadPoolStress, ShutdownRacingSubmitNeverDropsWork, 15) {
  const std::size_t workers = 1 + prop.rng.uniform_index(4);
  auto pool = std::make_unique<ThreadPool>(workers);
  std::atomic<int> accepted{0};
  std::atomic<int> executed{0};
  std::atomic<bool> go{false};
  const int submitters = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < submitters; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 200; ++i) {
        try {
          pool->submit([&executed] { executed.fetch_add(1); });
          accepted.fetch_add(1);
        } catch (const InvalidArgument&) {
          return;  // pool shut down — expected
        }
      }
    });
  }
  go.store(true);
  // Let the submitters get going, then tear the pool down mid-stream.
  std::this_thread::yield();
  pool->shutdown();
  const int accepted_at_shutdown = accepted.load();
  EXPECT_GE(executed.load(), accepted_at_shutdown);
  for (auto& th : threads) th.join();
  // Every accepted task ran before shutdown() returned; tasks accepted
  // after the count was read only add to `executed`.
  EXPECT_GE(executed.load(), accepted.load());
  pool.reset();
  EXPECT_EQ(executed.load(), accepted.load());
}

// The daemon pattern under fire: external submitters racing shutdown while
// accepted tasks themselves try_submit follow-up work from worker threads.
// Every acceptance (future from submit, engaged optional from try_submit)
// must execute; every rejection must be typed; nothing may be lost or torn.
FLAML_PROP(ThreadPoolStress, ShutdownRacingWorkerTrySubmitIsTypedOrRuns, 15) {
  const std::size_t workers = 1 + prop.rng.uniform_index(4);
  ThreadPool pool(workers);
  std::atomic<int> accepted{0};
  std::atomic<int> executed{0};
  std::atomic<bool> go{false};
  const int submitters = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < submitters; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 150; ++i) {
        // Each accepted task re-enqueues once from inside the pool — the
        // shape of a daemon segment scheduling its successor. A dying
        // worker's try_submit must return nullopt, never enqueue into a
        // torn queue or block shutdown.
        auto chained = pool.try_submit([&pool, &accepted, &executed] {
          executed.fetch_add(1);
          auto follow = pool.try_submit([&executed] { executed.fetch_add(1); });
          if (follow.has_value()) accepted.fetch_add(1);
        });
        if (!chained.has_value()) return;  // pool stopped — typed rejection
        accepted.fetch_add(1);
      }
    });
  }
  go.store(true);
  std::this_thread::yield();
  pool.shutdown();
  for (auto& th : threads) th.join();
  EXPECT_THROW(pool.submit([] {}), PoolStopped);
  // shutdown() drains: by the time both it and the submitters returned,
  // every accepted task (outer and chained) has run.
  EXPECT_EQ(executed.load(), accepted.load());
}

TEST(ThreadPoolStress, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_TRUE(pool.stopped());
  EXPECT_THROW(pool.submit([] {}), InvalidArgument);
  pool.shutdown();  // idempotent
}

TEST(ThreadPoolStress, NestedParallelForFromWorkerRunsInline) {
  ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  pool.parallel_for(6, [&](std::size_t) {
    // Re-entrant call from a worker thread: must run inline, not deadlock.
    pool.parallel_for(10, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 60);
}

FLAML_PROP(ThreadPoolStress, ParallelForPropagatesFirstException, 10) {
  ThreadPool pool(2 + prop.rng.uniform_index(3));
  const std::size_t n = 64;
  const std::size_t bad = prop.rng.uniform_index(n);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(n,
                        [&](std::size_t i) {
                          ran.fetch_add(1);
                          if (i == bad) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  EXPECT_GE(ran.load(), 1);
  // The pool survives the exception and stays usable.
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolStress, RapidConstructDestroyCycles) {
  for (int cycle = 0; cycle < 40; ++cycle) {
    ThreadPool pool(1 + cycle % 4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) pool.submit([&ran] { ran.fetch_add(1); });
    // Destructor must drain the queue: every accepted task runs.
    pool.shutdown();
    EXPECT_EQ(ran.load(), 8);
  }
}

}  // namespace
}  // namespace flaml
