// Kill-anywhere replay stress (the tentpole test of the checkpoint/resume
// PR): a search killed at ANY trial boundary k and resumed from the
// boundary-k checkpoint must be indistinguishable from the run that was
// never interrupted — byte-identical trial history, final best, and
// run-summary metric totals — serial and parallel (run under TSan via the
// `stress` label). Plus a corrupt-checkpoint fuzz: random truncations and
// bit flips of a real checkpoint file must surface as SerializationError,
// never UB (run under ASan/UBSan).
#include "resume/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "automl/automl.h"
#include "common/error.h"
#include "observe/trace_check.h"
#include "support/prop.h"
#include "support/resume_test_util.h"

namespace flaml {
namespace {

using testing::add_resume_lineup;
using testing::arm_kill;
using testing::expect_resumed_equals_reference;
using testing::KillSignal;
using testing::PropCase;
using testing::resume_options;
using testing::resume_tiny_binary;

std::string unique_path(const PropCase& prop, const std::string& tag) {
  return ::testing::TempDir() + "resume_" + tag + "_" +
         std::to_string(prop.seed) + ".ckpt";
}

// Kill the fit at boundary `kill_at` (checkpointing every trial), capturing
// the killed segment's trace. Expects the KillSignal to actually fire.
void run_killed_fit(AutoML& automl, const Dataset& data, AutoMLOptions options,
                    const std::string& path, std::size_t kill_at) {
  arm_kill(options, path, kill_at);
  add_resume_lineup(automl);
  bool killed = false;
  try {
    automl.fit(data, options);
  } catch (const KillSignal& kill) {
    killed = true;
    EXPECT_EQ(kill.at_iteration, kill_at);
  }
  ASSERT_TRUE(killed) << "fit ran to completion instead of dying at trial "
                      << kill_at;
}

const observe::TraceEvent* find_run_summary(
    const std::vector<observe::TraceEvent>& events) {
  for (const auto& e : events) {
    if (e.type == "run_summary") return &e;
  }
  return nullptr;
}

// The full crash-equivalence check for one (options, kill boundary) pair:
// kill at k, resume, compare against the uninterrupted reference; then
// validate the stitched killed+resumed trace and its run_summary totals.
void check_kill_at(const Dataset& data, const AutoMLOptions& options,
                   const AutoML& reference,
                   const std::vector<observe::TraceEvent>& reference_trace,
                   const std::string& path, std::size_t kill_at,
                   const std::string& what) {
  auto killed_sink = std::make_shared<observe::MemoryTraceSink>();
  AutoMLOptions killed_options = options;
  killed_options.trace_sink = killed_sink;
  AutoML killed;
  run_killed_fit(killed, data, killed_options, path, kill_at);
  if (::testing::Test::HasFatalFailure()) return;

  auto resumed_sink = std::make_shared<observe::MemoryTraceSink>();
  AutoMLOptions resumed_options = options;
  resumed_options.trace_sink = resumed_sink;
  AutoML resumed;
  add_resume_lineup(resumed);
  resumed.resume_from_file(data, resumed_options, path);

  expect_resumed_equals_reference(resumed, reference, what);

  // The stitched trace — the killed segment followed by the resumed one —
  // must satisfy every structural invariant (per-segment started/finished
  // balance, exactly one run_summary, consistent totals).
  std::vector<observe::TraceEvent> stitched = killed_sink->snapshot();
  const std::vector<observe::TraceEvent> resumed_events = resumed_sink->snapshot();
  stitched.insert(stitched.end(), resumed_events.begin(), resumed_events.end());
  const observe::TraceCheckResult check = observe::check_trace_events(stitched);
  EXPECT_TRUE(check.ok()) << what << ": stitched trace invalid: "
                          << (check.errors.empty() ? "" : check.errors.front());
  EXPECT_EQ(check.n_trials, reference.history().size()) << what;

  // run_summary totals match the uninterrupted run's.
  const observe::TraceEvent* resumed_summary = find_run_summary(resumed_events);
  const observe::TraceEvent* reference_summary = find_run_summary(reference_trace);
  ASSERT_NE(resumed_summary, nullptr) << what;
  ASSERT_NE(reference_summary, nullptr) << what;
  EXPECT_DOUBLE_EQ(resumed_summary->fields.at("n_trials").number,
                   reference_summary->fields.at("n_trials").number)
      << what;
  EXPECT_EQ(observe::error_field_value(resumed_summary->fields.at("best_error")),
            observe::error_field_value(reference_summary->fields.at("best_error")))
      << what;
}

// Sweep every kill boundary for one option set.
void sweep_all_boundaries(const PropCase& prop, AutoMLOptions options,
                          const std::string& tag) {
  const Dataset data = resume_tiny_binary(prop.seed | 1);
  auto reference_sink = std::make_shared<observe::MemoryTraceSink>();
  AutoMLOptions reference_options = options;
  reference_options.trace_sink = reference_sink;
  AutoML reference;
  add_resume_lineup(reference);
  reference.fit(data, reference_options);
  const std::size_t n = reference.history().size();
  ASSERT_EQ(n, options.max_iterations);
  const std::vector<observe::TraceEvent> reference_trace =
      reference_sink->snapshot();

  const std::string path = unique_path(prop, tag);
  for (std::size_t k = 1; k <= n; ++k) {
    check_kill_at(data, options, reference, reference_trace, path, k,
                  tag + " kill at " + std::to_string(k) + "/" +
                      std::to_string(n) + " seed " + std::to_string(prop.seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
  std::remove(path.c_str());
}

// --- The headline sweep: serial, every boundary of a 10-trial search ---
FLAML_PROP(ResumeStress, SerialKillAnywhereReplayMatchesUninterrupted, 6) {
  sweep_all_boundaries(prop, resume_options(prop.rng.next(), 10), "serial");
}

// --- Parallel: the checkpoint carries in-flight (pending) trials ---
FLAML_PROP(ResumeStress, ParallelKillAnywhereReplayMatchesUninterrupted, 3) {
  for (int n_parallel : {2, 4}) {
    AutoMLOptions options = resume_options(prop.rng.next(), 12);
    options.n_parallel = n_parallel;
    sweep_all_boundaries(prop, options,
                         "par" + std::to_string(n_parallel));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Round-robin ablation: with the policy-level randomness removed, the
// parallel checkpoint/resume path must also preserve the parallel==serial
// history identity end to end.
FLAML_PROP(ResumeStress, RoundRobinParallelResumeKeepsSerialIdentity, 2) {
  const Dataset data = resume_tiny_binary(prop.seed | 1);
  AutoMLOptions options = resume_options(prop.rng.next(), 12);
  options.learner_choice = LearnerChoice::RoundRobin;

  AutoML serial;
  add_resume_lineup(serial);
  serial.fit(data, options);

  AutoMLOptions par_options = options;
  par_options.n_parallel = 4;
  const std::string path = unique_path(prop, "rr");
  AutoML killed;
  run_killed_fit(killed, data, par_options, path, 6);
  if (::testing::Test::HasFatalFailure()) return;

  AutoML resumed;
  add_resume_lineup(resumed);
  resumed.resume_from_file(data, par_options, path);
  testing::expect_resume_histories_equal(resumed.history(), serial.history(),
                                         "round-robin resumed parallel vs serial");
  std::remove(path.c_str());
}

// --- Corrupt-checkpoint fuzz: damage must always be a typed error ---

// One real mid-search checkpoint file, serialized once and shared by every
// fuzz case (building it per case would dominate the fuzz runtime).
const std::string& fuzz_checkpoint_text() {
  static const std::string text = [] {
    const Dataset data = resume_tiny_binary(97);
    const std::string path = ::testing::TempDir() + "resume_fuzz_source.ckpt";
    AutoMLOptions options = resume_options(17, 10);
    AutoML automl;
    [&] { run_killed_fit(automl, data, options, path, 6); }();
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    std::remove(path.c_str());
    return out.str();
  }();
  return text;
}

FLAML_PROP(ResumeStress, TruncatedCheckpointAlwaysThrows, 60) {
  const std::string& text = fuzz_checkpoint_text();
  ASSERT_FALSE(text.empty());
  // Random cut point, biased to also hit the header in some cases.
  const std::size_t cut = prop.rng.uniform_index(text.size());
  const std::string damaged = text.substr(0, cut);
  EXPECT_THROW(resume::parse_checkpoint(damaged), SerializationError)
      << "truncation to " << cut << " of " << text.size() << " bytes";

  // The same damage through the file loader.
  const std::string path = unique_path(prop, "trunc");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
  }
  EXPECT_THROW(resume::SearchCheckpoint::load(path), SerializationError);
  std::remove(path.c_str());
}

FLAML_PROP(ResumeStress, BitFlippedCheckpointAlwaysThrows, 120) {
  const std::string& text = fuzz_checkpoint_text();
  ASSERT_FALSE(text.empty());
  std::string damaged = text;
  // Flip 1-4 random bits.
  const int n_flips = 1 + static_cast<int>(prop.rng.uniform_index(4));
  for (int i = 0; i < n_flips; ++i) {
    const std::size_t byte = prop.rng.uniform_index(damaged.size());
    damaged[byte] = static_cast<char>(
        damaged[byte] ^ (1u << prop.rng.uniform_index(8)));
  }
  if (damaged == text) return;  // flips cancelled out
  EXPECT_THROW(resume::parse_checkpoint(damaged), SerializationError)
      << n_flips << " bit flips went undetected (seed " << prop.seed << ")";
}

// Structured payload fuzz: past the checksum, a VALID envelope around a
// randomly mutated JSON payload must either load or throw
// SerializationError — never crash, never any other exception type. (ASan/
// UBSan do the memory-safety half of this check.)
FLAML_PROP(ResumeStress, MutatedPayloadNeverEscapesTypedErrors, 80) {
  const JsonValue payload = resume::parse_checkpoint(fuzz_checkpoint_text());
  JsonValue mutated = payload;
  ASSERT_FALSE(mutated.object.empty());
  const std::size_t slot = prop.rng.uniform_index(mutated.object.size());
  switch (prop.rng.uniform_index(4)) {
    case 0:  // drop a top-level field
      mutated.object.erase(mutated.object.begin() +
                           static_cast<std::ptrdiff_t>(slot));
      break;
    case 1:  // retype a field to a random number
      mutated.object[slot].second =
          JsonValue::make_number(prop.rng.uniform(-1e9, 1e9));
      break;
    case 2:  // retype a field to a random string
      mutated.object[slot].second = JsonValue::make_string(
          std::string(1 + prop.rng.uniform_index(8), 'x'));
      break;
    default:  // swap two fields' values (types stay plausible)
      std::swap(mutated.object[slot].second,
                mutated.object[prop.rng.uniform_index(mutated.object.size())]
                    .second);
      break;
  }
  try {
    const resume::SearchCheckpoint loaded =
        resume::SearchCheckpoint::from_json(mutated);
    (void)loaded;  // coincidentally-valid mutation (e.g. swap of equal values)
  } catch (const SerializationError&) {
    // The expected outcome for essentially every mutation.
  }
}

}  // namespace
}  // namespace flaml
