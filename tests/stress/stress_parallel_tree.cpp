// Nested-parallelism stress for intra-trial tree training (docs/TESTING.md):
// trial-level workers (an outer ThreadPool, as the AutoML controller uses)
// each train models whose growers fan out on the process-wide shared_pool()
// with n_threads > 1. Every model must still come out byte-identical to its
// serial reference — under TSan this doubles as a race hunt over the
// histogram build, split finding, bagging and score-update paths.
#include <gtest/gtest.h>

#include <future>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "automl/automl.h"
#include "boosting/gbdt.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "forest/forest.h"

namespace flaml {
namespace {

Dataset job_dataset(std::uint64_t seed, bool classification) {
  SyntheticSpec spec;
  spec.task = classification ? Task::BinaryClassification : Task::Regression;
  spec.n_rows = 600;
  spec.n_features = 6;
  spec.categorical_fraction = 0.2;
  spec.missing_fraction = 0.1;
  spec.seed = seed;
  return classification ? make_classification(spec) : make_regression(spec);
}

std::string gbdt_string(const Dataset& data, int n_threads) {
  GBDTParams params;
  params.n_trees = 6;
  params.max_leaves = 16;
  params.subsample = 0.8;
  params.colsample_bytree = 0.8;
  params.seed = 0x9d5ULL;
  params.n_threads = n_threads;
  return train_gbdt(DataView(data), nullptr, params).to_string();
}

std::string forest_string(const Dataset& data, int n_threads) {
  ForestParams params;
  params.n_trees = 8;
  params.max_features = 0.7;
  params.seed = 0x8a1ULL;
  params.n_threads = n_threads;
  std::ostringstream os;
  train_forest(DataView(data), params).save(os);
  return os.str();
}

TEST(StressParallelTree, NestedGbdtTrainingMatchesSerial) {
  // Serial references first, on this thread, with every knob at 1.
  constexpr int kJobs = 8;
  std::vector<Dataset> datasets;
  std::vector<std::string> serial;
  for (int j = 0; j < kJobs; ++j) {
    datasets.push_back(job_dataset(1000 + static_cast<std::uint64_t>(j), j % 2 == 0));
    serial.push_back(gbdt_string(datasets.back(), 1));
  }
  // Now the same fits, four trials at a time, each fanning out on the
  // shared pool (outer pool workers are NOT shared-pool workers, so the
  // inner parallel_for really submits).
  ThreadPool outer(4);
  std::vector<std::future<std::string>> results;
  for (int j = 0; j < kJobs; ++j) {
    results.push_back(
        outer.submit([&datasets, j] { return gbdt_string(datasets[j], 4); }));
  }
  for (int j = 0; j < kJobs; ++j) {
    EXPECT_EQ(results[static_cast<std::size_t>(j)].get(), serial[static_cast<std::size_t>(j)])
        << "job " << j;
  }
}

TEST(StressParallelTree, NestedForestTrainingMatchesSerial) {
  // Forests parallelize across trees AND inside each grower; nested under
  // an outer trial pool all of it must degrade gracefully and stay
  // bit-identical.
  constexpr int kJobs = 6;
  std::vector<Dataset> datasets;
  std::vector<std::string> serial;
  for (int j = 0; j < kJobs; ++j) {
    datasets.push_back(job_dataset(2000 + static_cast<std::uint64_t>(j), j % 2 == 0));
    serial.push_back(forest_string(datasets.back(), 1));
  }
  ThreadPool outer(3);
  std::vector<std::future<std::string>> results;
  for (int j = 0; j < kJobs; ++j) {
    results.push_back(
        outer.submit([&datasets, j] { return forest_string(datasets[j], 4); }));
  }
  for (int j = 0; j < kJobs; ++j) {
    EXPECT_EQ(results[static_cast<std::size_t>(j)].get(), serial[static_cast<std::size_t>(j)])
        << "job " << j;
  }
}

TEST(StressParallelTree, SharedPoolPredictionUnderConcurrency) {
  // Many threads predicting through the same model on the shared pool at
  // once: read-only model state, disjoint output shards.
  Dataset data = job_dataset(31, /*classification=*/true);
  DataView view(data);
  ForestParams params;
  params.n_trees = 10;
  params.seed = 7;
  params.n_threads = 4;
  ForestModel model = train_forest(view, params);
  const Predictions reference = model.predict(view, 1);
  ThreadPool outer(4);
  std::vector<std::future<Predictions>> results;
  for (int j = 0; j < 8; ++j) {
    results.push_back(outer.submit([&] { return model.predict(view, 4); }));
  }
  for (auto& f : results) {
    Predictions p = f.get();
    ASSERT_EQ(p.values.size(), reference.values.size());
    for (std::size_t i = 0; i < p.values.size(); ++i) {
      EXPECT_EQ(p.values[i], reference.values[i]);
    }
  }
}

TEST(StressParallelTree, AutoMLHistoryIdenticalAcrossThreadCounts) {
  // Full-stack composition: n_parallel trials in flight, each trial's model
  // fit fanning out over n_threads. The search history must be a pure
  // function of the seed — identical records whether fits are serial or
  // parallel inside.
  Dataset data = job_dataset(77, /*classification=*/true);
  auto run = [&](int n_threads) {
    AutoMLOptions options;
    options.time_budget_seconds = 1e6;  // iteration cap terminates, not time
    options.max_iterations = 8;
    options.initial_sample_size = 64;
    options.resampling = ResamplingPolicy::ForceHoldout;
    options.learner_choice = LearnerChoice::RoundRobin;
    options.estimator_list = {"lgbm", "rf"};
    options.n_parallel = 2;
    options.n_threads = n_threads;
    options.retrain_full = false;
    options.seed = 1234;
    // Deterministic trial cost: keeps the sample-size schedule and ECI
    // bookkeeping independent of real timing.
    options.trial_cost_model = [](const Learner&, const Config&,
                                  std::size_t sample_size) {
      return 0.05 + 0.001 * static_cast<double>(sample_size);
    };
    AutoML automl;
    automl.fit(data, options);
    return automl.history();
  };
  const TrialHistory serial = run(1);
  const TrialHistory parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].iteration, parallel[i].iteration) << "record " << i;
    EXPECT_EQ(serial[i].learner, parallel[i].learner) << "record " << i;
    EXPECT_EQ(serial[i].config, parallel[i].config) << "record " << i;
    EXPECT_EQ(serial[i].sample_size, parallel[i].sample_size) << "record " << i;
    // Models are bit-identical, so errors must match exactly, not nearly.
    EXPECT_EQ(serial[i].error, parallel[i].error) << "record " << i;
    EXPECT_EQ(serial[i].best_error_so_far, parallel[i].best_error_so_far)
        << "record " << i;
  }
}

}  // namespace
}  // namespace flaml
