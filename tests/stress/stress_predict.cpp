// predict_many hammer for the compiled serving engine (docs/TESTING.md):
// 1..8-thread batched prediction must be byte-identical to serial AND to
// the interpreted walker, including when many client threads serve the
// same compiled model concurrently over the process-wide shared_pool().
// Runs under the `stress` ctest label, so the sanitizer CI's TSan pass
// covers the row-sharded hot path (standing ROADMAP rule for thread-pool
// hot paths).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "boosting/gbdt.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "forest/forest.h"
#include "serve/compiled_model.h"

namespace flaml {
namespace {

Dataset stress_dataset(Task task, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.task = task;
  spec.n_rows = 1500;
  spec.n_features = 10;
  spec.n_classes = task == Task::MultiClassification ? 4 : 2;
  spec.categorical_fraction = 0.2;
  spec.missing_fraction = 0.1;
  spec.seed = seed;
  return make_synthetic(spec);
}

bool bits_equal(const Predictions& a, const Predictions& b) {
  if (a.values.size() != b.values.size()) return false;
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a.values[i]) !=
        std::bit_cast<std::uint64_t>(b.values[i])) {
      return false;
    }
  }
  return true;
}

TEST(StressPredict, EveryThreadCountMatchesSerialAndInterpreted) {
  const Dataset data = stress_dataset(Task::BinaryClassification, 0xabc1);
  GBDTParams params;
  params.n_trees = 40;
  params.max_leaves = 24;
  params.seed = 3;
  const GBDTModel model = train_gbdt(DataView(data), nullptr, params);
  const serve::CompiledModel compiled = serve::compile(model);

  const DataView view(data);
  const Predictions interpreted = model.predict(view, 1);
  const Predictions serial = compiled.predict_many(view, 1);
  ASSERT_TRUE(bits_equal(interpreted, serial));
  for (int threads = 2; threads <= 8; ++threads) {
    EXPECT_TRUE(bits_equal(serial, compiled.predict_many(view, threads)))
        << threads << " threads diverged from serial";
  }
}

TEST(StressPredict, ConcurrentClientsShareOneCompiledModel) {
  const Dataset data = stress_dataset(Task::MultiClassification, 0xabc2);
  ForestParams params;
  params.n_trees = 24;
  params.max_leaves = 32;
  params.seed = 4;
  const ForestModel model = train_forest(DataView(data), params);
  const serve::CompiledModel compiled = serve::compile(model);

  const DataView view(data);
  const Predictions reference = compiled.predict_many(view, 1);
  ASSERT_TRUE(bits_equal(model.predict(view, 1), reference));

  // 8 client threads × 5 rounds, each round a different n_threads fanning
  // out on the shared pool — all results must equal the serial reference.
  constexpr int kClients = 8;
  constexpr int kRounds = 5;
  std::vector<int> failures(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        const int threads = 1 + (c + round) % 8;
        if (!bits_equal(reference, compiled.predict_many(view, threads))) {
          ++failures[c];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c << " saw diverging predictions";
  }
}

TEST(StressPredict, ConcurrentCompileAndSerializeAreByteStable) {
  const Dataset data = stress_dataset(Task::Regression, 0xabc3);
  GBDTParams params;
  params.n_trees = 12;
  params.max_leaves = 16;
  params.seed = 5;
  const GBDTModel model = train_gbdt(DataView(data), nullptr, params);
  std::ostringstream saved;
  model.save(saved);
  const std::string text = saved.str();
  const std::string reference = serve::compile(model).serialize();

  constexpr int kClients = 6;
  std::vector<int> failures(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 3; ++round) {
        std::istringstream in(text);
        if (serve::compile_saved(in).serialize() != reference) ++failures[c];
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c << " compiled different bytes";
  }
}

}  // namespace
}  // namespace flaml
