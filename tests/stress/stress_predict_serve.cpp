// TSan stress for the prediction daemon (src/serve/predict_daemon.h):
// concurrent clients hammer predict() while a swapper thread hot-swaps
// between two model artifacts the whole time. The generation-coherence
// contract under fire: every reply must be computed WHOLLY by exactly one
// model generation — bit-identical to that generation's direct
// predict_many, never a mix, never a drop, never a crash. A second test
// drives concurrent drain()/stats() and shutdown-under-traffic, the
// teardown races a real daemon would hit.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "data/generators.h"
#include "learners/registry.h"
#include "serve/predict_daemon.h"

namespace flaml {
namespace {

using serve::CompiledModel;
using serve::PredictDaemon;
using serve::PredictDaemonOptions;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

CompiledModel train_compiled(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.task = Task::Regression;
  spec.n_rows = 150;
  spec.n_features = 5;
  spec.seed = seed;
  const Dataset data = make_synthetic(spec);
  for (const LearnerPtr& learner : builtin_learners()) {
    if (learner->name() != "lgbm") continue;
    Config config =
        learner->space(spec.task, data.n_rows()).initial_config();
    if (config.count("tree_num")) config["tree_num"] = 5;
    TrainContext ctx;
    ctx.train = DataView(data);
    ctx.seed = seed;
    ctx.n_threads = 1;
    std::unique_ptr<Model> model = learner->train(ctx, config);
    std::ostringstream saved;
    model->save(saved);
    std::istringstream in(saved.str());
    return serve::compile_saved(in);
  }
  throw InvalidArgument("lgbm learner missing");
}

std::vector<std::vector<float>> make_rows(std::size_t n_rows, std::size_t width,
                                          std::uint64_t seed) {
  std::vector<std::vector<float>> rows(n_rows, std::vector<float>(width));
  std::uint64_t state = seed;
  for (auto& row : rows) {
    for (float& v : row) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      v = static_cast<float>((state >> 33) % 1000) / 100.0f - 5.0f;
    }
  }
  return rows;
}

Predictions direct_predict(const CompiledModel& model,
                           const std::vector<std::vector<float>>& rows) {
  const std::size_t width = rows[0].size();
  Dataset data(Task::Regression, std::vector<ColumnInfo>(width, ColumnInfo{}));
  for (std::size_t c = 0; c < width; ++c) {
    std::vector<float> column(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) column[r] = rows[r][c];
    data.set_column(c, std::move(column));
  }
  data.set_labels(std::vector<double>(rows.size(), 0.0));
  return model.predict_many(DataView(data), 1);
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) != std::bit_cast<std::uint64_t>(b[i]))
      return false;
  }
  return true;
}

TEST(StressPredictServe, SwapUnderTrafficKeepsEveryReplyGenerationCoherent) {
  const CompiledModel model_a = train_compiled(11);
  const CompiledModel model_b = train_compiled(22);
  const std::string path_a = tmp_path("stress_swap_a.bin");
  const std::string path_b = tmp_path("stress_swap_b.bin");
  model_a.save_file(path_a);
  model_b.save_file(path_b);

  PredictDaemonOptions options;
  options.max_batch_rows = 32;
  options.max_batch_delay_ms = 0.5;
  options.n_threads = 2;
  PredictDaemon daemon(options);
  daemon.load(path_a);  // generation 1 = A; every swap alternates B, A, ...

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 40;
  constexpr int kSwaps = 25;

  // Fixed request rows per client, references computed against BOTH models
  // up front — a reply claiming generation g must match ref[g % 2] exactly.
  std::vector<std::vector<std::vector<float>>> rows(kClients);
  std::vector<Predictions> ref_a(kClients), ref_b(kClients);
  for (int c = 0; c < kClients; ++c) {
    rows[c] = make_rows(1 + c % 4, model_a.n_features(), 100 + c);
    ref_a[c] = direct_predict(model_a, rows[c]);
    ref_b[c] = direct_predict(model_b, rows[c]);
    // The stress is vacuous if both models agree on these rows.
    ASSERT_FALSE(bits_equal(ref_a[c].values, ref_b[c].values)) << c;
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const PredictDaemon::Reply reply = daemon.predict(rows[c]);
        // Odd generations are A (load + even swap counts), even are B.
        const Predictions& expected =
            reply.generation % 2 == 1 ? ref_a[c] : ref_b[c];
        if (!bits_equal(reply.pred.values, expected.values)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::thread swapper([&] {
    for (int s = 0; s < kSwaps; ++s) {
      daemon.swap(s % 2 == 0 ? path_b : path_a);
      std::this_thread::yield();
    }
  });

  for (auto& t : clients) t.join();
  swapper.join();
  EXPECT_EQ(failures.load(), 0);

  daemon.drain();
  const JsonValue stats = daemon.stats();
  // No request was dropped: every send got a (correct) reply.
  EXPECT_EQ(stats.find("counters")->find("predict.requests")->number,
            static_cast<double>(kClients * kRequestsPerClient));
  EXPECT_EQ(stats.find("generation")->number,
            static_cast<double>(1 + kSwaps));
}

TEST(StressPredictServe, DrainStatsAndShutdownUnderTraffic) {
  const CompiledModel model = train_compiled(33);
  const std::string path = tmp_path("stress_teardown.bin");
  model.save_file(path);

  PredictDaemonOptions options;
  options.max_batch_rows = 16;
  options.max_batch_delay_ms = 0.2;
  auto daemon = std::make_unique<PredictDaemon>(options);
  daemon->load(path);

  std::atomic<bool> stop{false};
  std::atomic<int> served{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const auto rows = make_rows(3, model.n_features(), 7 + c);
      while (!stop.load()) {
        try {
          daemon->predict(rows);
          served.fetch_add(1);
        } catch (const InvalidArgument&) {
          // "shutting down" is the only acceptable reject here.
          rejected.fetch_add(1);
          return;
        }
      }
    });
  }
  std::thread prober([&] {
    while (!stop.load()) {
      daemon->drain();
      (void)daemon->stats();
      std::this_thread::yield();
    }
  });

  // Let traffic flow, then tear the daemon down while clients are mid-loop.
  while (served.load() < 50) std::this_thread::yield();
  daemon->shutdown();
  stop.store(true);
  for (auto& t : clients) t.join();
  prober.join();
  EXPECT_GE(served.load(), 50);
  daemon.reset();  // double-shutdown via destructor must be safe
}

}  // namespace
}  // namespace flaml
