// Parallel-search determinism stress (the tentpole test of the sanitizer
// PR): with a fixed seed, salted per-learner trial seeds and a deterministic
// trial cost model, a parallel AutoML search must be reproducible — and
// under round-robin learner choice, its trial history must be record-for-
// record IDENTICAL to the serial run, for any n_parallel. Run under TSan to
// catch the races that would silently break these properties.
#include "automl/automl.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "data/generators.h"
#include "support/prop.h"
#include "support/stub_learner.h"

namespace flaml {
namespace {

Dataset tiny_binary(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 100;
  spec.n_features = 5;
  spec.seed = seed;
  return make_classification(spec);
}

// Deterministic cost: a pure function of (learner, config, sample size), so
// the ECI bookkeeping — and through it the whole search — is seed-pure.
TrialCostModel stub_cost_model() {
  return [](const Learner& learner, const Config& config, std::size_t sample_size) {
    return learner.initial_cost_multiplier() *
           (0.05 + 0.001 * static_cast<double>(sample_size) +
            0.002 * config.at("units"));
  };
}

void add_stub_lineup(AutoML& automl) {
  automl.add_learner(std::make_shared<testing::StubLearner>("stub_fast", 1.0));
  automl.add_learner(std::make_shared<testing::StubLearner>("stub_mid", 1.9));
  automl.add_learner(std::make_shared<testing::StubLearner>("stub_slow", 15.0));
}

AutoMLOptions stub_options(std::uint64_t seed, std::size_t max_iterations) {
  AutoMLOptions options;
  options.time_budget_seconds = 1e6;  // iteration budget terminates, not time
  options.max_iterations = max_iterations;
  options.initial_sample_size = 16;
  options.resampling = ResamplingPolicy::ForceHoldout;
  options.estimator_list = {"stub_fast", "stub_mid", "stub_slow"};
  options.trial_cost_model = stub_cost_model();
  options.seed = seed;
  return options;
}

TrialHistory run_search(const Dataset& data, const AutoMLOptions& options) {
  AutoML automl;
  add_stub_lineup(automl);
  automl.fit(data, options);
  return automl.history();
}

void expect_records_equal(const TrialRecord& a, const TrialRecord& b,
                          const std::string& what) {
  EXPECT_EQ(a.iteration, b.iteration) << what;
  EXPECT_EQ(a.learner, b.learner) << what;
  EXPECT_EQ(a.config, b.config) << what;
  EXPECT_EQ(a.sample_size, b.sample_size) << what;
  EXPECT_DOUBLE_EQ(a.error, b.error) << what;
  EXPECT_DOUBLE_EQ(a.cost, b.cost) << what;
  EXPECT_DOUBLE_EQ(a.best_error_so_far, b.best_error_so_far) << what;
  // finished_at is wall-clock and intentionally excluded.
}

void expect_histories_equal(const TrialHistory& a, const TrialHistory& b,
                            const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_records_equal(a[i], b[i], what + " record " + std::to_string(i));
  }
}

std::map<std::string, std::vector<TrialRecord>> by_learner(const TrialHistory& h) {
  std::map<std::string, std::vector<TrialRecord>> out;
  for (const auto& r : h) out[r.learner].push_back(r);
  return out;
}

// --- The ≥20-seeded-iteration determinism sweep (acceptance criterion) ---
// Round-robin learner choice removes the only policy-level dependence on
// global state, so the parallel launch order provably equals the serial
// order: the histories must match exactly, for every n_parallel.
FLAML_PROP(ParallelSearchStress, RoundRobinParallelMatchesSerialExactly, 20) {
  Dataset data = tiny_binary(prop.seed | 1);
  AutoMLOptions options = stub_options(prop.rng.next(), /*max_iterations=*/12);
  options.learner_choice = LearnerChoice::RoundRobin;

  AutoML serial;
  add_stub_lineup(serial);
  serial.fit(data, options);

  for (int n_parallel : {2, 4, 8}) {
    AutoMLOptions par_options = options;
    par_options.n_parallel = n_parallel;
    AutoML parallel;
    add_stub_lineup(parallel);
    parallel.fit(data, par_options);

    const std::string what = "n_parallel=" + std::to_string(n_parallel);
    expect_histories_equal(serial.history(), parallel.history(), what);
    // Final best-loss no worse than (here: equal to) the serial run.
    EXPECT_DOUBLE_EQ(parallel.best_error(), serial.best_error()) << what;
    EXPECT_EQ(parallel.best_learner(), serial.best_learner()) << what;
    EXPECT_EQ(parallel.best_config(), serial.best_config()) << what;
  }
}

// ECI-proportional sampling consumes shared RNG draws, so the parallel
// learner sequence legitimately differs from serial — but the run must
// still be a pure function of the seed: two identical invocations may not
// diverge by a single bit.
FLAML_PROP(ParallelSearchStress, EciSamplingParallelIsReproducible, 10) {
  Dataset data = tiny_binary(prop.seed | 1);
  AutoMLOptions options = stub_options(prop.rng.next(), /*max_iterations=*/12);
  options.n_parallel = 4;

  TrialHistory first = run_search(data, options);
  TrialHistory second = run_search(data, options);
  ASSERT_FALSE(first.empty());
  expect_histories_equal(first, second, "repeat run");
}

// Valid-interleaving property: per-learner trial sequences are independent
// of the learner-choice policy and of n_parallel (the salted seeds make
// them a function of the per-learner trial index only). So any parallel
// history must decompose into per-learner prefixes of a long serial
// round-robin reference — i.e. it is a valid interleaving of serial
// per-learner searches.
FLAML_PROP(ParallelSearchStress, ParallelHistoryIsValidInterleavingOfSerial, 10) {
  Dataset data = tiny_binary(prop.seed | 1);
  const std::uint64_t seed = prop.rng.next();
  const std::size_t n_iter = 10;

  AutoMLOptions ref_options = stub_options(seed, /*max_iterations=*/3 * n_iter);
  ref_options.learner_choice = LearnerChoice::RoundRobin;
  auto reference = by_learner(run_search(data, ref_options));

  for (int n_parallel : {2, 4, 8}) {
    AutoMLOptions options = stub_options(seed, n_iter);
    options.n_parallel = n_parallel;  // EciSampling (the default policy)
    TrialHistory history = run_search(data, options);
    ASSERT_EQ(history.size(), n_iter);

    // Global bookkeeping is consistent regardless of interleaving.
    double running_best = std::numeric_limits<double>::infinity();
    for (const auto& r : history) {
      running_best = std::min(running_best, r.error);
      EXPECT_DOUBLE_EQ(r.best_error_so_far, running_best);
    }

    for (const auto& [learner, records] : by_learner(history)) {
      const auto it = reference.find(learner);
      ASSERT_NE(it, reference.end()) << learner;
      ASSERT_LE(records.size(), it->second.size()) << learner;
      for (std::size_t i = 0; i < records.size(); ++i) {
        const auto& par = records[i];
        const auto& ref = it->second[i];
        const std::string what =
            learner + " trial " + std::to_string(i) + " n_parallel=" +
            std::to_string(n_parallel);
        EXPECT_EQ(par.config, ref.config) << what;
        EXPECT_EQ(par.sample_size, ref.sample_size) << what;
        EXPECT_DOUBLE_EQ(par.error, ref.error) << what;
        EXPECT_DOUBLE_EQ(par.cost, ref.cost) << what;
      }
    }
  }
}

// Real learners end-to-end: the salted trial seeds make actual GBDT/forest
// training deterministic too. Fewer cases — real training is the expensive
// part under TSan.
FLAML_PROP(ParallelSearchStress, RealLearnersRoundRobinDeterminism, 3) {
  Dataset data = tiny_binary(prop.seed | 1);
  AutoMLOptions options;
  options.time_budget_seconds = 1e6;
  options.max_iterations = 6;
  options.initial_sample_size = 32;
  options.resampling = ResamplingPolicy::ForceHoldout;
  options.estimator_list = {"lgbm", "rf"};
  options.learner_choice = LearnerChoice::RoundRobin;
  options.trial_cost_model = [](const Learner& learner, const Config&,
                                std::size_t sample_size) {
    return learner.initial_cost_multiplier() *
           (0.1 + 0.001 * static_cast<double>(sample_size));
  };
  options.seed = prop.rng.next();

  AutoML serial;
  serial.fit(data, options);

  AutoMLOptions par_options = options;
  par_options.n_parallel = 2;
  AutoML parallel;
  parallel.fit(data, par_options);

  expect_histories_equal(serial.history(), parallel.history(), "real learners");
  EXPECT_DOUBLE_EQ(parallel.best_error(), serial.best_error());
}

}  // namespace
}  // namespace flaml
