// Racing determinism stress (run under TSan via the `stress` label): with
// real tree learners streaming their learning curves, a racing-on search is
// reproducible run-to-run at EVERY worker count — envelope snapshots are
// taken at launch on the controller thread, so the kill decisions are a pure
// function of the options, never of scheduling. And the kill-anywhere
// contract extends to racing: a racing-on search killed at any trial
// boundary and resumed from its checkpoint replays in-flight trials against
// their ORIGINAL launch-time envelopes and reproduces the uninterrupted
// history byte for byte.
#include "automl/racing.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "automl/automl.h"
#include "support/history_digest.h"
#include "support/prop.h"
#include "support/resume_test_util.h"

namespace flaml {
namespace {

using testing::arm_kill;
using testing::expect_histories_identical;
using testing::expect_resumed_equals_reference;
using testing::KillSignal;
using testing::PropCase;
using testing::resume_tiny_binary;

// Real-learner racing search: iteration budget terminates, modeled costs,
// holdout, tight slack — a pure function of (seed, n_parallel).
AutoMLOptions racing_real_options(std::uint64_t seed,
                                  std::size_t max_iterations) {
  AutoMLOptions options;
  options.time_budget_seconds = 1e6;
  options.max_iterations = max_iterations;
  options.initial_sample_size = 32;
  options.resampling = ResamplingPolicy::ForceHoldout;
  options.estimator_list = {"lgbm", "rf"};
  options.trial_cost_model = [](const Learner& learner, const Config& config,
                                std::size_t sample_size) {
    double config_sum = 0.0;
    for (const auto& [name, value] : config) config_sum += std::abs(value);
    return learner.initial_cost_multiplier() *
               (0.05 + 0.001 * static_cast<double>(sample_size)) +
           1e-6 * config_sum;
  };
  options.seed = seed;
  options.racing.enabled = true;
  options.racing.grace_iterations = 1;
  options.racing.slack_rel = 0.0;
  options.racing.slack_abs = 0.0;
  return options;
}

std::string unique_path(const PropCase& prop, const std::string& tag) {
  return ::testing::TempDir() + "racing_" + tag + "_" +
         std::to_string(prop.seed) + ".ckpt";
}

// --- Worker-count determinism: racing-on histories legitimately differ
// ACROSS worker counts (a parallel launch sees fewer committed envelopes
// than the serial one), but at any FIXED count they are exact replays. ---
FLAML_PROP(RacingStress, RacingOnSearchIsDeterministicAtEveryWorkerCount, 2) {
  const Dataset data = resume_tiny_binary(prop.seed | 1);
  const std::uint64_t seed = prop.rng.next();
  for (int n_parallel : {1, 2, 4, 8}) {
    AutoMLOptions options = racing_real_options(seed, 12);
    options.n_parallel = n_parallel;
    AutoML first;
    first.fit(data, options);
    ASSERT_EQ(first.history().size(), 12u);
    AutoML second;
    second.fit(data, options);
    expect_histories_identical(
        second.history(), first.history(),
        "racing-on repeat at n_parallel " + std::to_string(n_parallel) +
            " seed " + std::to_string(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// --- Kill-anywhere replay with racing on (stress_resume.cpp pattern, but a
// real-learner lineup: the stub learners never stream a curve). ---

void run_killed_fit_real(AutoML& automl, const Dataset& data,
                         AutoMLOptions options, const std::string& path,
                         std::size_t kill_at) {
  arm_kill(options, path, kill_at);
  bool killed = false;
  try {
    automl.fit(data, options);
  } catch (const KillSignal& kill) {
    killed = true;
    EXPECT_EQ(kill.at_iteration, kill_at);
  }
  ASSERT_TRUE(killed) << "fit ran to completion instead of dying at trial "
                      << kill_at;
}

void sweep_racing_boundaries(const PropCase& prop, const AutoMLOptions& options,
                             const std::string& tag) {
  const Dataset data = resume_tiny_binary(prop.seed | 1);
  AutoML reference;
  reference.fit(data, options);
  const std::size_t n = reference.history().size();
  ASSERT_EQ(n, options.max_iterations);

  const std::string path = unique_path(prop, tag);
  for (std::size_t k = 1; k <= n; ++k) {
    const std::string what = tag + " kill at " + std::to_string(k) + "/" +
                             std::to_string(n) + " seed " +
                             std::to_string(prop.seed);
    AutoML killed;
    run_killed_fit_real(killed, data, options, path, k);
    if (::testing::Test::HasFatalFailure()) return;
    AutoML resumed;
    resumed.resume_from_file(data, options, path);
    expect_resumed_equals_reference(resumed, reference, what);
    if (::testing::Test::HasFatalFailure()) return;
  }
  std::remove(path.c_str());
}

FLAML_PROP(RacingStress, SerialKillAnywhereReplayMatchesUninterrupted, 2) {
  sweep_racing_boundaries(prop, racing_real_options(prop.rng.next(), 10),
                          "serial");
}

FLAML_PROP(RacingStress, ParallelKillAnywhereReplayMatchesUninterrupted, 1) {
  for (int n_parallel : {2, 4}) {
    AutoMLOptions options = racing_real_options(prop.rng.next(), 10);
    options.n_parallel = n_parallel;
    sweep_racing_boundaries(prop, options, "par" + std::to_string(n_parallel));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace flaml
