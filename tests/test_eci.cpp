#include "automl/eci.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "learners/registry.h"
#include "support/prop.h"

namespace flaml {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Eci, ColdStartUsesInitialEci1) {
  EciState state;
  state.initial_eci1 = 3.5;
  EXPECT_DOUBLE_EQ(state.eci1(), 3.5);
  EXPECT_FALSE(state.tried());
}

TEST(Eci, ColdStartWithoutCalibrationRejected) {
  EciState state;
  EXPECT_THROW(state.eci1(), InternalError);
}

TEST(Eci, FirstTrialSetsBookkeeping) {
  EciState state;
  state.record(2.0, 0.4);
  EXPECT_TRUE(state.tried());
  EXPECT_DOUBLE_EQ(state.k0, 2.0);
  EXPECT_DOUBLE_EQ(state.k1, 2.0);  // best update at total 2.0
  EXPECT_DOUBLE_EQ(state.k2, 0.0);
  EXPECT_DOUBLE_EQ(state.best_error, 0.4);
  // ECI1 = max(K0-K1, K1-K2) = max(0, 2) = 2.
  EXPECT_DOUBLE_EQ(state.eci1(), 2.0);
}

TEST(Eci, Eci1TracksRecentImprovementCosts) {
  EciState state;
  state.record(1.0, 0.5);   // best @ K0 = 1
  state.record(1.0, 0.6);   // no improvement, K0 = 2
  state.record(1.0, 0.4);   // best @ K0 = 3: K2 = 1, K1 = 3
  EXPECT_DOUBLE_EQ(state.k1, 3.0);
  EXPECT_DOUBLE_EQ(state.k2, 1.0);
  // ECI1 = max(K0-K1, K1-K2) = max(0, 2) = 2.
  EXPECT_DOUBLE_EQ(state.eci1(), 2.0);
  state.record(1.0, 0.45);  // no improvement, K0 = 4
  // ECI1 = max(4-3, 3-1) = 2.
  EXPECT_DOUBLE_EQ(state.eci1(), 2.0);
  state.record(1.5, 0.48);  // K0 = 5.5 -> max(2.5, 2) = 2.5
  EXPECT_DOUBLE_EQ(state.eci1(), 2.5);
}

TEST(Eci, FailedTrialsRaiseEci1) {
  // Self-correction: consecutive failures grow K0 - K1.
  EciState state;
  state.record(1.0, 0.5);
  double before = state.eci1();
  for (int i = 0; i < 5; ++i) state.record(1.0, 0.9);
  EXPECT_GT(state.eci1(), before);
}

TEST(Eci, Eci2IsTwiceLastCost) {
  EciState state;
  state.record(3.0, 0.5);
  EXPECT_DOUBLE_EQ(state.eci2(2.0, true), 6.0);
  state.record(5.0, 0.6);
  EXPECT_DOUBLE_EQ(state.eci2(2.0, true), 10.0);
}

TEST(Eci, Eci2IgnoresKilledTrialCost) {
  // §4.2: ECI2 = c·κ with κ the cost of the learner's current config. A
  // killed trial's charged cost is how long the aborted fit ran before the
  // kill, not what a finished fit costs — it must not become κ.
  EciState state;
  state.record(3.0, 0.5);                 // Ok: κ = 3
  state.record(0.2, kInf, /*ok=*/false);  // killed early, charged 0.2
  EXPECT_DOUBLE_EQ(state.eci2(2.0, true), 6.0)
      << "killed trial's charge must not shrink ECI2";
  state.record(4.0, 0.6);  // next Ok trial takes over as κ
  EXPECT_DOUBLE_EQ(state.eci2(2.0, true), 8.0);
}

TEST(Eci, Eci2FallsBackToChargedCostWhenNeverOk) {
  // A learner whose every trial was killed/failed still needs a finite,
  // positive ECI2 so the 1/ECI sampling weights stay well defined; the
  // charged cost of the most recent attempt is the only estimate available.
  EciState state;
  state.record(0.5, kInf, /*ok=*/false);
  state.record(0.7, kInf, /*ok=*/false);
  EXPECT_DOUBLE_EQ(state.eci2(2.0, true), 1.4);
  EXPECT_TRUE(std::isfinite(state.eci2(2.0, true)));
  // Failed trials still count toward the totals and raise ECI1.
  EXPECT_DOUBLE_EQ(state.k0, 1.2);
  // The combined ECI is usable too (best_error still infinite -> base rule).
  EXPECT_GT(state.eci(0.3, 2.0, true), 0.0);
}

TEST(Eci, LastOkCostRoundTripsThroughJson) {
  EciState state;
  state.record(3.0, 0.5);
  state.record(0.2, kInf, /*ok=*/false);
  EciState restored = EciState::from_json(state.to_json());
  EXPECT_DOUBLE_EQ(restored.last_ok_cost, 3.0);
  EXPECT_DOUBLE_EQ(restored.last_trial_cost, 0.2);
  EXPECT_DOUBLE_EQ(restored.eci2(2.0, true), state.eci2(2.0, true));
}

TEST(Eci, FromJsonRejectsOkCostAboveTotal) {
  EciState state;
  state.record(1.0, 0.5);
  JsonValue json = state.to_json();
  json.set("last_ok_cost", JsonValue::make_number(2.5));  // > k0
  EXPECT_THROW(EciState::from_json(json), SerializationError);
}

TEST(Eci, Eci2InfiniteAtFullSampleSize) {
  EciState state;
  state.record(3.0, 0.5);
  EXPECT_EQ(state.eci2(2.0, false), kInf);
}

TEST(Eci, Eci2InfiniteBeforeFirstTrial) {
  EciState state;
  state.initial_eci1 = 1.0;
  EXPECT_EQ(state.eci2(2.0, true), kInf);
}

TEST(Eci, GlobalBestLearnerUsesMinRule) {
  // Case (a): the learner holds the global best -> ECI = min(ECI1, ECI2).
  EciState state;
  state.record(1.0, 0.3);
  double eci = state.eci(/*global_best=*/0.3, 2.0, true);
  EXPECT_DOUBLE_EQ(eci, std::min(state.eci1(), state.eci2(2.0, true)));
}

TEST(Eci, LaggingLearnerPaysGapCost) {
  // Case (b): δ = prev_best - best, τ = K0 - K2; gap term = Δ τ / δ.
  EciState state;
  state.record(1.0, 0.5);   // K1 = 1
  state.record(1.0, 0.4);   // improvement: K2 = 1, K1 = 2, δ = 0.1
  // Global best is 0.2: Δ = 0.4 - 0.2 = 0.2; τ = K0 - K2 = 1.
  // gap cost = 0.2 * 1 / 0.1 = 2. min(ECI1, ECI2) = min(1, 2) = 1.
  double eci = state.eci(0.2, 2.0, true);
  EXPECT_DOUBLE_EQ(eci, 2.0);
}

TEST(Eci, SingleBestUsesErrorAsDelta) {
  // Special case δ = 0 (only one best ever): δ = ε_l, τ = total cost.
  EciState state;
  state.record(2.0, 0.5);
  // Δ = 0.5 - 0.3 = 0.2, δ = 0.5, τ = 2 -> gap = 0.2*2/0.5 = 0.8.
  // min(ECI1, ECI2) = min(2, 4) = 2 -> ECI = max(0.8, 2) = 2.
  EXPECT_DOUBLE_EQ(state.eci(0.3, 2.0, true), 2.0);
}

TEST(Eci, GapCostDominatesWhenFarBehind) {
  EciState state;
  state.record(1.0, 0.9);
  state.record(1.0, 0.85);  // δ = 0.05, τ = 1
  // Δ = 0.85 - 0.05 = 0.8 -> gap = 0.8 / 0.05 = 16 > base.
  double eci = state.eci(0.05, 2.0, true);
  EXPECT_NEAR(eci, 16.0, 1e-9);
}

TEST(Eci, RecordRejectsNonPositiveCost) {
  EciState state;
  EXPECT_THROW(state.record(0.0, 0.5), InternalError);
}

TEST(Eci, HarmonicMeanPropertyOfInverseSampling) {
  // The expected ECI under probability ∝ 1/ECI equals the harmonic mean
  // (paper §4.2 Step 1) — verified numerically here as documentation.
  std::vector<double> ecis{1.0, 2.0, 4.0};
  double inv_sum = 0.0;
  for (double e : ecis) inv_sum += 1.0 / e;
  double expectation = 0.0;
  for (double e : ecis) expectation += e * (1.0 / e) / inv_sum;
  double harmonic = 3.0 / inv_sum;
  EXPECT_NEAR(expectation, harmonic, 1e-12);
  EXPECT_LT(harmonic, (1.0 + 2.0 + 4.0) / 3.0);  // below the arithmetic mean
}

// ---------------------------------------------------------------------------
// Seeded property tests (tests/support/prop.h).

// ECI(l) stays strictly positive — and the cost totals stay ordered — after
// ANY sequence of recorded trials. A zero or negative ECI would break the
// ∝ 1/ECI sampling weights (paper §4.2 Step 1).
FLAML_PROP(EciProp, EciStaysPositiveUnderRandomHistories, 40) {
  EciState state;
  state.initial_eci1 = prop.rng.uniform(1e-6, 100.0);
  EXPECT_GT(state.eci1(), 0.0);  // cold start included

  const int n_records = 1 + static_cast<int>(prop.rng.uniform_index(40));
  double prev_best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < n_records; ++i) {
    const double cost = prop.rng.uniform(1e-6, 5.0);
    // Mix clear improvements, ties and regressions.
    const double error = prop.rng.bernoulli(0.3) ? prop.rng.uniform(0.0, 10.0)
                                                 : prop.rng.uniform();
    state.record(cost, error);

    EXPECT_GE(state.k0, state.k1);
    EXPECT_GE(state.k1, state.k2);
    EXPECT_GE(state.k2, 0.0);
    EXPECT_LE(state.best_error, prev_best) << "best error must not regress";
    prev_best = state.best_error;

    EXPECT_GT(state.eci1(), 0.0) << "after record " << i;
    const double c = prop.rng.uniform(1.0, 4.0);
    EXPECT_GT(state.eci2(c, true), 0.0);
    EXPECT_GT(state.eci2(c, false), 0.0);  // +inf at full size: still positive
    // Against any global best at or below this learner's own best.
    const double global_best = state.best_error * prop.rng.uniform();
    EXPECT_GT(state.eci(global_best, c, true), 0.0) << "after record " << i;
    EXPECT_GT(state.eci(state.best_error, c, true), 0.0) << "holder case";
  }
}

TEST(Eci, ColdStartMultipliersMatchPaper) {
  // Appendix cold-start rule: ECI1 of an untried learner = multiplier × the
  // fastest learner's smallest observed cost, with these exact multipliers.
  const std::map<std::string, double> expected = {
      {"lgbm", 1.0},  {"xgboost", 1.6},  {"extra_tree", 1.9},
      {"rf", 2.0},    {"catboost", 15.0}, {"lr", 160.0},
  };
  for (const auto& [name, multiplier] : expected) {
    LearnerPtr learner = builtin_learner(name);
    ASSERT_NE(learner, nullptr) << name;
    EXPECT_DOUBLE_EQ(learner->initial_cost_multiplier(), multiplier) << name;
  }
}

// The cold-start multiple influences ECI1 exactly once: before the first
// recorded trial. From the first record() on, eci1() is a pure function of
// the trial history, whatever initial_eci1 was.
FLAML_PROP(EciProp, ColdStartAppliedExactlyOnce, 20) {
  EciState a, b;
  a.initial_eci1 = prop.rng.uniform(1e-3, 10.0);
  b.initial_eci1 = a.initial_eci1 * prop.rng.uniform(2.0, 100.0);
  EXPECT_NE(a.eci1(), b.eci1());  // cold start: the multiple is in effect

  const int n_records = 1 + static_cast<int>(prop.rng.uniform_index(10));
  for (int i = 0; i < n_records; ++i) {
    const double cost = prop.rng.uniform(1e-3, 2.0);
    const double error = prop.rng.uniform();
    a.record(cost, error);
    b.record(cost, error);
    EXPECT_DOUBLE_EQ(a.eci1(), b.eci1()) << "record " << i;
    EXPECT_DOUBLE_EQ(a.eci(0.1, 2.0, true), b.eci(0.1, 2.0, true));
  }
}

// Drawing learners with weights 1/ECI(l) yields empirical frequencies
// proportional to 1/ECI — the frugal-sampling rule the controller relies on.
FLAML_PROP(EciProp, SamplingFrequencyProportionalToInverseEci, 10) {
  const int n_learners = 2 + static_cast<int>(prop.rng.uniform_index(4));
  std::vector<double> ecis;
  for (int l = 0; l < n_learners; ++l) {
    EciState state;
    const int n_records = 1 + static_cast<int>(prop.rng.uniform_index(8));
    for (int i = 0; i < n_records; ++i) {
      state.record(prop.rng.uniform(0.01, 3.0), prop.rng.uniform());
    }
    ecis.push_back(state.eci(state.best_error * 0.5, 2.0, true));
    ASSERT_GT(ecis.back(), 0.0);
    ASSERT_TRUE(std::isfinite(ecis.back()));
  }

  std::vector<double> weights;
  double inv_sum = 0.0;
  for (double e : ecis) {
    weights.push_back(1.0 / e);
    inv_sum += 1.0 / e;
  }

  const int n_draws = 20000;
  std::vector<int> counts(ecis.size(), 0);
  for (int i = 0; i < n_draws; ++i) ++counts[prop.rng.categorical(weights)];

  for (std::size_t l = 0; l < ecis.size(); ++l) {
    const double expected = weights[l] / inv_sum;
    const double observed = static_cast<double>(counts[l]) / n_draws;
    const double sigma = std::sqrt(expected * (1.0 - expected) / n_draws);
    EXPECT_NEAR(observed, expected, 4.0 * sigma + 1e-3)
        << "learner " << l << " eci " << ecis[l];
  }
}

}  // namespace
}  // namespace flaml
