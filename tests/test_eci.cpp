#include "automl/eci.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.h"

namespace flaml {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Eci, ColdStartUsesInitialEci1) {
  EciState state;
  state.initial_eci1 = 3.5;
  EXPECT_DOUBLE_EQ(state.eci1(), 3.5);
  EXPECT_FALSE(state.tried());
}

TEST(Eci, ColdStartWithoutCalibrationRejected) {
  EciState state;
  EXPECT_THROW(state.eci1(), InternalError);
}

TEST(Eci, FirstTrialSetsBookkeeping) {
  EciState state;
  state.record(2.0, 0.4);
  EXPECT_TRUE(state.tried());
  EXPECT_DOUBLE_EQ(state.k0, 2.0);
  EXPECT_DOUBLE_EQ(state.k1, 2.0);  // best update at total 2.0
  EXPECT_DOUBLE_EQ(state.k2, 0.0);
  EXPECT_DOUBLE_EQ(state.best_error, 0.4);
  // ECI1 = max(K0-K1, K1-K2) = max(0, 2) = 2.
  EXPECT_DOUBLE_EQ(state.eci1(), 2.0);
}

TEST(Eci, Eci1TracksRecentImprovementCosts) {
  EciState state;
  state.record(1.0, 0.5);   // best @ K0 = 1
  state.record(1.0, 0.6);   // no improvement, K0 = 2
  state.record(1.0, 0.4);   // best @ K0 = 3: K2 = 1, K1 = 3
  EXPECT_DOUBLE_EQ(state.k1, 3.0);
  EXPECT_DOUBLE_EQ(state.k2, 1.0);
  // ECI1 = max(K0-K1, K1-K2) = max(0, 2) = 2.
  EXPECT_DOUBLE_EQ(state.eci1(), 2.0);
  state.record(1.0, 0.45);  // no improvement, K0 = 4
  // ECI1 = max(4-3, 3-1) = 2.
  EXPECT_DOUBLE_EQ(state.eci1(), 2.0);
  state.record(1.5, 0.48);  // K0 = 5.5 -> max(2.5, 2) = 2.5
  EXPECT_DOUBLE_EQ(state.eci1(), 2.5);
}

TEST(Eci, FailedTrialsRaiseEci1) {
  // Self-correction: consecutive failures grow K0 - K1.
  EciState state;
  state.record(1.0, 0.5);
  double before = state.eci1();
  for (int i = 0; i < 5; ++i) state.record(1.0, 0.9);
  EXPECT_GT(state.eci1(), before);
}

TEST(Eci, Eci2IsTwiceLastCost) {
  EciState state;
  state.record(3.0, 0.5);
  EXPECT_DOUBLE_EQ(state.eci2(2.0, true), 6.0);
  state.record(5.0, 0.6);
  EXPECT_DOUBLE_EQ(state.eci2(2.0, true), 10.0);
}

TEST(Eci, Eci2InfiniteAtFullSampleSize) {
  EciState state;
  state.record(3.0, 0.5);
  EXPECT_EQ(state.eci2(2.0, false), kInf);
}

TEST(Eci, Eci2InfiniteBeforeFirstTrial) {
  EciState state;
  state.initial_eci1 = 1.0;
  EXPECT_EQ(state.eci2(2.0, true), kInf);
}

TEST(Eci, GlobalBestLearnerUsesMinRule) {
  // Case (a): the learner holds the global best -> ECI = min(ECI1, ECI2).
  EciState state;
  state.record(1.0, 0.3);
  double eci = state.eci(/*global_best=*/0.3, 2.0, true);
  EXPECT_DOUBLE_EQ(eci, std::min(state.eci1(), state.eci2(2.0, true)));
}

TEST(Eci, LaggingLearnerPaysGapCost) {
  // Case (b): δ = prev_best - best, τ = K0 - K2; gap term = Δ τ / δ.
  EciState state;
  state.record(1.0, 0.5);   // K1 = 1
  state.record(1.0, 0.4);   // improvement: K2 = 1, K1 = 2, δ = 0.1
  // Global best is 0.2: Δ = 0.4 - 0.2 = 0.2; τ = K0 - K2 = 1.
  // gap cost = 0.2 * 1 / 0.1 = 2. min(ECI1, ECI2) = min(1, 2) = 1.
  double eci = state.eci(0.2, 2.0, true);
  EXPECT_DOUBLE_EQ(eci, 2.0);
}

TEST(Eci, SingleBestUsesErrorAsDelta) {
  // Special case δ = 0 (only one best ever): δ = ε_l, τ = total cost.
  EciState state;
  state.record(2.0, 0.5);
  // Δ = 0.5 - 0.3 = 0.2, δ = 0.5, τ = 2 -> gap = 0.2*2/0.5 = 0.8.
  // min(ECI1, ECI2) = min(2, 4) = 2 -> ECI = max(0.8, 2) = 2.
  EXPECT_DOUBLE_EQ(state.eci(0.3, 2.0, true), 2.0);
}

TEST(Eci, GapCostDominatesWhenFarBehind) {
  EciState state;
  state.record(1.0, 0.9);
  state.record(1.0, 0.85);  // δ = 0.05, τ = 1
  // Δ = 0.85 - 0.05 = 0.8 -> gap = 0.8 / 0.05 = 16 > base.
  double eci = state.eci(0.05, 2.0, true);
  EXPECT_NEAR(eci, 16.0, 1e-9);
}

TEST(Eci, RecordRejectsNonPositiveCost) {
  EciState state;
  EXPECT_THROW(state.record(0.0, 0.5), InternalError);
}

TEST(Eci, HarmonicMeanPropertyOfInverseSampling) {
  // The expected ECI under probability ∝ 1/ECI equals the harmonic mean
  // (paper §4.2 Step 1) — verified numerically here as documentation.
  std::vector<double> ecis{1.0, 2.0, 4.0};
  double inv_sum = 0.0;
  for (double e : ecis) inv_sum += 1.0 / e;
  double expectation = 0.0;
  for (double e : ecis) expectation += e * (1.0 / e) / inv_sum;
  double harmonic = 3.0 / inv_sum;
  EXPECT_NEAR(expectation, harmonic, 1e-12);
  EXPECT_LT(harmonic, (1.0 + 2.0 + 4.0) / 3.0);  // below the arithmetic mean
}

}  // namespace
}  // namespace flaml
