#include "boosting/objectives.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace flaml {
namespace {

// Property: the analytic gradient of each objective matches the finite
// difference of its loss, per output column.
class ObjectiveGradientTest
    : public ::testing::TestWithParam<std::pair<Task, int>> {};

TEST_P(ObjectiveGradientTest, GradientsMatchFiniteDifferences) {
  auto [task, n_classes] = GetParam();
  auto objective = make_objective(task, n_classes);
  const int k = objective->n_outputs();
  const std::size_t n = 8;
  Rng rng(5);

  std::vector<double> labels(n);
  for (auto& y : labels) {
    y = is_classification(task)
            ? static_cast<double>(rng.uniform_index(
                  static_cast<std::uint64_t>(task == Task::BinaryClassification
                                                 ? 2
                                                 : n_classes)))
            : rng.normal();
  }
  std::vector<double> scores(n * static_cast<std::size_t>(k));
  for (auto& s : scores) s = rng.normal();

  const double eps = 1e-6;
  std::vector<double> grad, hess;
  for (int c = 0; c < k; ++c) {
    objective->gradients(scores, labels, c, grad, hess);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> plus = scores, minus = scores;
      std::size_t idx = i * static_cast<std::size_t>(k) + static_cast<std::size_t>(c);
      plus[idx] += eps;
      minus[idx] -= eps;
      // loss() is the mean over n examples; the per-example gradient is
      // therefore n * d(mean loss)/d(score).
      double fd = (objective->loss(plus, labels) - objective->loss(minus, labels)) /
                  (2.0 * eps) * static_cast<double>(n);
      EXPECT_NEAR(grad[i], fd, 1e-4) << "output " << c << " example " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tasks, ObjectiveGradientTest,
    ::testing::Values(std::make_pair(Task::Regression, 0),
                      std::make_pair(Task::BinaryClassification, 2),
                      std::make_pair(Task::MultiClassification, 3),
                      std::make_pair(Task::MultiClassification, 5)));

TEST(Objectives, HessiansNonNegative) {
  for (auto [task, k] : {std::make_pair(Task::Regression, 0),
                         std::make_pair(Task::BinaryClassification, 2),
                         std::make_pair(Task::MultiClassification, 4)}) {
    auto objective = make_objective(task, k);
    Rng rng(7);
    std::size_t n = 20;
    std::vector<double> labels(n, 0.0);
    if (is_classification(task)) {
      for (auto& y : labels) {
        y = static_cast<double>(rng.uniform_index(
            static_cast<std::uint64_t>(std::max(2, k))));
      }
    }
    std::vector<double> scores(n * static_cast<std::size_t>(objective->n_outputs()));
    for (auto& s : scores) s = rng.normal() * 3.0;
    std::vector<double> grad, hess;
    for (int c = 0; c < objective->n_outputs(); ++c) {
      objective->gradients(scores, labels, c, grad, hess);
      for (double h : hess) EXPECT_GT(h, 0.0);
    }
  }
}

TEST(Objectives, BaseScoresMinimizeConstantLoss) {
  // For the logistic objective the optimal constant score is the log-odds;
  // perturbing it in either direction must not reduce the loss.
  auto objective = make_objective(Task::BinaryClassification, 2);
  std::vector<double> labels{1, 1, 1, 0, 0, 1, 0, 1, 1, 0};
  auto base = objective->base_scores(labels);
  ASSERT_EQ(base.size(), 1u);
  auto loss_at = [&](double s) {
    std::vector<double> scores(labels.size(), s);
    return objective->loss(scores, labels);
  };
  double at_base = loss_at(base[0]);
  EXPECT_LE(at_base, loss_at(base[0] + 0.1) + 1e-12);
  EXPECT_LE(at_base, loss_at(base[0] - 0.1) + 1e-12);
}

TEST(Objectives, TransformShapes) {
  auto reg = make_objective(Task::Regression, 0);
  Predictions p = reg->transform({1.0, 2.0});
  EXPECT_EQ(p.task, Task::Regression);
  EXPECT_EQ(p.values.size(), 2u);

  auto multi = make_objective(Task::MultiClassification, 3);
  Predictions pm = multi->transform({0.1, 0.2, 0.3, 1.0, -1.0, 0.0});
  EXPECT_EQ(pm.n_classes, 3);
  EXPECT_EQ(pm.n_rows(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) sum += pm.prob(i, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Objectives, SoftmaxRequiresAtLeastTwoClasses) {
  EXPECT_THROW(make_objective(Task::MultiClassification, 1), InvalidArgument);
}

}  // namespace
}  // namespace flaml
