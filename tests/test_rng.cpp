#include "common/rng.h"

#include <gtest/gtest.h>

#include "common/error.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace flaml {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParams) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

class RngSphereTest : public ::testing::TestWithParam<int> {};

TEST_P(RngSphereTest, UnitNorm) {
  Rng rng(31);
  const int d = GetParam();
  for (int i = 0; i < 50; ++i) {
    auto v = rng.unit_sphere(d);
    ASSERT_EQ(v.size(), static_cast<std::size_t>(d));
    double norm2 = 0.0;
    for (double x : v) norm2 += x * x;
    EXPECT_NEAR(norm2, 1.0, 1e-9);
  }
}

TEST_P(RngSphereTest, MeanNearZero) {
  Rng rng(37);
  const int d = GetParam();
  std::vector<double> mean(static_cast<std::size_t>(d), 0.0);
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    auto v = rng.unit_sphere(d);
    for (int j = 0; j < d; ++j) mean[static_cast<std::size_t>(j)] += v[static_cast<std::size_t>(j)];
  }
  for (double m : mean) EXPECT_NEAR(m / n, 0.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Dims, RngSphereTest, ::testing::Values(1, 2, 3, 5, 9, 20));

TEST(Rng, CategoricalProportionalToWeights) {
  Rng rng(41);
  std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) counts[rng.categorical(weights)] += 1;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, CategoricalSkipsZeroWeights) {
  Rng rng(43);
  std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng rng(47);
  std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW(rng.categorical(weights), InternalError);
}

TEST(Rng, CategoricalRejectsNegative) {
  Rng rng(53);
  std::vector<double> weights{1.0, -0.5};
  EXPECT_THROW(rng.categorical(weights), InternalError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(61);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace flaml
