#include "tuners/tpe.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "tuners/random_search.h"

namespace flaml {
namespace {

ConfigSpace box_space(int d) {
  ConfigSpace space;
  for (int i = 0; i < d; ++i) {
    space.add_float("x" + std::to_string(i), 0.0, 1.0, 0.5);
  }
  return space;
}

double sphere_error(const Config& c, int d) {
  double err = 0.0;
  for (int i = 0; i < d; ++i) {
    double v = c.at("x" + std::to_string(i));
    err += (v - 0.3) * (v - 0.3);
  }
  return err;
}

TEST(Tpe, ProposalsStayInBounds) {
  ConfigSpace space = box_space(3);
  Tpe tuner(space, 1);
  for (int i = 0; i < 100; ++i) {
    Config c = tuner.ask();
    for (int j = 0; j < 3; ++j) {
      double v = c.at("x" + std::to_string(j));
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    tuner.tell(c, sphere_error(c, 3));
  }
  EXPECT_EQ(tuner.n_observations(), 100u);
}

TEST(Tpe, ModelPhaseConcentratesNearGoodRegion) {
  const int d = 2;
  ConfigSpace space = box_space(d);
  Tpe tuner(space, 3);
  for (int i = 0; i < 150; ++i) {
    Config c = tuner.ask();
    tuner.tell(c, sphere_error(c, d));
  }
  // After the model kicks in, proposals should concentrate near (0.3, 0.3).
  double mean_dist = 0.0;
  const int probes = 40;
  for (int i = 0; i < probes; ++i) {
    Config c = tuner.ask();
    mean_dist += std::sqrt(sphere_error(c, d));
    tuner.tell(c, sphere_error(c, d));
  }
  mean_dist /= probes;
  // Uniform sampling would give mean distance ~0.45; TPE must do better.
  EXPECT_LT(mean_dist, 0.3);
}

TEST(Tpe, BeatsRandomSearchOnBudget) {
  const int d = 3;
  const int budget = 120;
  ConfigSpace space = box_space(d);

  double best_tpe = 1e9;
  Tpe tpe(space, 5);
  for (int i = 0; i < budget; ++i) {
    Config c = tpe.ask();
    double e = sphere_error(c, d);
    best_tpe = std::min(best_tpe, e);
    tpe.tell(c, e);
  }

  double best_random = 1e9;
  RandomSearch random(space, 5);
  for (int i = 0; i < budget; ++i) {
    Config c = random.ask();
    double e = sphere_error(c, d);
    best_random = std::min(best_random, e);
    random.tell(c, e);
  }
  EXPECT_LE(best_tpe, best_random * 1.5);  // at least comparable, usually better
}

TEST(Tpe, HandlesCategoricalDims) {
  ConfigSpace space;
  space.add_categorical("c", {"a", "b", "c"}, 0);
  space.add_float("x", 0.0, 1.0, 0.5);
  Tpe tuner(space, 7);
  // Category "b" is good, others bad.
  for (int i = 0; i < 80; ++i) {
    Config c = tuner.ask();
    double err = (c.at("c") == 1.0 ? 0.0 : 1.0) + std::fabs(c.at("x") - 0.5);
    tuner.tell(c, err);
  }
  int good = 0;
  for (int i = 0; i < 30; ++i) {
    Config c = tuner.ask();
    good += c.at("c") == 1.0 ? 1 : 0;
    tuner.tell(c, c.at("c") == 1.0 ? 0.0 : 1.0);
  }
  EXPECT_GT(good, 15);
}

TEST(Tpe, RejectsBadGamma) {
  ConfigSpace space = box_space(1);
  TpeOptions options;
  options.gamma = 1.5;
  EXPECT_THROW(Tpe(space, 1, options), InvalidArgument);
}

}  // namespace
}  // namespace flaml
