#include "automl/trial_runner.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generators.h"
#include "learners/registry.h"

namespace flaml {
namespace {

Dataset binary_data(std::size_t n = 400) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = n;
  spec.n_features = 6;
  spec.seed = 4;
  return make_classification(spec);
}

TEST(ResamplingRule, SmallDataLargeBudgetIsCV) {
  // 10k x 28 with a 1-hour budget: rate = 280k/h < 10M/h and n < 100K.
  EXPECT_EQ(propose_resampling(10000, 28, 3600.0), Resampling::CV);
}

TEST(ResamplingRule, SmallBudgetIsHoldout) {
  // Same data with a 1-minute budget: rate = 16.8M/h > 10M/h.
  EXPECT_EQ(propose_resampling(10000, 28, 60.0), Resampling::Holdout);
}

TEST(ResamplingRule, HugeDataIsHoldout) {
  EXPECT_EQ(propose_resampling(500000, 10, 36000.0), Resampling::Holdout);
}

TEST(ResamplingRule, ThresholdBoundary) {
  // Exactly at 100K instances: not < 100K -> holdout.
  EXPECT_EQ(propose_resampling(100000, 1, 1e9), Resampling::Holdout);
  EXPECT_EQ(propose_resampling(99999, 1, 1e9), Resampling::CV);
}

TEST(ResamplingRule, CellRateBoundary) {
  // 50000 rows × 200 features = 1e7 cells. With a 1-hour budget the rate is
  // exactly kCvMaxCellRatePerHour — not strictly below -> holdout. Doubling
  // the budget halves the rate to 5e6 -> both conditions hold -> cv.
  EXPECT_EQ(propose_resampling(50000, 200, 3600.0), Resampling::Holdout);
  EXPECT_EQ(propose_resampling(50000, 200, 7200.0), Resampling::CV);
}

TEST(ResamplingRule, ConstantsMatchThePaperThresholds) {
  // The rate threshold is 10M cells/hour. It was once written as the literal
  // `10e6` — which IS 1e7, but reads like 1e6; the named constants keep the
  // rule honest.
  EXPECT_EQ(kCvMaxInstances, 100000u);
  EXPECT_DOUBLE_EQ(kCvMaxCellRatePerHour, 1e7);
}

TEST(TrialRunner, HoldoutReservesValidationRows) {
  Dataset data = binary_data(500);
  TrialRunner::Options options;
  options.resampling = Resampling::Holdout;
  options.holdout_ratio = 0.1;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  EXPECT_EQ(runner.max_sample_size(), 450u);
}

TEST(TrialRunner, CvUsesAllRows) {
  Dataset data = binary_data(500);
  TrialRunner::Options options;
  options.resampling = Resampling::CV;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  EXPECT_EQ(runner.max_sample_size(), 500u);
}

class RunnerModeTest : public ::testing::TestWithParam<Resampling> {};

TEST_P(RunnerModeTest, TrialReturnsFiniteErrorAndPositiveCost) {
  Dataset data = binary_data(400);
  TrialRunner::Options options;
  options.resampling = GetParam();
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  LearnerPtr learner = builtin_learner("lgbm");
  Config config = learner->space(data.task(), runner.max_sample_size()).initial_config();
  TrialResult result = runner.run(*learner, config, 200);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.status, TrialStatus::Ok);
  EXPECT_GE(result.error, 0.0);
  EXPECT_LE(result.error, 1.0);  // 1 - auc
  EXPECT_GT(result.cost, 0.0);
}

TEST_P(RunnerModeTest, BiggerConfigCostsMore) {
  Dataset data = binary_data(1500);
  TrialRunner::Options options;
  options.resampling = GetParam();
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  LearnerPtr learner = builtin_learner("lgbm");
  ConfigSpace space = learner->space(data.task(), runner.max_sample_size());
  Config cheap = space.initial_config();
  Config expensive = cheap;
  expensive["tree_num"] = 120;
  expensive["leaf_num"] = 63;
  TrialResult r_cheap = runner.run(*learner, cheap, 1000);
  TrialResult r_costly = runner.run(*learner, expensive, 1000);
  EXPECT_GT(r_costly.cost, r_cheap.cost);
}

INSTANTIATE_TEST_SUITE_P(Modes, RunnerModeTest,
                         ::testing::Values(Resampling::CV, Resampling::Holdout));

TEST(TrialRunner, SampleSizeClampedToMax) {
  Dataset data = binary_data(300);
  TrialRunner::Options options;
  options.resampling = Resampling::Holdout;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  LearnerPtr learner = builtin_learner("lgbm");
  Config config = learner->space(data.task(), runner.max_sample_size()).initial_config();
  TrialResult result = runner.run(*learner, config, 100000);
  EXPECT_TRUE(result.ok);
}

TEST(TrialRunner, LargerSampleImprovesHoldoutError) {
  // Observation 1: error decreases (or stays) with sample size. Checked in
  // expectation on an easy dataset with a clear margin.
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 3000;
  spec.n_features = 8;
  spec.class_sep = 1.2;
  spec.nonlinearity = 0.6;
  spec.seed = 12;
  Dataset data = make_classification(spec);
  TrialRunner::Options options;
  options.resampling = Resampling::Holdout;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  LearnerPtr learner = builtin_learner("lgbm");
  ConfigSpace space = learner->space(data.task(), runner.max_sample_size());
  Config config = space.initial_config();
  config["tree_num"] = 40;
  config["leaf_num"] = 15;
  TrialResult small = runner.run(*learner, config, 100);
  TrialResult large = runner.run(*learner, config, 2700);
  EXPECT_LT(large.error, small.error + 0.02);
}

TEST(TrialRunner, FailingLearnerReportsNotOk) {
  class ThrowingLearner final : public Learner {
   public:
    const std::string& name() const override {
      static const std::string n = "thrower";
      return n;
    }
    bool supports(Task) const override { return true; }
    ConfigSpace space(Task, std::size_t) const override {
      ConfigSpace s;
      s.add_float("x", 0.0, 1.0, 0.5);
      return s;
    }
    std::unique_ptr<Model> train(const TrainContext&, const Config&) const override {
      throw std::runtime_error("synthetic failure");
    }
    double initial_cost_multiplier() const override { return 1.0; }
  };
  Dataset data = binary_data(100);
  TrialRunner::Options options;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  ThrowingLearner learner;
  Config config;
  config["x"] = 0.5;
  TrialResult result = runner.run(learner, config, 50);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.status, TrialStatus::Failed);
  EXPECT_TRUE(std::isinf(result.error));
  EXPECT_GT(result.cost, 0.0);
}

// Records every training seed it is handed, then aborts the fit — the seed
// is all these tests need; no model required.
class SeedCaptureLearner final : public Learner {
 public:
  const std::string& name() const override {
    static const std::string n = "capture";
    return n;
  }
  bool supports(Task) const override { return true; }
  ConfigSpace space(Task, std::size_t) const override {
    ConfigSpace s;
    s.add_float("x", 0.0, 1.0, 0.5);
    return s;
  }
  std::unique_ptr<Model> train(const TrainContext& ctx, const Config&) const override {
    seeds.push_back(ctx.seed);
    throw std::runtime_error("capture only");
  }
  double initial_cost_multiplier() const override { return 1.0; }

  mutable std::vector<std::uint64_t> seeds;
};

TEST(TrialRunner, CounterAndSaltedTrialIdsNeverCollide) {
  // Regression: the first counter-issued trial id used to be 1 — identical
  // to a caller's seed_salt == 1 — so the two trials silently trained with
  // the same seed. The id domains are now disjoint (salted ids carry a tag
  // bit counter ids never set).
  Dataset data = binary_data(100);
  TrialRunner::Options options;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  SeedCaptureLearner learner;
  Config config;
  config["x"] = 0.5;
  runner.run(learner, config, 50);            // counter-issued id (salt 0)
  runner.run(learner, config, 50, 0.0, 1);    // caller salt 1
  ASSERT_EQ(learner.seeds.size(), 2u);
  EXPECT_NE(learner.seeds[0], learner.seeds[1]);
}

TEST(TrialRunner, SaltedSeedsReproducibleCounterSeedsDistinct) {
  Dataset data = binary_data(100);
  Config config;
  config["x"] = 0.5;
  TrialRunner::Options options;

  // The same salt on two fresh runners yields the same training seed (the
  // parallel==serial contract); successive counter-issued trials never
  // repeat a seed.
  TrialRunner runner_a(data, ErrorMetric::default_for(data.task()), options);
  TrialRunner runner_b(data, ErrorMetric::default_for(data.task()), options);
  SeedCaptureLearner cap_a;
  SeedCaptureLearner cap_b;
  runner_a.run(cap_a, config, 50, 0.0, 42);
  runner_b.run(cap_b, config, 50, 0.0, 42);
  ASSERT_EQ(cap_a.seeds.size(), 1u);
  ASSERT_EQ(cap_b.seeds.size(), 1u);
  EXPECT_EQ(cap_a.seeds[0], cap_b.seeds[0]);

  SeedCaptureLearner counter_cap;
  runner_a.run(counter_cap, config, 50);
  runner_a.run(counter_cap, config, 50);
  ASSERT_EQ(counter_cap.seeds.size(), 2u);
  EXPECT_NE(counter_cap.seeds[0], counter_cap.seeds[1]);
  EXPECT_NE(counter_cap.seeds[0], cap_a.seeds[0]);
}

TEST(TrialRunner, StatusNames) {
  EXPECT_STREQ(trial_status_name(TrialStatus::Ok), "ok");
  EXPECT_STREQ(trial_status_name(TrialStatus::Killed), "killed");
  EXPECT_STREQ(trial_status_name(TrialStatus::Failed), "failed");
}

TEST(TrialRunner, TrainFinalProducesWorkingModel) {
  Dataset data = binary_data(300);
  TrialRunner::Options options;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  LearnerPtr learner = builtin_learner("lgbm");
  Config config = learner->space(data.task(), runner.max_sample_size()).initial_config();
  auto model = runner.train_final(*learner, config);
  Predictions pred = model->predict(DataView(data));
  EXPECT_EQ(pred.n_rows(), 300u);
}

TEST(TrialRunner, RejectsTinySample) {
  Dataset data = binary_data(100);
  TrialRunner::Options options;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  LearnerPtr learner = builtin_learner("lgbm");
  Config config = learner->space(data.task(), 90).initial_config();
  EXPECT_THROW(runner.run(*learner, config, 1), InvalidArgument);
}

TEST(TrialRunner, DeadlineKillsTrialButNotFinalRetrain) {
  // A config far too big for the deadline: the TRIAL reports failure
  // (killed-trial semantics), while train_final with the same cap returns a
  // truncated-but-usable model (safety-cap semantics).
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 4000;
  spec.n_features = 20;
  spec.seed = 77;
  Dataset data = make_classification(spec);
  TrialRunner::Options options;
  options.resampling = Resampling::Holdout;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  LearnerPtr learner = builtin_learner("lgbm");
  ConfigSpace space = learner->space(data.task(), runner.max_sample_size());
  Config huge = space.initial_config();
  huge["tree_num"] = 4000;
  huge["leaf_num"] = 255;
  TrialResult trial = runner.run(*learner, huge, runner.max_sample_size(), 0.05);
  EXPECT_FALSE(trial.ok);
  EXPECT_EQ(trial.status, TrialStatus::Killed);
  EXPECT_TRUE(std::isinf(trial.error));
  EXPECT_GE(trial.cost, 0.04);  // the budget was still spent

  auto model = runner.train_final(*learner, huge, 0.05);
  Predictions pred = model->predict(DataView(data));
  EXPECT_EQ(pred.n_rows(), data.n_rows());
}

TEST(TrialRunner, ResamplingNames) {
  EXPECT_STREQ(resampling_name(Resampling::CV), "cv");
  EXPECT_STREQ(resampling_name(Resampling::Holdout), "holdout");
}

// --- Tiny datasets (2–5 rows): construction either fails with the typed
// DatasetTooSmall or yields a runner whose trials actually work. ---

// n rows of a trivially learnable binary problem with the requested class
// counts (hand-built: the synthetic generators are unreliable below ~10
// rows and these tests need EXACT class counts).
Dataset tiny_binary(const std::vector<int>& class_counts) {
  Dataset data(Task::BinaryClassification,
               {{"x", ColumnType::Numeric, 0}, {"y", ColumnType::Numeric, 0}});
  float v = 0.0f;
  for (std::size_t label = 0; label < class_counts.size(); ++label) {
    for (int i = 0; i < class_counts[label]; ++i) {
      v += 1.0f;
      data.add_row({v, label == 0 ? -v : v}, static_cast<double>(label));
    }
  }
  return data;
}

Dataset tiny_regression(int n) {
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0}});
  for (int i = 0; i < n; ++i) {
    data.add_row({static_cast<float>(i)}, static_cast<double>(i));
  }
  return data;
}

TEST(TrialRunnerTiny, HoldoutOnTwoRowsThrowsTyped) {
  // 2 rows: 1 goes to the holdout set, leaving a 1-row training view that
  // no trainer accepts. Regression: this used to construct fine and then
  // fail opaquely inside every single trial.
  Dataset data = tiny_binary({1, 1});
  TrialRunner::Options options;
  options.resampling = Resampling::Holdout;
  EXPECT_THROW(
      TrialRunner(data, ErrorMetric::default_for(data.task()), options),
      DatasetTooSmall);
}

TEST(TrialRunnerTiny, CvOnTwoRowsThrowsTyped) {
  Dataset data = tiny_binary({1, 1});
  TrialRunner::Options options;
  options.resampling = Resampling::CV;
  EXPECT_THROW(
      TrialRunner(data, ErrorMetric::default_for(data.task()), options),
      DatasetTooSmall);
}

TEST(TrialRunnerTiny, CvWithNoUsableFoldCountThrowsTyped) {
  // 3 rows, class counts {2, 1}: the stratified dealing gives fold sizes
  // {2, 1} at k=2 (train side 1 row) and an EMPTY fold at k=3 — no k works.
  // This used to surface as an InternalError from kfold_split's
  // FLAML_CHECK; now it is a typed construction-time rejection.
  Dataset data = tiny_binary({2, 1});
  TrialRunner::Options options;
  options.resampling = Resampling::CV;
  EXPECT_THROW(
      TrialRunner(data, ErrorMetric::default_for(data.task()), options),
      DatasetTooSmall);
}

TEST(TrialRunnerTiny, ChooseCvKMatchesTheAnalyticRule) {
  Dataset reg3 = tiny_regression(3);
  // 3 regression rows: k=2 folds {2,1} leaves a 1-row train side; k=3
  // (leave-one-out) leaves 2 — the only usable count.
  EXPECT_EQ(choose_cv_k(DataView(reg3), 5), 3);
  Dataset cls = tiny_binary({2, 1});
  EXPECT_EQ(choose_cv_k(DataView(cls), 5), 0);
  Dataset reg2 = tiny_regression(2);
  EXPECT_EQ(choose_cv_k(DataView(reg2), 5), 0);
  Dataset balanced = tiny_binary({3, 3});
  // k=2: folds {2+2, 1+1} = {4, 2}? No: per class ceil(3/2)=2 to fold 0,
  // 1 to fold 1 -> {4, 2}, train sides {2, 4} — usable.
  EXPECT_EQ(choose_cv_k(DataView(balanced), 2), 2);
  Dataset big = tiny_regression(100);
  EXPECT_EQ(choose_cv_k(DataView(big), 5), 5);  // normal sizes: requested k
}

class TinyModeTest : public ::testing::TestWithParam<Resampling> {};

TEST_P(TinyModeTest, ViableTinySizesProduceWorkingTrials) {
  // 4- and 5-row balanced binary sets are small but legal in both modes:
  // construction succeeds and a trial over the full sample completes
  // (Ok or a clean Failed — never a crash or an InternalError).
  for (int per_class : {2, 3}) {
    Dataset data = tiny_binary({per_class, per_class});
    TrialRunner::Options options;
    options.resampling = GetParam();
    options.holdout_ratio = 0.25;
    TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
    LearnerPtr learner = builtin_learner("rf");
    Config config =
        learner->space(data.task(), runner.max_sample_size()).initial_config();
    TrialResult result =
        runner.run(*learner, config, runner.max_sample_size());
    EXPECT_GT(result.cost, 0.0);
    if (result.ok) {
      EXPECT_TRUE(std::isfinite(result.error));
    } else {
      EXPECT_EQ(result.status, TrialStatus::Failed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, TinyModeTest,
                         ::testing::Values(Resampling::CV, Resampling::Holdout));

// --- CV fold seeds (regression: every fold used to train with the
// IDENTICAL seed, correlating per-fold randomness) ---

TEST(TrialRunner, CvFoldsTrainWithDistinctSeeds) {
  Dataset data = binary_data(100);
  TrialRunner::Options options;
  options.resampling = Resampling::CV;
  options.cv_folds = 5;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);

  // Succeeds (constant model) so all k folds are reached.
  class SeedListLearner final : public Learner {
   public:
    const std::string& name() const override {
      static const std::string n = "seed_list";
      return n;
    }
    bool supports(Task) const override { return true; }
    ConfigSpace space(Task, std::size_t) const override {
      ConfigSpace s;
      s.add_float("x", 0.0, 1.0, 0.5);
      return s;
    }
    std::unique_ptr<Model> train(const TrainContext& ctx,
                                 const Config&) const override {
      seeds.push_back(ctx.seed);
      class ConstModel final : public Model {
       public:
        Predictions predict(const DataView& view) const override {
          Predictions pred;
          pred.task = Task::BinaryClassification;
          pred.n_classes = 2;
          pred.values.assign(view.n_rows() * 2, 0.5);
          return pred;
        }
      };
      return std::make_unique<ConstModel>();
    }
    double initial_cost_multiplier() const override { return 1.0; }
    mutable std::vector<std::uint64_t> seeds;
  };

  SeedListLearner learner;
  Config config;
  config["x"] = 0.5;
  runner.run(learner, config, 100, 0.0, /*seed_salt=*/9);
  ASSERT_EQ(learner.seeds.size(), 5u);
  std::set<std::uint64_t> distinct(learner.seeds.begin(), learner.seeds.end());
  EXPECT_EQ(distinct.size(), 5u) << "folds must not share a training seed";

  // Deterministic: the same salt on a fresh runner reproduces the exact
  // per-fold seed sequence (the parallel==serial contract extends to folds).
  TrialRunner runner2(data, ErrorMetric::default_for(data.task()), options);
  SeedListLearner learner2;
  runner2.run(learner2, config, 100, 0.0, 9);
  EXPECT_EQ(learner.seeds, learner2.seeds);
}

}  // namespace
}  // namespace flaml
