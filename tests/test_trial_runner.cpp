#include "automl/trial_runner.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "learners/registry.h"

namespace flaml {
namespace {

Dataset binary_data(std::size_t n = 400) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = n;
  spec.n_features = 6;
  spec.seed = 4;
  return make_classification(spec);
}

TEST(ResamplingRule, SmallDataLargeBudgetIsCV) {
  // 10k x 28 with a 1-hour budget: rate = 280k/h < 10M/h and n < 100K.
  EXPECT_EQ(propose_resampling(10000, 28, 3600.0), Resampling::CV);
}

TEST(ResamplingRule, SmallBudgetIsHoldout) {
  // Same data with a 1-minute budget: rate = 16.8M/h > 10M/h.
  EXPECT_EQ(propose_resampling(10000, 28, 60.0), Resampling::Holdout);
}

TEST(ResamplingRule, HugeDataIsHoldout) {
  EXPECT_EQ(propose_resampling(500000, 10, 36000.0), Resampling::Holdout);
}

TEST(ResamplingRule, ThresholdBoundary) {
  // Exactly at 100K instances: not < 100K -> holdout.
  EXPECT_EQ(propose_resampling(100000, 1, 1e9), Resampling::Holdout);
  EXPECT_EQ(propose_resampling(99999, 1, 1e9), Resampling::CV);
}

TEST(TrialRunner, HoldoutReservesValidationRows) {
  Dataset data = binary_data(500);
  TrialRunner::Options options;
  options.resampling = Resampling::Holdout;
  options.holdout_ratio = 0.1;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  EXPECT_EQ(runner.max_sample_size(), 450u);
}

TEST(TrialRunner, CvUsesAllRows) {
  Dataset data = binary_data(500);
  TrialRunner::Options options;
  options.resampling = Resampling::CV;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  EXPECT_EQ(runner.max_sample_size(), 500u);
}

class RunnerModeTest : public ::testing::TestWithParam<Resampling> {};

TEST_P(RunnerModeTest, TrialReturnsFiniteErrorAndPositiveCost) {
  Dataset data = binary_data(400);
  TrialRunner::Options options;
  options.resampling = GetParam();
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  LearnerPtr learner = builtin_learner("lgbm");
  Config config = learner->space(data.task(), runner.max_sample_size()).initial_config();
  TrialResult result = runner.run(*learner, config, 200);
  EXPECT_TRUE(result.ok);
  EXPECT_GE(result.error, 0.0);
  EXPECT_LE(result.error, 1.0);  // 1 - auc
  EXPECT_GT(result.cost, 0.0);
}

TEST_P(RunnerModeTest, BiggerConfigCostsMore) {
  Dataset data = binary_data(1500);
  TrialRunner::Options options;
  options.resampling = GetParam();
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  LearnerPtr learner = builtin_learner("lgbm");
  ConfigSpace space = learner->space(data.task(), runner.max_sample_size());
  Config cheap = space.initial_config();
  Config expensive = cheap;
  expensive["tree_num"] = 120;
  expensive["leaf_num"] = 63;
  TrialResult r_cheap = runner.run(*learner, cheap, 1000);
  TrialResult r_costly = runner.run(*learner, expensive, 1000);
  EXPECT_GT(r_costly.cost, r_cheap.cost);
}

INSTANTIATE_TEST_SUITE_P(Modes, RunnerModeTest,
                         ::testing::Values(Resampling::CV, Resampling::Holdout));

TEST(TrialRunner, SampleSizeClampedToMax) {
  Dataset data = binary_data(300);
  TrialRunner::Options options;
  options.resampling = Resampling::Holdout;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  LearnerPtr learner = builtin_learner("lgbm");
  Config config = learner->space(data.task(), runner.max_sample_size()).initial_config();
  TrialResult result = runner.run(*learner, config, 100000);
  EXPECT_TRUE(result.ok);
}

TEST(TrialRunner, LargerSampleImprovesHoldoutError) {
  // Observation 1: error decreases (or stays) with sample size. Checked in
  // expectation on an easy dataset with a clear margin.
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 3000;
  spec.n_features = 8;
  spec.class_sep = 1.2;
  spec.nonlinearity = 0.6;
  spec.seed = 12;
  Dataset data = make_classification(spec);
  TrialRunner::Options options;
  options.resampling = Resampling::Holdout;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  LearnerPtr learner = builtin_learner("lgbm");
  ConfigSpace space = learner->space(data.task(), runner.max_sample_size());
  Config config = space.initial_config();
  config["tree_num"] = 40;
  config["leaf_num"] = 15;
  TrialResult small = runner.run(*learner, config, 100);
  TrialResult large = runner.run(*learner, config, 2700);
  EXPECT_LT(large.error, small.error + 0.02);
}

TEST(TrialRunner, FailingLearnerReportsNotOk) {
  class ThrowingLearner final : public Learner {
   public:
    const std::string& name() const override {
      static const std::string n = "thrower";
      return n;
    }
    bool supports(Task) const override { return true; }
    ConfigSpace space(Task, std::size_t) const override {
      ConfigSpace s;
      s.add_float("x", 0.0, 1.0, 0.5);
      return s;
    }
    std::unique_ptr<Model> train(const TrainContext&, const Config&) const override {
      throw std::runtime_error("synthetic failure");
    }
    double initial_cost_multiplier() const override { return 1.0; }
  };
  Dataset data = binary_data(100);
  TrialRunner::Options options;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  ThrowingLearner learner;
  Config config;
  config["x"] = 0.5;
  TrialResult result = runner.run(learner, config, 50);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(std::isinf(result.error));
  EXPECT_GT(result.cost, 0.0);
}

TEST(TrialRunner, TrainFinalProducesWorkingModel) {
  Dataset data = binary_data(300);
  TrialRunner::Options options;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  LearnerPtr learner = builtin_learner("lgbm");
  Config config = learner->space(data.task(), runner.max_sample_size()).initial_config();
  auto model = runner.train_final(*learner, config);
  Predictions pred = model->predict(DataView(data));
  EXPECT_EQ(pred.n_rows(), 300u);
}

TEST(TrialRunner, RejectsTinySample) {
  Dataset data = binary_data(100);
  TrialRunner::Options options;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  LearnerPtr learner = builtin_learner("lgbm");
  Config config = learner->space(data.task(), 90).initial_config();
  EXPECT_THROW(runner.run(*learner, config, 1), InvalidArgument);
}

TEST(TrialRunner, DeadlineKillsTrialButNotFinalRetrain) {
  // A config far too big for the deadline: the TRIAL reports failure
  // (killed-trial semantics), while train_final with the same cap returns a
  // truncated-but-usable model (safety-cap semantics).
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 4000;
  spec.n_features = 20;
  spec.seed = 77;
  Dataset data = make_classification(spec);
  TrialRunner::Options options;
  options.resampling = Resampling::Holdout;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  LearnerPtr learner = builtin_learner("lgbm");
  ConfigSpace space = learner->space(data.task(), runner.max_sample_size());
  Config huge = space.initial_config();
  huge["tree_num"] = 4000;
  huge["leaf_num"] = 255;
  TrialResult trial = runner.run(*learner, huge, runner.max_sample_size(), 0.05);
  EXPECT_FALSE(trial.ok);
  EXPECT_TRUE(std::isinf(trial.error));
  EXPECT_GE(trial.cost, 0.04);  // the budget was still spent

  auto model = runner.train_final(*learner, huge, 0.05);
  Predictions pred = model->predict(DataView(data));
  EXPECT_EQ(pred.n_rows(), data.n_rows());
}

TEST(TrialRunner, ResamplingNames) {
  EXPECT_STREQ(resampling_name(Resampling::CV), "cv");
  EXPECT_STREQ(resampling_name(Resampling::Holdout), "holdout");
}

}  // namespace
}  // namespace flaml
