#include "tree/grower.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "data/generators.h"

namespace flaml {
namespace {

// Helper: grow one regression tree fitting targets y via grad = -y, hess = 1
// (leaf value then equals the leaf's target mean; splits maximize variance
// reduction).
struct Fixture {
  explicit Fixture(const Dataset& data, int max_bin = 255)
      : view(data), mapper(BinMapper::fit(view, max_bin)), binned(mapper.encode(view)) {}

  Tree fit(const std::vector<double>& y, GrowerParams params, std::uint64_t seed = 1) {
    std::vector<std::uint32_t> rows(view.n_rows());
    std::iota(rows.begin(), rows.end(), 0u);
    std::vector<double> grad(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) grad[i] = -y[i];
    std::vector<double> hess(y.size(), 1.0);
    std::vector<int> features(view.n_cols());
    std::iota(features.begin(), features.end(), 0);
    params.reg_lambda = 1e-9;
    params.min_child_weight = 0.0;
    GradientTreeGrower grower(mapper, binned);
    Rng rng(seed);
    return grower.grow(rows, grad, hess, features, params, rng);
  }

  DataView view;
  BinMapper mapper;
  BinnedMatrix binned;
};

Dataset step_data() {
  // y = 10 for x <= 0, y = -10 for x > 0: one split suffices.
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0}});
  std::vector<float> x;
  std::vector<double> y;
  for (int i = -50; i < 50; ++i) {
    x.push_back(static_cast<float>(i) / 10.0f);
    y.push_back(i < 0 ? 10.0 : -10.0);
  }
  data.set_column(0, std::move(x));
  data.set_labels(std::move(y));
  return data;
}

TEST(GradientGrower, LearnsStepFunctionWithOneSplit) {
  Dataset data = step_data();
  Fixture fx(data);
  GrowerParams params;
  params.max_leaves = 2;
  Tree tree = fx.fit(data.labels(), params);
  EXPECT_EQ(tree.n_leaves(), 2u);
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    EXPECT_NEAR(tree.predict_row(data, i), data.label(i), 1e-6);
  }
}

TEST(GradientGrower, LeafValuesAreTargetMeans) {
  Dataset data = step_data();
  Fixture fx(data);
  GrowerParams params;
  params.max_leaves = 2;
  Tree tree = fx.fit(data.labels(), params);
  // Root is a split; both children predict exactly ±10.
  double lo = std::min(tree.node(1).leaf_value, tree.node(2).leaf_value);
  double hi = std::max(tree.node(1).leaf_value, tree.node(2).leaf_value);
  EXPECT_NEAR(lo, -10.0, 1e-6);
  EXPECT_NEAR(hi, 10.0, 1e-6);
}

class MaxLeavesTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxLeavesTest, LeafBudgetRespected) {
  SyntheticSpec spec;
  spec.task = Task::Regression;
  spec.n_rows = 500;
  spec.n_features = 6;
  spec.seed = 3;
  Dataset data = make_regression(spec);
  Fixture fx(data);
  GrowerParams params;
  params.max_leaves = GetParam();
  Tree tree = fx.fit(data.labels(), params);
  EXPECT_LE(tree.n_leaves(), static_cast<std::size_t>(GetParam()));
  EXPECT_GE(tree.n_leaves(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Budgets, MaxLeavesTest, ::testing::Values(2, 4, 16, 64));

TEST(GradientGrower, MaxDepthRespected) {
  SyntheticSpec spec;
  spec.task = Task::Regression;
  spec.n_rows = 500;
  spec.n_features = 6;
  Dataset data = make_regression(spec);
  Fixture fx(data);
  GrowerParams params;
  params.max_leaves = 256;
  params.max_depth = 3;
  Tree tree = fx.fit(data.labels(), params);
  EXPECT_LE(tree.depth(), 3);
}

TEST(GradientGrower, MinSamplesLeafRespected) {
  Dataset data = step_data();
  Fixture fx(data);
  GrowerParams params;
  params.max_leaves = 64;
  params.min_samples_leaf = 20;
  Tree tree = fx.fit(data.labels(), params);
  // Count rows per leaf.
  std::vector<int> counts(tree.n_nodes(), 0);
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    counts[static_cast<std::size_t>(tree.leaf_index(data, i))] += 1;
  }
  for (std::size_t n = 0; n < tree.n_nodes(); ++n) {
    if (tree.node(n).is_leaf()) EXPECT_GE(counts[n], 20);
  }
}

TEST(GradientGrower, MoreLeavesNeverWorseTrainingFit) {
  SyntheticSpec spec;
  spec.task = Task::Regression;
  spec.n_rows = 400;
  spec.n_features = 5;
  spec.seed = 11;
  Dataset data = make_regression(spec);
  Fixture fx(data);
  double prev_sse = std::numeric_limits<double>::infinity();
  for (int leaves : {2, 4, 8, 32, 128}) {
    GrowerParams params;
    params.max_leaves = leaves;
    Tree tree = fx.fit(data.labels(), params);
    double sse = 0.0;
    for (std::size_t i = 0; i < data.n_rows(); ++i) {
      double d = tree.predict_row(data, i) - data.label(i);
      sse += d * d;
    }
    EXPECT_LE(sse, prev_sse + 1e-9) << leaves << " leaves";
    prev_sse = sse;
  }
}

TEST(GradientGrower, CategoricalSplitUsed) {
  // Target depends only on a categorical code; the tree must use equality
  // splits on it.
  Dataset data(Task::Regression, {{"c", ColumnType::Categorical, 3}});
  std::vector<float> codes;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    int code = i % 3;
    codes.push_back(static_cast<float>(code));
    y.push_back(code == 1 ? 5.0 : -2.0);
  }
  data.set_column(0, std::move(codes));
  data.set_labels(std::move(y));
  Fixture fx(data);
  GrowerParams params;
  params.max_leaves = 4;
  Tree tree = fx.fit(data.labels(), params);
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    EXPECT_NEAR(tree.predict_row(data, i), data.label(i), 1e-6);
  }
  EXPECT_TRUE(tree.node(0).categorical);
}

TEST(GradientGrower, MissingValuesRoutedByGain) {
  // Rows with missing x have a distinct target; the split must learn to
  // send missing to its own side.
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0}});
  std::vector<float> x;
  std::vector<double> y;
  const float kNaN = std::numeric_limits<float>::quiet_NaN();
  for (int i = 0; i < 200; ++i) {
    if (i % 4 == 0) {
      x.push_back(kNaN);
      y.push_back(50.0);
    } else {
      x.push_back(static_cast<float>(i % 10));
      y.push_back(0.0);
    }
  }
  data.set_column(0, std::move(x));
  data.set_labels(std::move(y));
  Fixture fx(data);
  GrowerParams params;
  params.max_leaves = 4;
  Tree tree = fx.fit(data.labels(), params);
  double sse = 0.0;
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    double d = tree.predict_row(data, i) - data.label(i);
    sse += d * d;
  }
  EXPECT_LT(sse / static_cast<double>(data.n_rows()), 1.0);
}

TEST(GradientGrower, ObliviousTreeIsSymmetric) {
  SyntheticSpec spec;
  spec.task = Task::Regression;
  spec.n_rows = 600;
  spec.n_features = 6;
  spec.seed = 13;
  Dataset data = make_regression(spec);
  Fixture fx(data);
  GrowerParams params;
  params.style = TreeStyle::Oblivious;
  params.oblivious_depth = 4;
  Tree tree = fx.fit(data.labels(), params);
  // A depth-d oblivious tree has exactly 2^d leaves and every level shares
  // one split feature.
  EXPECT_EQ(tree.n_leaves(), 16u);
  EXPECT_EQ(tree.depth(), 5);  // 4 internal levels + leaf level
}

TEST(GradientGrower, ObliviousFitsStepFunction) {
  Dataset data = step_data();
  Fixture fx(data);
  GrowerParams params;
  params.style = TreeStyle::Oblivious;
  params.oblivious_depth = 2;
  Tree tree = fx.fit(data.labels(), params);
  double sse = 0.0;
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    double d = tree.predict_row(data, i) - data.label(i);
    sse += d * d;
  }
  EXPECT_LT(sse / static_cast<double>(data.n_rows()), 1.0);
}

TEST(GradientGrower, PureTargetsYieldSingleLeaf) {
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0}});
  data.set_column(0, {1.0f, 2.0f, 3.0f, 4.0f});
  data.set_labels({7.0, 7.0, 7.0, 7.0});
  Fixture fx(data);
  GrowerParams params;
  params.max_leaves = 8;
  Tree tree = fx.fit(data.labels(), params);
  EXPECT_EQ(tree.n_leaves(), 1u);
  EXPECT_NEAR(tree.predict_row(data, 0), 7.0, 1e-6);
}

TEST(GradientGrower, RejectsEmptyRows) {
  Dataset data = step_data();
  Fixture fx(data);
  GradientTreeGrower grower(fx.mapper, fx.binned);
  std::vector<double> grad(data.n_rows(), 0.0), hess(data.n_rows(), 1.0);
  std::vector<int> features{0};
  GrowerParams params;
  Rng rng(1);
  EXPECT_THROW(grower.grow({}, grad, hess, features, params, rng), InvalidArgument);
}

}  // namespace
}  // namespace flaml
