#include "boosting/gbdt.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "data/generators.h"
#include "data/split.h"
#include "metrics/metrics.h"

namespace flaml {
namespace {

Dataset binary_data(std::size_t n = 600, std::uint64_t seed = 1) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = n;
  spec.n_features = 8;
  spec.class_sep = 1.5;
  spec.seed = seed;
  return make_classification(spec);
}

TEST(Gbdt, BinaryClassifierBeatsChance) {
  Dataset data = binary_data();
  Rng rng(1);
  auto split = holdout_split(DataView(data), 0.3, rng);
  GBDTParams params;
  params.n_trees = 30;
  params.max_leaves = 15;
  GBDTModel model = train_gbdt(split.train, nullptr, params);
  Predictions pred = model.predict(split.test);
  double auc = roc_auc(pred.prob1(), split.test.labels());
  EXPECT_GT(auc, 0.85);
}

TEST(Gbdt, ProbabilitiesAreValid) {
  Dataset data = binary_data(300);
  GBDTParams params;
  params.n_trees = 10;
  GBDTModel model = train_gbdt(DataView(data), nullptr, params);
  Predictions pred = model.predict(DataView(data));
  for (std::size_t i = 0; i < pred.n_rows(); ++i) {
    EXPECT_GE(pred.prob(i, 0), 0.0);
    EXPECT_GE(pred.prob(i, 1), 0.0);
    EXPECT_NEAR(pred.prob(i, 0) + pred.prob(i, 1), 1.0, 1e-9);
  }
}

TEST(Gbdt, MulticlassProbabilitiesSumToOne) {
  SyntheticSpec spec;
  spec.task = Task::MultiClassification;
  spec.n_classes = 5;
  spec.n_rows = 400;
  spec.n_features = 6;
  Dataset data = make_classification(spec);
  GBDTParams params;
  params.n_trees = 8;
  GBDTModel model = train_gbdt(DataView(data), nullptr, params);
  EXPECT_EQ(model.n_outputs(), 5);
  Predictions pred = model.predict(DataView(data));
  for (std::size_t i = 0; i < pred.n_rows(); ++i) {
    double sum = 0.0;
    for (int c = 0; c < 5; ++c) sum += pred.prob(i, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  double acc = accuracy_multi(pred.values, 5, data.labels());
  EXPECT_GT(acc, 0.6);
}

TEST(Gbdt, RegressionFitsFriedman) {
  Dataset data = make_friedman1(800, 8, 0.5, 3);
  Rng rng(2);
  auto split = holdout_split(DataView(data), 0.25, rng);
  GBDTParams params;
  params.n_trees = 60;
  params.max_leaves = 15;
  params.learning_rate = 0.15;
  GBDTModel model = train_gbdt(split.train, nullptr, params);
  Predictions pred = model.predict(split.test);
  EXPECT_GT(r2(pred.values, split.test.labels()), 0.7);
}

// More boosting rounds never increase training loss (a monotone-descent
// property of gradient boosting with a fixed learning rate).
TEST(Gbdt, TrainingLossMonotoneInRounds) {
  Dataset data = binary_data(400, 5);
  DataView view(data);
  auto objective = make_objective(Task::BinaryClassification, 2);
  double prev = std::numeric_limits<double>::infinity();
  for (int rounds : {1, 5, 20, 60}) {
    GBDTParams params;
    params.n_trees = rounds;
    params.max_leaves = 7;
    params.seed = 42;
    GBDTModel model = train_gbdt(view, nullptr, params);
    double loss = objective->loss(model.raw_scores(view), data.labels());
    EXPECT_LE(loss, prev + 1e-9) << rounds << " rounds";
    prev = loss;
  }
}

TEST(Gbdt, EarlyStoppingTruncatesModel) {
  // Needs label noise so validation loss actually stops improving.
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 500;
  spec.n_features = 8;
  spec.label_noise = 0.25;
  spec.seed = 7;
  Dataset data = make_classification(spec);
  Rng rng(3);
  auto split = holdout_split(DataView(data), 0.3, rng);
  GBDTParams params;
  params.n_trees = 200;
  params.max_leaves = 31;
  params.learning_rate = 0.3;
  params.early_stopping_rounds = 5;
  GBDTModel model = train_gbdt(split.train, &split.test, params);
  EXPECT_LT(model.n_iterations(), 200u);
  EXPECT_GE(model.n_iterations(), 1u);
}

TEST(Gbdt, EarlyStoppingRequiresValidationView) {
  Dataset data = binary_data(100);
  GBDTParams params;
  params.early_stopping_rounds = 5;
  EXPECT_THROW(train_gbdt(DataView(data), nullptr, params), InvalidArgument);
}

TEST(Gbdt, SerializationRoundTripsPredictions) {
  Dataset data = binary_data(300, 9);
  GBDTParams params;
  params.n_trees = 12;
  params.max_leaves = 9;
  GBDTModel model = train_gbdt(DataView(data), nullptr, params);
  GBDTModel restored = GBDTModel::from_string(model.to_string());
  EXPECT_EQ(restored.n_iterations(), model.n_iterations());
  Predictions a = model.predict(DataView(data));
  Predictions b = restored.predict(DataView(data));
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-9);
  }
}

TEST(Gbdt, SerializationRejectsGarbage) {
  EXPECT_THROW(GBDTModel::from_string("not a model"), InvalidArgument);
}

TEST(Gbdt, SubsamplingStillLearns) {
  Dataset data = binary_data(600, 11);
  Rng rng(4);
  auto split = holdout_split(DataView(data), 0.3, rng);
  GBDTParams params;
  params.n_trees = 40;
  params.subsample = 0.7;
  params.colsample_bytree = 0.8;
  params.colsample_bylevel = 0.8;
  GBDTModel model = train_gbdt(split.train, nullptr, params);
  Predictions pred = model.predict(split.test);
  EXPECT_GT(roc_auc(pred.prob1(), split.test.labels()), 0.8);
}

TEST(Gbdt, ObliviousStyleLearns) {
  Dataset data = binary_data(500, 13);
  Rng rng(5);
  auto split = holdout_split(DataView(data), 0.3, rng);
  GBDTParams params;
  params.n_trees = 30;
  params.tree_style = TreeStyle::Oblivious;
  params.oblivious_depth = 4;
  params.learning_rate = 0.2;
  GBDTModel model = train_gbdt(split.train, nullptr, params);
  Predictions pred = model.predict(split.test);
  EXPECT_GT(roc_auc(pred.prob1(), split.test.labels()), 0.8);
}

TEST(Gbdt, DeterministicForSeed) {
  Dataset data = binary_data(200, 17);
  GBDTParams params;
  params.n_trees = 5;
  params.subsample = 0.8;
  params.seed = 123;
  GBDTModel a = train_gbdt(DataView(data), nullptr, params);
  GBDTModel b = train_gbdt(DataView(data), nullptr, params);
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(Gbdt, TimeCapStopsTraining) {
  Dataset data = binary_data(2000, 19);
  GBDTParams params;
  params.n_trees = 100000;  // far more than the cap allows
  params.max_leaves = 63;
  params.max_seconds = 0.1;
  GBDTModel model = train_gbdt(DataView(data), nullptr, params);
  EXPECT_LT(model.n_iterations(), 100000u);
  EXPECT_GE(model.n_iterations(), 1u);
}

TEST(Gbdt, CostScalesWithSampleSize) {
  // Observation 3: cost is ~linear in sample size. We check monotonicity
  // (not exact linearity, which is noisy at small scale).
  Dataset data = binary_data(4000, 23);
  DataView view(data);
  auto time_for = [&](std::size_t n) {
    WallClock clock;
    GBDTParams params;
    params.n_trees = 20;
    params.max_leaves = 31;
    train_gbdt(view.prefix(n), nullptr, params);
    return clock.now();
  };
  double t_small = time_for(500);
  double t_large = time_for(4000);
  EXPECT_GT(t_large, t_small);
}

TEST(Gbdt, RejectsInvalidParams) {
  Dataset data = binary_data(100);
  GBDTParams params;
  params.n_trees = 0;
  EXPECT_THROW(train_gbdt(DataView(data), nullptr, params), InvalidArgument);
  params.n_trees = 10;
  params.max_leaves = 1;
  EXPECT_THROW(train_gbdt(DataView(data), nullptr, params), InvalidArgument);
}

}  // namespace
}  // namespace flaml
