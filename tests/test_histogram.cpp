// Equivalence properties of the shared histogram module (docs/TESTING.md):
//   * histogram subtraction (parent − child) equals a direct build over the
//     sibling's rows — exactly, when the inputs are dyadic rationals, and
//     within float tolerance for arbitrary inputs;
//   * the compact small-leaf slice equals the matching full-histogram slice;
//   * parallel builds are bit-identical to serial builds for every tested
//     thread count (the determinism contract of the parallel growers).
#include "tree/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"
#include "data/generators.h"
#include "support/prop.h"
#include "tree/binning.h"

namespace flaml {
namespace {

using testing::PropCase;

struct BinnedData {
  Dataset data;
  BinMapper mapper;
  BinnedMatrix binned;
  std::vector<std::size_t> offsets;

  explicit BinnedData(Dataset d, int max_bin)
      : data(std::move(d)),
        mapper(BinMapper::fit(DataView(data), max_bin)),
        binned(mapper.encode(DataView(data))),
        offsets(histogram_offsets(mapper)) {}
};

BinnedData random_regression(Rng& rng, std::size_t min_rows = 64) {
  SyntheticSpec spec;
  spec.task = Task::Regression;
  spec.n_rows = min_rows + rng.uniform_index(700);
  spec.n_features = 3 + static_cast<int>(rng.uniform_index(8));
  spec.categorical_fraction = rng.uniform(0.0, 0.4);
  spec.missing_fraction = rng.uniform(0.0, 0.2);
  spec.seed = rng.next();
  const int max_bin = 15 + static_cast<int>(rng.uniform_index(241));
  return BinnedData(make_regression(spec), max_bin);
}

BinnedData random_classification(Rng& rng, int n_classes, std::size_t min_rows = 64) {
  SyntheticSpec spec;
  spec.task = n_classes > 2 ? Task::MultiClassification : Task::BinaryClassification;
  spec.n_classes = n_classes;
  spec.n_rows = min_rows + rng.uniform_index(700);
  spec.n_features = 3 + static_cast<int>(rng.uniform_index(8));
  spec.categorical_fraction = rng.uniform(0.0, 0.4);
  spec.missing_fraction = rng.uniform(0.0, 0.2);
  spec.seed = rng.next();
  const int max_bin = 15 + static_cast<int>(rng.uniform_index(241));
  return BinnedData(make_classification(spec), max_bin);
}

std::vector<int> all_features(const BinMapper& mapper) {
  std::vector<int> features(mapper.n_features());
  std::iota(features.begin(), features.end(), 0);
  return features;
}

// Split [0, n) into a random nonempty left part and its complement.
void random_partition(Rng& rng, std::size_t n, std::vector<std::uint32_t>& left,
                      std::vector<std::uint32_t>& right) {
  left.clear();
  right.clear();
  const double p = rng.uniform(0.1, 0.9);
  for (std::uint32_t i = 0; i < n; ++i) {
    (rng.bernoulli(p) ? left : right).push_back(i);
  }
  if (left.empty()) left.push_back(right.back()), right.pop_back();
  if (right.empty()) right.push_back(left.back()), left.pop_back();
}

// Dyadic rationals (k/4 with small k) add and subtract exactly in a double,
// so the parent-minus-child identity holds bitwise, not just approximately.
double dyadic(Rng& rng) {
  return static_cast<double>(static_cast<int>(rng.uniform_index(65)) - 32) * 0.25;
}

FLAML_PROP(HistogramProp, SubtractionMatchesDirectBuildExactly, 20) {
  BinnedData bd = random_regression(prop.rng);
  const std::size_t n = bd.data.n_rows();
  std::vector<double> grad(n), hess(n);
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = dyadic(prop.rng);
    hess[i] = std::fabs(dyadic(prop.rng)) + 0.25;
  }
  std::vector<std::uint32_t> parent_rows(n), left, right;
  std::iota(parent_rows.begin(), parent_rows.end(), 0u);
  random_partition(prop.rng, n, left, right);

  const std::vector<int> features = all_features(bd.mapper);
  std::vector<HistEntry> parent, left_hist, right_direct, right_sub;
  build_gradient_histogram(bd.binned, bd.offsets, features, parent_rows.data(),
                           parent_rows.size(), grad, hess, parent);
  build_gradient_histogram(bd.binned, bd.offsets, features, left.data(),
                           left.size(), grad, hess, left_hist);
  build_gradient_histogram(bd.binned, bd.offsets, features, right.data(),
                           right.size(), grad, hess, right_direct);

  subtract_gradient_histogram(parent, left_hist, right_sub);
  ASSERT_EQ(right_sub.size(), right_direct.size());
  for (std::size_t i = 0; i < right_sub.size(); ++i) {
    EXPECT_EQ(right_sub[i].g, right_direct[i].g) << "slot " << i;
    EXPECT_EQ(right_sub[i].h, right_direct[i].h) << "slot " << i;
    EXPECT_EQ(right_sub[i].n, right_direct[i].n) << "slot " << i;
  }

  // The in-place variant must agree with the out-of-place one.
  subtract_gradient_histogram_inplace(parent, left_hist);
  for (std::size_t i = 0; i < parent.size(); ++i) {
    EXPECT_EQ(parent[i].g, right_sub[i].g);
    EXPECT_EQ(parent[i].h, right_sub[i].h);
    EXPECT_EQ(parent[i].n, right_sub[i].n);
  }
}

FLAML_PROP(HistogramProp, SubtractionNearDirectBuildForArbitraryFloats, 10) {
  BinnedData bd = random_regression(prop.rng);
  const std::size_t n = bd.data.n_rows();
  std::vector<double> grad(n), hess(n);
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = prop.rng.normal();
    hess[i] = prop.rng.uniform(1e-3, 2.0);
  }
  std::vector<std::uint32_t> parent_rows(n), left, right;
  std::iota(parent_rows.begin(), parent_rows.end(), 0u);
  random_partition(prop.rng, n, left, right);

  const std::vector<int> features = all_features(bd.mapper);
  std::vector<HistEntry> parent, left_hist, right_direct, right_sub;
  build_gradient_histogram(bd.binned, bd.offsets, features, parent_rows.data(),
                           parent_rows.size(), grad, hess, parent);
  build_gradient_histogram(bd.binned, bd.offsets, features, left.data(),
                           left.size(), grad, hess, left_hist);
  build_gradient_histogram(bd.binned, bd.offsets, features, right.data(),
                           right.size(), grad, hess, right_direct);
  subtract_gradient_histogram(parent, left_hist, right_sub);
  for (std::size_t i = 0; i < right_sub.size(); ++i) {
    EXPECT_NEAR(right_sub[i].g, right_direct[i].g, 1e-9 * static_cast<double>(n));
    EXPECT_NEAR(right_sub[i].h, right_direct[i].h, 1e-9 * static_cast<double>(n));
    EXPECT_EQ(right_sub[i].n, right_direct[i].n);
  }
}

FLAML_PROP(HistogramProp, ClassRemoveRowsMatchesDirectBuildExactly, 15) {
  const int k = 2 + static_cast<int>(prop.rng.uniform_index(3));
  BinnedData bd = random_classification(prop.rng, k);
  const std::size_t n = bd.data.n_rows();
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(bd.data.label(i));
  }
  // Dyadic positive weights keep every sum exact; empty = unweighted path.
  std::vector<double> weights;
  if (prop.rng.bernoulli(0.5)) {
    weights.resize(n);
    for (double& w : weights) w = std::fabs(dyadic(prop.rng)) + 0.25;
  }
  std::vector<std::uint32_t> parent_rows(n), left, right;
  std::iota(parent_rows.begin(), parent_rows.end(), 0u);
  random_partition(prop.rng, n, left, right);

  std::vector<double> parent, right_direct;
  build_class_histogram(bd.binned, bd.offsets, k, parent_rows.data(),
                        parent_rows.size(), labels, weights, parent);
  build_class_histogram(bd.binned, bd.offsets, k, right.data(), right.size(),
                        labels, weights, right_direct);
  remove_rows_from_class_histogram(bd.binned, bd.offsets, k, left.data(),
                                   left.size(), labels, weights, parent);
  ASSERT_EQ(parent.size(), right_direct.size());
  for (std::size_t i = 0; i < parent.size(); ++i) {
    EXPECT_EQ(parent[i], right_direct[i]) << "slot " << i;
  }
}

FLAML_PROP(HistogramProp, CompactSliceMatchesFullHistogram, 15) {
  // The small-leaf path gathers one feature's counts on demand instead of
  // retaining a full histogram; both layouts must agree cell for cell.
  const int k = 2 + static_cast<int>(prop.rng.uniform_index(3));
  BinnedData bd = random_classification(prop.rng, k);
  const std::size_t n = bd.data.n_rows();
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(bd.data.label(i));
  }
  std::vector<double> weights;
  if (prop.rng.bernoulli(0.5)) {
    weights.resize(n);
    for (double& w : weights) w = std::fabs(dyadic(prop.rng)) + 0.25;
  }
  // A random small subset of rows — the leaves that skip histograms.
  std::vector<std::uint32_t> rows;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (prop.rng.bernoulli(0.2)) rows.push_back(i);
  }
  if (rows.empty()) rows.push_back(0);

  std::vector<double> full;
  build_class_histogram(bd.binned, bd.offsets, k, rows.data(), rows.size(),
                        labels, weights, full);
  std::vector<double> compact;
  for (std::size_t f = 0; f < bd.mapper.n_features(); ++f) {
    const int n_bins = bd.mapper.feature(f).n_bins();
    fill_feature_class_counts(bd.binned.feature(f), n_bins, k, rows.data(),
                              rows.size(), labels, weights, compact);
    const double* slice = full.data() + bd.offsets[f] * static_cast<std::size_t>(k);
    for (std::size_t cell = 0;
         cell < static_cast<std::size_t>(n_bins) * static_cast<std::size_t>(k);
         ++cell) {
      EXPECT_EQ(compact[cell], slice[cell]) << "feature " << f << " cell " << cell;
    }
  }
}

FLAML_PROP(HistogramProp, ParallelGradientBuildBitIdentical, 10) {
  // Rows >= 512 so the build actually engages the pool (the gate is
  // data-dependent, not thread-dependent).
  BinnedData bd = random_regression(prop.rng, /*min_rows=*/512);
  const std::size_t n = bd.data.n_rows();
  std::vector<double> grad(n), hess(n);
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = prop.rng.normal();
    hess[i] = prop.rng.uniform(1e-3, 2.0);
  }
  std::vector<std::uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0u);
  const std::vector<int> features = all_features(bd.mapper);

  std::vector<HistEntry> serial;
  build_gradient_histogram(bd.binned, bd.offsets, features, rows.data(), n,
                           grad, hess, serial);
  for (int n_threads : {2, 4, 8}) {
    std::vector<HistEntry> parallel;
    build_gradient_histogram(bd.binned, bd.offsets, features, rows.data(), n,
                             grad, hess, parallel,
                             HistParallel{&shared_pool(), n_threads});
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].g, serial[i].g) << "n_threads " << n_threads;
      EXPECT_EQ(parallel[i].h, serial[i].h) << "n_threads " << n_threads;
      EXPECT_EQ(parallel[i].n, serial[i].n) << "n_threads " << n_threads;
    }
  }
}

FLAML_PROP(HistogramProp, ParallelClassBuildBitIdentical, 10) {
  const int k = 2 + static_cast<int>(prop.rng.uniform_index(3));
  BinnedData bd = random_classification(prop.rng, k, /*min_rows=*/512);
  const std::size_t n = bd.data.n_rows();
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(bd.data.label(i));
  }
  std::vector<double> weights;
  if (prop.rng.bernoulli(0.5)) {
    weights.resize(n);
    for (double& w : weights) w = prop.rng.uniform(0.1, 2.0);
  }
  std::vector<std::uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0u);

  std::vector<double> serial;
  build_class_histogram(bd.binned, bd.offsets, k, rows.data(), n, labels,
                        weights, serial);
  for (int n_threads : {2, 4, 8}) {
    std::vector<double> parallel;
    build_class_histogram(bd.binned, bd.offsets, k, rows.data(), n, labels,
                          weights, parallel,
                          HistParallel{&shared_pool(), n_threads});
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i]) << "n_threads " << n_threads;
    }
  }
}

}  // namespace
}  // namespace flaml
