// Sample-weight support across the learners: a heavily up-weighted subset
// must dominate training while metrics stay unweighted.
#include <gtest/gtest.h>

#include "boosting/gbdt.h"
#include "data/generators.h"
#include "forest/forest.h"
#include "linear/linear_model.h"
#include "metrics/metrics.h"

namespace flaml {
namespace {

// Two clusters with CONTRADICTORY labels in overlapping x-region; the
// up-weighted group decides the learned boundary.
Dataset conflicted_binary(double weight_group_a) {
  Dataset data(Task::BinaryClassification, {{"x", ColumnType::Numeric, 0}});
  std::vector<float> x;
  std::vector<double> y, w;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    float v = static_cast<float>(rng.normal());
    // group A says: label = (x > 0); group B says the opposite.
    x.push_back(v);
    y.push_back(v > 0 ? 1.0 : 0.0);
    w.push_back(weight_group_a);
    x.push_back(v);
    y.push_back(v > 0 ? 0.0 : 1.0);
    w.push_back(1.0);
  }
  data.set_column(0, std::move(x));
  data.set_labels(std::move(y));
  data.set_weights(std::move(w));
  data.validate();
  return data;
}

// Accuracy of "label = (x > 0)" convention on predictions.
double group_a_agreement(const Predictions& pred, const Dataset& data) {
  int agree = 0, total = 0;
  for (std::size_t i = 0; i < pred.n_rows(); i += 2) {  // group A rows are even
    double x = data.value(i, 0);
    int predicted = pred.prob(i, 1) >= 0.5 ? 1 : 0;
    int group_a_label = x > 0 ? 1 : 0;
    agree += predicted == group_a_label ? 1 : 0;
    ++total;
  }
  return static_cast<double>(agree) / total;
}

TEST(SampleWeights, DatasetValidation) {
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0}});
  data.set_column(0, {1.0f, 2.0f});
  data.set_labels({1.0, 2.0});
  data.set_weights({1.0});  // wrong length
  EXPECT_THROW(data.validate(), InvalidArgument);
  data.set_weights({1.0, -1.0});  // non-positive
  EXPECT_THROW(data.validate(), InvalidArgument);
  data.set_weights({1.0, 2.5});
  EXPECT_NO_THROW(data.validate());
  EXPECT_DOUBLE_EQ(data.weight(1), 2.5);
  EXPECT_DOUBLE_EQ(Dataset(Task::Regression, {{"y", ColumnType::Numeric, 0}}).weight(0),
                   1.0);
}

TEST(SampleWeights, ViewAndMaterializePropagate) {
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0}});
  data.set_column(0, {1.0f, 2.0f, 3.0f});
  data.set_labels({1, 2, 3});
  data.set_weights({1.0, 2.0, 3.0});
  DataView view(data, {2, 0});
  auto w = view.weights();
  EXPECT_DOUBLE_EQ(w[0], 3.0);
  EXPECT_DOUBLE_EQ(w[1], 1.0);
  Dataset copy = materialize(view);
  EXPECT_TRUE(copy.has_weights());
  EXPECT_DOUBLE_EQ(copy.weight(0), 3.0);
}

TEST(SampleWeights, GbdtFollowsUpweightedGroup) {
  Dataset data = conflicted_binary(20.0);
  GBDTParams params;
  params.n_trees = 20;
  params.max_leaves = 7;
  GBDTModel model = train_gbdt(DataView(data), nullptr, params);
  EXPECT_GT(group_a_agreement(model.predict(DataView(data)), data), 0.9);
}

TEST(SampleWeights, GbdtBalancedWeightsStayAmbivalent) {
  Dataset data = conflicted_binary(1.0);
  GBDTParams params;
  params.n_trees = 20;
  params.max_leaves = 7;
  GBDTModel model = train_gbdt(DataView(data), nullptr, params);
  Predictions pred = model.predict(DataView(data));
  // With perfectly contradictory evidence every probability stays near 0.5.
  for (std::size_t i = 0; i < pred.n_rows(); ++i) {
    EXPECT_NEAR(pred.prob(i, 1), 0.5, 0.2);
  }
}

TEST(SampleWeights, ForestClassificationFollowsUpweightedGroup) {
  Dataset data = conflicted_binary(20.0);
  ForestParams params;
  params.n_trees = 15;
  ForestModel model = train_forest(DataView(data), params);
  EXPECT_GT(group_a_agreement(model.predict(DataView(data)), data), 0.85);
}

TEST(SampleWeights, ForestRegressionWeightedMean) {
  // Same x for all rows, conflicting targets 0 and 12 with weights 3:1:
  // the single-leaf prediction must be the weighted mean 9.
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0}});
  std::vector<float> x(100, 1.0f);
  std::vector<double> y, w;
  for (int i = 0; i < 100; ++i) {
    y.push_back(i % 2 == 0 ? 12.0 : 0.0);
    w.push_back(i % 2 == 0 ? 3.0 : 1.0);
  }
  data.set_column(0, std::move(x));
  data.set_labels(std::move(y));
  data.set_weights(std::move(w));
  ForestParams params;
  params.n_trees = 3;
  params.extra_trees = true;  // no bootstrap: deterministic mean
  ForestModel model = train_forest(DataView(data), params);
  Predictions pred = model.predict(DataView(data));
  EXPECT_NEAR(pred.values[0], 9.0, 1e-6);
}

TEST(SampleWeights, LinearFollowsUpweightedGroup) {
  Dataset data = conflicted_binary(25.0);
  LinearParams params;
  params.c = 10.0;
  LinearModel model = train_linear(DataView(data), params);
  EXPECT_GT(group_a_agreement(model.predict(DataView(data)), data), 0.9);
}

TEST(SampleWeights, UniformWeightsMatchUnweighted) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 300;
  spec.n_features = 5;
  spec.seed = 9;
  Dataset plain = make_classification(spec);
  Dataset weighted = make_classification(spec);
  weighted.set_weights(std::vector<double>(300, 1.0));
  GBDTParams params;
  params.n_trees = 10;
  params.seed = 77;
  GBDTModel a = train_gbdt(DataView(plain), nullptr, params);
  GBDTModel b = train_gbdt(DataView(weighted), nullptr, params);
  EXPECT_EQ(a.to_string(), b.to_string());
}

}  // namespace
}  // namespace flaml
