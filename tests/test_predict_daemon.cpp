// Differential suite for the prediction daemon (src/serve/predict_daemon.h)
// and its wire service: micro-batched serving must be BIT-identical to
// direct CompiledModel::predict_many for every batch window, thread count
// and request interleaving (whole requests are never split, and per-row
// computation is row-independent); hot swap must atomically move every
// subsequent reply to the new generation; corrupt artifacts and malformed
// requests must produce typed rejects that never take the daemon down.
#include "serve/predict_daemon.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.h"
#include "data/csv.h"
#include "data/generators.h"
#include "learners/registry.h"
#include "observe/trace.h"
#include "observe/trace_check.h"
#include "serve/predict_service.h"

namespace flaml {
namespace {

using serve::CompiledModel;
using serve::PredictDaemon;
using serve::PredictDaemonOptions;
using serve::PredictService;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void expect_bits_equal(const Predictions& a, const Predictions& b,
                       const std::string& what) {
  ASSERT_EQ(static_cast<int>(a.task), static_cast<int>(b.task)) << what;
  ASSERT_EQ(a.n_classes, b.n_classes) << what;
  ASSERT_EQ(a.values.size(), b.values.size()) << what;
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.values[i]),
              std::bit_cast<std::uint64_t>(b.values[i]))
        << what << ": value " << i << " differs (" << a.values[i] << " vs "
        << b.values[i] << ")";
  }
}

// Train one zoo learner and compile it, exactly as a deployment would:
// through the text save format.
CompiledModel train_compiled(const std::string& learner_name, Task task,
                             std::uint64_t seed) {
  SyntheticSpec spec;
  spec.task = task;
  spec.n_rows = 200;
  spec.n_features = 6;
  spec.n_classes = task == Task::MultiClassification ? 3 : 2;
  spec.missing_fraction = 0.1;
  spec.seed = seed;
  const Dataset data = make_synthetic(spec);
  for (const LearnerPtr& learner : builtin_learners()) {
    if (learner->name() != learner_name) continue;
    Config config =
        learner->space(task, data.n_rows()).initial_config();
    if (config.count("tree_num")) config["tree_num"] = 10;
    TrainContext ctx;
    ctx.train = DataView(data);
    ctx.seed = 7;
    ctx.n_threads = 1;
    std::unique_ptr<Model> model = learner->train(ctx, config);
    std::ostringstream saved;
    model->save(saved);
    std::istringstream in(saved.str());
    return serve::compile_saved(in);
  }
  throw InvalidArgument("no such learner: " + learner_name);
}

std::string write_artifact(const CompiledModel& model, const std::string& name) {
  const std::string path = tmp_path(name);
  model.save_file(path);
  return path;
}

// Deterministic request rows with the model's exact width, NaN cells
// included (seeded LCG, no global state).
std::vector<std::vector<float>> make_rows(std::size_t n_rows, std::size_t width,
                                          std::uint64_t seed) {
  std::vector<std::vector<float>> rows(n_rows, std::vector<float>(width));
  std::uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (auto& row : rows) {
    for (float& v : row) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint32_t bits = static_cast<std::uint32_t>(state >> 33);
      if (bits % 13 == 0) {
        v = std::numeric_limits<float>::quiet_NaN();
      } else {
        v = static_cast<float>(bits % 1000) / 100.0f - 5.0f;
      }
    }
  }
  return rows;
}

// Reference: the same rows scored directly, outside the daemon.
Dataset rows_to_dataset(const std::vector<std::vector<float>>& rows) {
  const std::size_t width = rows.empty() ? 0 : rows[0].size();
  Dataset data(Task::Regression, std::vector<ColumnInfo>(width, ColumnInfo{}));
  for (std::size_t c = 0; c < width; ++c) {
    std::vector<float> column(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) column[r] = rows[r][c];
    data.set_column(c, std::move(column));
  }
  data.set_labels(std::vector<double>(rows.size(), 0.0));
  return data;
}

Predictions direct_predict(const CompiledModel& model,
                           const std::vector<std::vector<float>>& rows) {
  const Dataset data = rows_to_dataset(rows);
  return model.predict_many(DataView(data), 1);
}

// The headline contract: concurrent requests, batched however the window
// slices them, must come back bit-identical to direct predict_many.
void check_batched_differential(const CompiledModel& model,
                                const std::string& artifact,
                                std::size_t max_batch_rows, double delay_ms,
                                int n_threads, const std::string& what) {
  PredictDaemonOptions options;
  options.max_batch_rows = max_batch_rows;
  options.max_batch_delay_ms = delay_ms;
  options.n_threads = n_threads;
  PredictDaemon daemon(options);
  daemon.load(artifact);

  const std::size_t kRequests = 8;
  std::vector<std::vector<std::vector<float>>> requests;
  for (std::size_t i = 0; i < kRequests; ++i) {
    // Mixed sizes: single rows, mid-size, and one larger than most windows.
    const std::size_t n_rows = i % 3 == 0 ? 1 : (i % 3 == 1 ? 9 : 40);
    requests.push_back(make_rows(n_rows, model.n_features(), 1000 + i));
  }

  std::vector<PredictDaemon::Reply> replies(kRequests);
  std::vector<std::thread> clients;
  clients.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    clients.emplace_back(
        [&, i] { replies[i] = daemon.predict(requests[i]); });
  }
  for (auto& t : clients) t.join();

  for (std::size_t i = 0; i < kRequests; ++i) {
    expect_bits_equal(direct_predict(model, requests[i]), replies[i].pred,
                      what + " request " + std::to_string(i));
    EXPECT_EQ(replies[i].generation, 1u) << what;
    EXPECT_GE(replies[i].batch_rows, requests[i].size()) << what;
  }
}

TEST(PredictDaemon, BatchedBitIdenticalAcrossWindowsAndThreads) {
  const CompiledModel model = train_compiled("lgbm", Task::Regression, 0xA1);
  const std::string artifact = write_artifact(model, "daemon_reg.bin");
  for (const std::size_t window : {std::size_t{1}, std::size_t{16},
                                   std::size_t{64}, std::size_t{100000}}) {
    for (const int threads : {1, 3}) {
      check_batched_differential(
          model, artifact, window, window == 100000 ? 25.0 : 2.0, threads,
          "window=" + std::to_string(window) +
              " threads=" + std::to_string(threads));
    }
  }
}

TEST(PredictDaemon, ClassificationProbabilitiesBatchBitIdentical) {
  for (const Task task : {Task::BinaryClassification, Task::MultiClassification}) {
    const CompiledModel model = train_compiled("lgbm", task, 0xB2);
    const std::string artifact =
        write_artifact(model, std::string("daemon_cls_") + task_name(task) + ".bin");
    check_batched_differential(model, artifact, 64, 10.0, 2,
                               std::string("cls ") + task_name(task));
  }
}

TEST(PredictDaemon, ForestAndLinearModelsServe) {
  for (const char* learner : {"rf", "lr"}) {
    const CompiledModel model =
        train_compiled(learner, Task::BinaryClassification, 0xC3);
    const std::string artifact =
        write_artifact(model, std::string("daemon_") + learner + ".bin");
    check_batched_differential(model, artifact, 32, 5.0, 2, learner);
  }
}

TEST(PredictDaemon, SwapMovesEveryLaterReplyToTheNewGeneration) {
  const CompiledModel a = train_compiled("lgbm", Task::Regression, 1);
  const CompiledModel b = train_compiled("lgbm", Task::Regression, 2);
  const std::string path_a = write_artifact(a, "daemon_swap_a.bin");
  const std::string path_b = write_artifact(b, "daemon_swap_b.bin");

  PredictDaemon daemon;
  EXPECT_FALSE(daemon.loaded());
  const auto info_a = daemon.load(path_a);
  EXPECT_EQ(info_a.generation, 1u);
  EXPECT_EQ(info_a.n_features, a.n_features());

  const auto rows = make_rows(20, a.n_features(), 42);
  const auto before = daemon.predict(rows);
  EXPECT_EQ(before.generation, 1u);
  expect_bits_equal(direct_predict(a, rows), before.pred, "pre-swap");

  const auto info_b = daemon.swap(path_b);
  EXPECT_EQ(info_b.generation, 2u);
  const auto after = daemon.predict(rows);
  EXPECT_EQ(after.generation, 2u);
  expect_bits_equal(direct_predict(b, rows), after.pred, "post-swap");
}

TEST(PredictDaemon, PollReloadSwapsOnlyWhenTheArtifactChanged) {
  const CompiledModel a = train_compiled("lgbm", Task::Regression, 3);
  const CompiledModel b = train_compiled("lgbm", Task::Regression, 4);
  const std::string path = write_artifact(a, "daemon_reload.bin");

  PredictDaemon daemon;
  daemon.load(path);
  EXPECT_FALSE(daemon.poll_reload().has_value());  // unchanged -> no swap

  b.save_file(path);  // atomic rewrite, same path
  const auto swapped = daemon.poll_reload();
  ASSERT_TRUE(swapped.has_value());
  EXPECT_EQ(swapped->generation, 2u);

  const auto rows = make_rows(10, b.n_features(), 7);
  expect_bits_equal(direct_predict(b, rows), daemon.predict(rows).pred,
                    "after reload");
}

TEST(PredictDaemon, CorruptArtifactIsRejectedAndTheOldModelKeepsServing) {
  const CompiledModel model = train_compiled("lgbm", Task::Regression, 5);
  const std::string good = write_artifact(model, "daemon_good.bin");

  // Flip one payload byte: the checksum must catch it.
  std::ifstream in(good, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = buffer.str();
  bytes[bytes.size() - 3] ^= 0x40;
  const std::string bad = tmp_path("daemon_bad.bin");
  std::ofstream(bad, std::ios::binary) << bytes;

  PredictDaemon daemon;
  EXPECT_THROW(daemon.load(bad), SerializationError);
  EXPECT_FALSE(daemon.loaded());

  daemon.load(good);
  EXPECT_THROW(daemon.swap(bad), SerializationError);
  EXPECT_THROW(daemon.load(tmp_path("daemon_missing.bin")), std::exception);

  // Still generation 1, still serving the good model.
  EXPECT_EQ(daemon.info().generation, 1u);
  const auto rows = make_rows(5, model.n_features(), 9);
  expect_bits_equal(direct_predict(model, rows), daemon.predict(rows).pred,
                    "after rejected swap");
}

TEST(PredictDaemon, TypedRejectsForBadRequests) {
  const CompiledModel model = train_compiled("lgbm", Task::Regression, 6);
  const std::string artifact = write_artifact(model, "daemon_rejects.bin");

  PredictDaemon daemon;
  EXPECT_THROW(daemon.predict(make_rows(1, 6, 1)), InvalidArgument);  // no model
  EXPECT_THROW(daemon.swap(artifact), InvalidArgument);  // swap before load
  EXPECT_THROW(daemon.info(), InvalidArgument);

  daemon.load(artifact);
  EXPECT_THROW(daemon.predict({}), InvalidArgument);  // empty request
  EXPECT_THROW(daemon.predict(make_rows(2, model.n_features() + 1, 1)),
               InvalidArgument);  // width mismatch
  // The daemon survived all of it.
  EXPECT_EQ(daemon.predict(make_rows(2, model.n_features(), 1)).generation, 1u);
}

TEST(PredictDaemon, DrainAndStats) {
  const CompiledModel model = train_compiled("lgbm", Task::Regression, 7);
  const std::string artifact = write_artifact(model, "daemon_stats.bin");
  PredictDaemon daemon;
  daemon.load(artifact);
  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back(
        [&] { daemon.predict(make_rows(3, model.n_features(), 11)); });
  }
  for (auto& t : clients) t.join();
  daemon.drain();
  const JsonValue stats = daemon.stats();
  EXPECT_EQ(stats.find("queued_requests")->number, 0.0);
  EXPECT_EQ(stats.find("generation")->number, 1.0);
  const JsonValue* counters = stats.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("predict.requests")->number, 4.0);
  EXPECT_EQ(counters->find("predict.rows")->number, 12.0);
  const JsonValue* histograms = stats.find("histograms");
  ASSERT_NE(histograms, nullptr);
  EXPECT_NE(histograms->find("predict.latency_ms"), nullptr);
  EXPECT_NE(histograms->find("predict.batch_rows"), nullptr);
}

TEST(PredictDaemon, EmitsACheckableServingTrace) {
  const CompiledModel a = train_compiled("lgbm", Task::Regression, 8);
  const CompiledModel b = train_compiled("lgbm", Task::Regression, 9);
  const std::string path_a = write_artifact(a, "daemon_trace_a.bin");
  const std::string path_b = write_artifact(b, "daemon_trace_b.bin");

  auto sink = std::make_shared<observe::MemoryTraceSink>();
  {
    PredictDaemonOptions options;
    options.trace_sink = sink;
    PredictDaemon daemon(options);
    daemon.load(path_a);
    daemon.predict(make_rows(4, a.n_features(), 21));
    daemon.swap(path_b);
    daemon.predict(make_rows(4, b.n_features(), 22));
    daemon.drain();
  }
  const auto events = sink->snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().type, "predict_daemon_started");
  EXPECT_EQ(events.back().type, "predict_daemon_shutdown");
  const auto result = observe::check_trace_events(events);
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_EQ(result.by_type.at("predict_model_loaded"), 2u);
  EXPECT_EQ(result.by_type.at("predict_batch"), 2u);
}

// ---- wire service -------------------------------------------------------

class PredictServiceTest : public ::testing::Test {
 protected:
  PredictServiceTest()
      : model_(train_compiled("lgbm", Task::BinaryClassification, 0xD4)),
        artifact_(write_artifact(model_, "service_model.bin")),
        service_(daemon_) {}

  JsonValue request(const std::string& line) {
    return parse_json(service_.handle_line(line));
  }

  static bool ok(const JsonValue& response) {
    const JsonValue* flag = response.find("ok");
    return flag != nullptr && flag->is_bool() && flag->boolean;
  }

  CompiledModel model_;
  std::string artifact_;
  PredictDaemon daemon_;
  PredictService service_;
};

TEST_F(PredictServiceTest, LoadPredictRowsRoundTrip) {
  const JsonValue pong = request(R"({"op":"ping"})");
  EXPECT_TRUE(ok(pong));
  EXPECT_FALSE(pong.find("loaded")->boolean);

  const JsonValue loaded =
      request(R"({"op":"load","artifact":")" + artifact_ + R"("})");
  ASSERT_TRUE(ok(loaded)) << service_.handle_line(R"({"op":"ping"})");
  EXPECT_EQ(loaded.find("model")->find("generation")->number, 1.0);
  EXPECT_EQ(loaded.find("model")->find("kind")->str, "gbdt");

  // One row with a null (missing) cell; compare against the direct path
  // bit-for-bit — the JSON writer emits 17 significant digits.
  std::vector<std::vector<float>> rows =
      make_rows(3, model_.n_features(), 0xE5);
  rows[1][2] = std::numeric_limits<float>::quiet_NaN();
  std::string rows_json = "[";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    rows_json += r ? ",[" : "[";
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c) rows_json += ",";
      if (std::isnan(rows[r][c])) {
        rows_json += "null";
      } else {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.9g", rows[r][c]);
        rows_json += buf;
      }
    }
    rows_json += "]";
  }
  rows_json += "]";

  const JsonValue response =
      request(R"({"op":"predict","rows":)" + rows_json + "}");
  ASSERT_TRUE(ok(response));
  EXPECT_EQ(response.find("generation")->number, 1.0);
  const Predictions reference = direct_predict(model_, rows);
  const JsonValue* values = response.find("values");
  ASSERT_NE(values, nullptr);
  ASSERT_EQ(values->array.size(), rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (int c = 0; c < reference.n_classes; ++c) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(values->array[r].array[c].number),
                std::bit_cast<std::uint64_t>(reference.prob(r, c)))
          << "row " << r << " class " << c;
    }
  }
  ASSERT_NE(response.find("classes"), nullptr);
  EXPECT_EQ(response.find("classes")->array.size(), rows.size());
}

TEST_F(PredictServiceTest, PredictFromUnlabeledCsvUsesEveryColumn) {
  ASSERT_TRUE(ok(request(R"({"op":"load","artifact":")" + artifact_ + R"("})")));
  const auto rows = make_rows(6, model_.n_features(), 0xF6);

  // An UNLABELED file: exactly n_features columns, all of them features.
  // Before the has_label fix the reader would claim the last column as a
  // label and predict on a silently narrowed matrix.
  const std::string csv = tmp_path("service_rows.csv");
  {
    std::ofstream out(csv);
    for (std::size_t c = 0; c < model_.n_features(); ++c) {
      out << (c ? ",f" : "f") << c;
    }
    out << "\n";
    for (const auto& row : rows) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c) out << ',';
        write_csv_value(out, row[c]);
      }
      out << '\n';
    }
  }

  const JsonValue response = request(R"({"op":"predict","csv":")" + csv + R"("})");
  ASSERT_TRUE(ok(response)) << dump_json_compact(response);
  const Predictions reference = direct_predict(model_, rows);
  const JsonValue* values = response.find("values");
  ASSERT_EQ(values->array.size(), rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(values->array[r].array[0].number),
        std::bit_cast<std::uint64_t>(reference.prob(r, 0)))
        << "row " << r;
  }
}

TEST_F(PredictServiceTest, TypedErrorsNeverTearDownTheStream) {
  EXPECT_FALSE(ok(request("this is not json")));
  EXPECT_FALSE(ok(request(R"({"op":"warp"})")));
  EXPECT_FALSE(ok(request(R"({"op":"predict","rows":[[1]]})")));  // no model
  EXPECT_FALSE(ok(request(R"({"op":"swap","artifact":"x"})")));   // before load
  EXPECT_FALSE(ok(request(R"({"op":"load"})")));                  // no artifact
  ASSERT_TRUE(ok(request(R"({"op":"load","artifact":")" + artifact_ + R"("})")));
  // rows and csv are mutually exclusive; rows must be arrays of numbers.
  EXPECT_FALSE(ok(request(R"({"op":"predict","rows":[[1]],"csv":"x"})")));
  EXPECT_FALSE(ok(request(R"({"op":"predict","rows":[["a"]]})")));
  EXPECT_FALSE(ok(request(R"({"op":"predict","rows":[]})")));
  // The service survived all of it.
  EXPECT_TRUE(ok(request(R"({"op":"stats"})")));
  const JsonValue bye = request(R"({"op":"shutdown"})");
  EXPECT_TRUE(ok(bye));
  EXPECT_TRUE(service_.shutdown_requested());
}

TEST_F(PredictServiceTest, DrainAndStatsOps) {
  ASSERT_TRUE(ok(request(R"({"op":"load","artifact":")" + artifact_ + R"("})")));
  ASSERT_TRUE(ok(request(R"({"op":"predict","rows":[[1,2,3,4,5,6]]})")));
  EXPECT_TRUE(ok(request(R"({"op":"drain"})")));
  const JsonValue stats = request(R"({"op":"stats"})");
  ASSERT_TRUE(ok(stats));
  EXPECT_EQ(stats.find("stats")->find("generation")->number, 1.0);
  const JsonValue reload = request(R"({"op":"reload"})");
  ASSERT_TRUE(ok(reload));
  EXPECT_FALSE(reload.find("swapped")->boolean);
}

}  // namespace
}  // namespace flaml
