#include "selest/harness.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flaml::selest {
namespace {

TEST(Tables, ShapesAndDeterminism) {
  for (TableFamily family : {TableFamily::Forest, TableFamily::Power,
                             TableFamily::Tpch, TableFamily::Higgs,
                             TableFamily::Weather}) {
    Table a = make_table(family, 500, 3, 9);
    EXPECT_EQ(a.n_rows(), 500u);
    EXPECT_EQ(a.n_cols(), 3u);
    Table b = make_table(family, 500, 3, 9);
    EXPECT_DOUBLE_EQ(a.columns[0][0], b.columns[0][0]);
    for (const auto& col : a.columns) {
      for (double v : col) EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(Tables, PowerIsHeavyTailed) {
  Table t = make_table(TableFamily::Power, 20000, 1, 3);
  double max_v = 0.0, sum = 0.0;
  for (double v : t.columns[0]) {
    max_v = std::max(max_v, v);
    sum += v;
  }
  double mean = sum / 20000.0;
  EXPECT_GT(max_v, mean * 10.0);  // heavy tail: max far above mean
}

TEST(Tables, FamilyNames) {
  EXPECT_STREQ(family_name(TableFamily::Forest), "Forest");
  EXPECT_STREQ(family_name(TableFamily::Tpch), "TPCH");
}

TEST(Workload, CountMatchesBruteForceDefinition) {
  Table t = make_table(TableFamily::Forest, 300, 2, 5);
  RangeQuery q;
  q.lo = {-1.0, -std::numeric_limits<double>::infinity()};
  q.hi = {1.0, std::numeric_limits<double>::infinity()};
  std::size_t expected = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    double v = t.columns[0][i];
    if (v >= -1.0 && v <= 1.0) ++expected;
  }
  EXPECT_EQ(count_matches(t, q), expected);
}

TEST(Workload, GeneratedQueriesAreLabeled) {
  Table t = make_table(TableFamily::Forest, 400, 3, 7);
  WorkloadOptions options;
  options.n_queries = 100;
  auto queries = make_workload(t, options);
  ASSERT_EQ(queries.size(), 100u);
  for (const auto& q : queries) {
    EXPECT_EQ(count_matches(t, q), q.count);
    EXPECT_LE(q.count, 400u);
  }
}

TEST(Workload, SelectivitiesAreSkewed) {
  Table t = make_table(TableFamily::Forest, 1000, 3, 11);
  WorkloadOptions options;
  options.n_queries = 300;
  auto queries = make_workload(t, options);
  std::size_t narrow = 0, wide = 0;
  for (const auto& q : queries) {
    if (q.count < 10) ++narrow;
    if (q.count > 300) ++wide;
  }
  EXPECT_GT(narrow, 10u);  // both tails populated
  EXPECT_GE(wide, 5u);
}

TEST(Workload, DatasetEncodesBoundsAndLogLabels) {
  Table t = make_table(TableFamily::Power, 300, 2, 13);
  WorkloadOptions options;
  options.n_queries = 50;
  auto queries = make_workload(t, options);
  Dataset data = workload_to_dataset(t, queries);
  EXPECT_EQ(data.n_rows(), 50u);
  EXPECT_EQ(data.n_cols(), 4u);  // lo/hi per dimension
  for (std::size_t i = 0; i < 50; ++i) {
    double expected = std::log(static_cast<double>(std::max<std::size_t>(queries[i].count, 1)));
    EXPECT_NEAR(data.label(i), expected, 1e-9);
  }
}

TEST(Workload, CardinalityHelpers) {
  std::vector<double> logs{0.0, std::log(100.0), -5.0};
  auto cards = predicted_cardinalities(logs);
  EXPECT_DOUBLE_EQ(cards[0], 1.0);
  EXPECT_NEAR(cards[1], 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(cards[2], 1.0);  // floored
}

TEST(Harness, Table4InstanceListComplete) {
  auto instances = table4_instances();
  ASSERT_EQ(instances.size(), 10u);
  EXPECT_EQ(instances.front().name, "2D-Forest");
  EXPECT_EQ(instances.back().name, "10D-Forest");
  EXPECT_EQ(instances.back().n_dims, 10);
}

TEST(Harness, ManualConfigurationRuns) {
  SelestInstance instance;
  instance.name = "test-2d";
  instance.family = TableFamily::Forest;
  instance.n_dims = 2;
  instance.table_rows = 2000;
  instance.train_queries = 300;
  instance.test_queries = 100;
  instance.seed = 5;
  SelestData data = make_selest_data(instance);
  EXPECT_EQ(data.train.n_rows(), 300u);
  EXPECT_EQ(data.test.n_rows(), 100u);
  SelestResult manual = run_manual(data, 1);
  EXPECT_GE(manual.q95, 1.0);
  EXPECT_LT(manual.q95, 1000.0);
}

TEST(Harness, FlamlBeatsTrivialQError) {
  SelestInstance instance;
  instance.name = "test-2d";
  instance.family = TableFamily::Forest;
  instance.n_dims = 2;
  instance.table_rows = 2000;
  instance.train_queries = 400;
  instance.test_queries = 100;
  instance.seed = 6;
  SelestData data = make_selest_data(instance);
  SelestResult result = run_flaml(data, 1.0, 3);
  EXPECT_GE(result.q95, 1.0);
  // A constant predictor would have q95 in the hundreds on this workload;
  // any learned model must be far better.
  EXPECT_LT(result.q95, 100.0);
  EXPECT_GT(result.search_seconds, 0.0);
}

}  // namespace
}  // namespace flaml::selest
