#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace flaml {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SizeAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, SubmitAfterShutdownThrowsTypedError) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_TRUE(pool.stopped());
  EXPECT_THROW(pool.submit([] { return 1; }), PoolStopped);
  // PoolStopped refines InvalidArgument, so existing catch sites still work.
  try {
    pool.submit([] { return 1; });
    FAIL() << "submit() on a stopped pool must throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("stopped"), std::string::npos);
  }
}

TEST(ThreadPool, TrySubmitAfterShutdownReturnsEmpty) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.stopped());
  auto before = pool.try_submit([] { return 7; });
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->get(), 7);
  pool.shutdown();
  auto after = pool.try_submit([] { return 7; });
  EXPECT_FALSE(after.has_value());
}

TEST(ThreadPool, WorkerCanTrySubmitFollowUpWork) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  // A worker task enqueueing onto its own pool — the pattern the search
  // daemon's segment tasks use. While the pool is live it must succeed.
  auto outer = pool.submit([&] {
    auto inner = pool.try_submit([&] { ran.fetch_add(1); });
    EXPECT_TRUE(inner.has_value());
  });
  outer.get();
  pool.shutdown();
  EXPECT_EQ(ran.load(), 1);  // accepted work always runs before join
}

TEST(ThreadPool, ShutdownDrainsAcceptedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
    pool.shutdown();
  }
  EXPECT_EQ(ran.load(), 50);
}

}  // namespace
}  // namespace flaml
