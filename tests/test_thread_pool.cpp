#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace flaml {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SizeAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace flaml
