#include "data/split.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/generators.h"

namespace flaml {
namespace {

Dataset binary_data(std::size_t n, double imbalance = 0.0) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = n;
  spec.n_features = 4;
  spec.imbalance = imbalance;
  spec.seed = 99;
  return make_classification(spec);
}

TEST(Shuffle, IsPermutation) {
  Dataset data = binary_data(200);
  Rng rng(1);
  auto idx = shuffled_indices(data, rng);
  std::set<std::uint32_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 200u);
  EXPECT_EQ(*unique.rbegin(), 199u);
}

TEST(StratifiedShuffle, IsPermutation) {
  Dataset data = binary_data(300);
  Rng rng(2);
  auto idx = stratified_shuffled_indices(data, rng);
  std::set<std::uint32_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 300u);
}

TEST(StratifiedShuffle, PrefixesPreserveClassRatio) {
  Dataset data = binary_data(1000, /*imbalance=*/0.6);
  Rng rng(3);
  auto idx = stratified_shuffled_indices(data, rng);
  double full_pos = 0.0;
  for (std::uint32_t r : idx) full_pos += data.label(r);
  full_pos /= 1000.0;
  for (std::size_t prefix : {50u, 100u, 250u, 500u}) {
    double pos = 0.0;
    for (std::size_t i = 0; i < prefix; ++i) pos += data.label(idx[i]);
    pos /= static_cast<double>(prefix);
    EXPECT_NEAR(pos, full_pos, 0.06) << "prefix " << prefix;
  }
}

TEST(StratifiedShuffle, RejectsRegression) {
  Dataset data = make_friedman1(100, 5, 0.1, 7);
  Rng rng(4);
  EXPECT_THROW(stratified_shuffled_indices(data, rng), InvalidArgument);
}

TEST(TaskShuffle, DispatchesByTask) {
  Dataset reg = make_friedman1(50, 5, 0.1, 7);
  Dataset cls = binary_data(50);
  Rng rng(5);
  EXPECT_EQ(task_shuffled_indices(reg, rng).size(), 50u);
  EXPECT_EQ(task_shuffled_indices(cls, rng).size(), 50u);
}

TEST(Holdout, SplitsAreDisjointAndCover) {
  Dataset data = binary_data(200);
  Rng rng(6);
  auto split = holdout_split(DataView(data), 0.25, rng);
  std::set<std::uint32_t> train(split.train.rows().begin(), split.train.rows().end());
  std::set<std::uint32_t> test(split.test.rows().begin(), split.test.rows().end());
  EXPECT_EQ(train.size() + test.size(), 200u);
  for (std::uint32_t r : test) EXPECT_EQ(train.count(r), 0u);
}

TEST(Holdout, RatioApproximatelyRespected) {
  Dataset data = binary_data(1000);
  Rng rng(7);
  auto split = holdout_split(DataView(data), 0.2, rng);
  EXPECT_NEAR(static_cast<double>(split.test.n_rows()) / 1000.0, 0.2, 0.03);
}

TEST(Holdout, StratifiedForClassification) {
  Dataset data = binary_data(1000, 0.7);
  Rng rng(8);
  auto split = holdout_split(DataView(data), 0.2, rng);
  auto ratio = [&](const DataView& v) {
    double pos = 0.0;
    for (std::size_t i = 0; i < v.n_rows(); ++i) pos += v.label(i);
    return pos / static_cast<double>(v.n_rows());
  };
  EXPECT_NEAR(ratio(split.train), ratio(split.test), 0.05);
}

TEST(Holdout, RejectsBadRatio) {
  Dataset data = binary_data(50);
  Rng rng(9);
  EXPECT_THROW(holdout_split(DataView(data), 0.0, rng), InvalidArgument);
  EXPECT_THROW(holdout_split(DataView(data), 1.0, rng), InvalidArgument);
}

class KFoldTest : public ::testing::TestWithParam<int> {};

TEST_P(KFoldTest, FoldsAreDisjointAndCover) {
  const int k = GetParam();
  Dataset data = binary_data(331);
  Rng rng(10);
  auto folds = kfold_split(DataView(data), k, rng);
  ASSERT_EQ(folds.size(), static_cast<std::size_t>(k));
  std::set<std::uint32_t> all_valid;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.n_rows() + fold.valid.n_rows(), 331u);
    std::set<std::uint32_t> train(fold.train.rows().begin(), fold.train.rows().end());
    for (std::uint32_t r : fold.valid.rows()) {
      EXPECT_EQ(train.count(r), 0u);
      EXPECT_TRUE(all_valid.insert(r).second) << "row in two validation folds";
    }
  }
  EXPECT_EQ(all_valid.size(), 331u);
}

TEST_P(KFoldTest, FoldSizesBalanced) {
  const int k = GetParam();
  Dataset data = binary_data(500);
  Rng rng(11);
  auto folds = kfold_split(DataView(data), k, rng);
  std::size_t min_size = 500, max_size = 0;
  for (const auto& fold : folds) {
    min_size = std::min(min_size, fold.valid.n_rows());
    max_size = std::max(max_size, fold.valid.n_rows());
  }
  EXPECT_LE(max_size - min_size, 2u);
}

INSTANTIATE_TEST_SUITE_P(Ks, KFoldTest, ::testing::Values(2, 3, 5, 10));

TEST(KFold, StratifiedClassBalance) {
  Dataset data = binary_data(600, 0.7);
  Rng rng(12);
  auto folds = kfold_split(DataView(data), 5, rng);
  double full_pos = 0.0;
  for (std::size_t i = 0; i < data.n_rows(); ++i) full_pos += data.label(i);
  full_pos /= static_cast<double>(data.n_rows());
  for (const auto& fold : folds) {
    double pos = 0.0;
    for (std::size_t i = 0; i < fold.valid.n_rows(); ++i) pos += fold.valid.label(i);
    pos /= static_cast<double>(fold.valid.n_rows());
    EXPECT_NEAR(pos, full_pos, 0.05);
  }
}

TEST(KFold, WorksOnSubview) {
  Dataset data = binary_data(100);
  Rng rng(13);
  std::vector<std::uint32_t> rows;
  for (std::uint32_t r = 0; r < 50; ++r) rows.push_back(r * 2);
  auto folds = kfold_split(DataView(data, rows), 5, rng);
  for (const auto& fold : folds) {
    for (std::uint32_t r : fold.valid.rows()) EXPECT_EQ(r % 2, 0u);
  }
}

TEST(KFold, RejectsBadK) {
  Dataset data = binary_data(50);
  Rng rng(14);
  EXPECT_THROW(kfold_split(DataView(data), 1, rng), InvalidArgument);
}

TEST(KFold, RegressionFolds) {
  Dataset data = make_friedman1(120, 6, 0.1, 3);
  Rng rng(15);
  auto folds = kfold_split(DataView(data), 4, rng);
  EXPECT_EQ(folds.size(), 4u);
  std::size_t total = 0;
  for (const auto& fold : folds) total += fold.valid.n_rows();
  EXPECT_EQ(total, 120u);
}

}  // namespace
}  // namespace flaml
