#include "automl/joint_space.h"

#include <gtest/gtest.h>

#include "learners/registry.h"

namespace flaml {
namespace {

TEST(JointSpace, ContainsLearnerChoiceAndPrefixedParams) {
  JointSpace joint(default_learners(Task::BinaryClassification),
                   Task::BinaryClassification, 5000);
  const ConfigSpace& space = joint.space();
  EXPECT_TRUE(space.contains("learner"));
  EXPECT_TRUE(space.contains("lgbm.tree_num"));
  EXPECT_TRUE(space.contains("xgboost.tree_num"));
  EXPECT_TRUE(space.contains("rf.criterion"));
  EXPECT_TRUE(space.contains("lr.C"));
  EXPECT_TRUE(space.contains("catboost.early_stop_rounds"));
}

TEST(JointSpace, SplitRecoversLearnerAndConfig) {
  auto learners = default_learners(Task::BinaryClassification);
  JointSpace joint(learners, Task::BinaryClassification, 5000);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    Config jc = joint.space().random_config(rng);
    auto [idx, config] = joint.split(jc);
    ASSERT_LT(idx, learners.size());
    // The split config must exactly match the learner's own space params.
    ConfigSpace own = learners[idx]->space(Task::BinaryClassification, 5000);
    EXPECT_EQ(config.size(), own.dim());
    for (const auto& p : own.params()) {
      ASSERT_TRUE(config.count(p.name)) << p.name;
    }
  }
}

TEST(JointSpace, SplitValuesComeFromJointConfig) {
  auto learners = default_learners(Task::Regression);
  JointSpace joint(learners, Task::Regression, 1000);
  Config jc = joint.space().initial_config();
  jc["learner"] = 0;  // lgbm
  jc["lgbm.tree_num"] = 77;
  auto [idx, config] = joint.split(jc);
  EXPECT_EQ(learners[idx]->name(), "lgbm");
  EXPECT_DOUBLE_EQ(config.at("tree_num"), 77.0);
}

TEST(JointSpace, RegressionExcludesLr) {
  JointSpace joint(default_learners(Task::Regression), Task::Regression, 1000);
  EXPECT_FALSE(joint.space().contains("lr.C"));
}

TEST(JointSpace, SingleLearnerWorks) {
  std::vector<LearnerPtr> one{builtin_learner("lgbm")};
  JointSpace joint(one, Task::Regression, 1000);
  Config jc = joint.space().initial_config();
  auto [idx, config] = joint.split(jc);
  EXPECT_EQ(idx, 0u);
  EXPECT_TRUE(config.count("tree_num"));
}

TEST(JointSpace, MissingLearnerKeyRejected) {
  JointSpace joint(default_learners(Task::Regression), Task::Regression, 1000);
  Config jc;
  EXPECT_THROW(joint.split(jc), InvalidArgument);
}

}  // namespace
}  // namespace flaml
