#include "learners/registry.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "metrics/metrics.h"

namespace flaml {
namespace {

Dataset tiny(Task task, std::uint64_t seed = 31) {
  SyntheticSpec spec;
  spec.task = task;
  spec.n_classes = task == Task::MultiClassification ? 3 : 2;
  spec.n_rows = 200;
  spec.n_features = 5;
  spec.seed = seed;
  return make_synthetic(spec);
}

TEST(Registry, AllSixBuiltinsPresent) {
  auto all = builtin_learners();
  ASSERT_EQ(all.size(), 6u);
  for (const char* name : {"lgbm", "xgboost", "catboost", "rf", "extra_tree", "lr"}) {
    EXPECT_NO_THROW(builtin_learner(name));
  }
  EXPECT_THROW(builtin_learner("mystery"), InvalidArgument);
}

TEST(Registry, DefaultsExcludeLrForRegression) {
  auto regression = default_learners(Task::Regression);
  EXPECT_EQ(regression.size(), 5u);
  for (const auto& l : regression) EXPECT_NE(l->name(), "lr");
  EXPECT_EQ(default_learners(Task::BinaryClassification).size(), 6u);
}

TEST(Registry, CostMultipliersMatchAppendixConstants) {
  EXPECT_DOUBLE_EQ(builtin_learner("lgbm")->initial_cost_multiplier(), 1.0);
  EXPECT_DOUBLE_EQ(builtin_learner("xgboost")->initial_cost_multiplier(), 1.6);
  EXPECT_DOUBLE_EQ(builtin_learner("extra_tree")->initial_cost_multiplier(), 1.9);
  EXPECT_DOUBLE_EQ(builtin_learner("rf")->initial_cost_multiplier(), 2.0);
  EXPECT_DOUBLE_EQ(builtin_learner("catboost")->initial_cost_multiplier(), 15.0);
  EXPECT_DOUBLE_EQ(builtin_learner("lr")->initial_cost_multiplier(), 160.0);
}

TEST(Spaces, Table5RangesAndInits) {
  // LightGBM: 9 params, tree/leaf capped by min(32768, S), bold inits.
  ConfigSpace lgbm = builtin_learner("lgbm")->space(Task::BinaryClassification, 1000);
  EXPECT_EQ(lgbm.dim(), 9u);
  const ParamDomain& tree = lgbm.param(lgbm.index_of("tree_num"));
  EXPECT_DOUBLE_EQ(tree.hi, 1000.0);  // min(32768, S) with S = 1000
  EXPECT_DOUBLE_EQ(tree.init, 4.0);
  EXPECT_TRUE(tree.cost_related);
  const ParamDomain& mcw = lgbm.param(lgbm.index_of("min_child_weight"));
  EXPECT_DOUBLE_EQ(mcw.lo, 0.01);
  EXPECT_DOUBLE_EQ(mcw.hi, 20.0);
  EXPECT_DOUBLE_EQ(mcw.init, 20.0);  // bold = 20
  EXPECT_TRUE(lgbm.contains("max_bin"));

  ConfigSpace xgb = builtin_learner("xgboost")->space(Task::BinaryClassification, 1000);
  EXPECT_EQ(xgb.dim(), 9u);
  EXPECT_TRUE(xgb.contains("colsample_bylevel"));
  EXPECT_FALSE(xgb.contains("max_bin"));

  ConfigSpace cat = builtin_learner("catboost")->space(Task::Regression, 1000);
  EXPECT_EQ(cat.dim(), 2u);
  const ParamDomain& esr = cat.param(cat.index_of("early_stop_rounds"));
  EXPECT_DOUBLE_EQ(esr.lo, 10.0);
  EXPECT_DOUBLE_EQ(esr.hi, 150.0);
  EXPECT_DOUBLE_EQ(esr.init, 10.0);

  ConfigSpace rf = builtin_learner("rf")->space(Task::BinaryClassification, 100000);
  EXPECT_EQ(rf.dim(), 3u);
  EXPECT_DOUBLE_EQ(rf.param(rf.index_of("tree_num")).hi, 2048.0);  // min(2048, S)
  EXPECT_TRUE(rf.contains("criterion"));

  ConfigSpace rf_reg = builtin_learner("rf")->space(Task::Regression, 100000);
  EXPECT_FALSE(rf_reg.contains("criterion"));  // MSE criterion, not tunable

  ConfigSpace lr = builtin_learner("lr")->space(Task::BinaryClassification, 1000);
  EXPECT_EQ(lr.dim(), 1u);
  EXPECT_DOUBLE_EQ(lr.param(0).lo, 0.03125);
  EXPECT_DOUBLE_EQ(lr.param(0).hi, 32768.0);
}

TEST(Spaces, LrRejectsRegression) {
  EXPECT_FALSE(builtin_learner("lr")->supports(Task::Regression));
  EXPECT_THROW(builtin_learner("lr")->space(Task::Regression, 100), InvalidArgument);
}

class LearnerTrainTest
    : public ::testing::TestWithParam<std::tuple<const char*, Task>> {};

TEST_P(LearnerTrainTest, InitialConfigTrainsAndPredicts) {
  auto [name, task] = GetParam();
  LearnerPtr learner = builtin_learner(name);
  if (!learner->supports(task)) GTEST_SKIP();
  Dataset data = tiny(task);
  ConfigSpace space = learner->space(task, data.n_rows());
  TrainContext ctx;
  ctx.train = DataView(data);
  ctx.seed = 1;
  auto model = learner->train(ctx, space.initial_config());
  Predictions pred = model->predict(DataView(data));
  EXPECT_EQ(pred.n_rows(), data.n_rows());
  if (is_classification(task)) {
    for (std::size_t i = 0; i < pred.n_rows(); ++i) {
      double sum = 0.0;
      for (int c = 0; c < pred.n_classes; ++c) sum += pred.prob(i, c);
      EXPECT_NEAR(sum, 1.0, 1e-6);
    }
  }
}

TEST_P(LearnerTrainTest, RandomConfigsTrainWithoutThrowing) {
  auto [name, task] = GetParam();
  LearnerPtr learner = builtin_learner(name);
  if (!learner->supports(task)) GTEST_SKIP();
  Dataset data = tiny(task, 37);
  ConfigSpace space = learner->space(task, data.n_rows());
  Rng rng(7);
  for (int i = 0; i < 3; ++i) {
    TrainContext ctx;
    ctx.train = DataView(data);
    ctx.seed = static_cast<std::uint64_t>(i);
    ctx.max_seconds = 0.5;  // keep big random configs bounded
    EXPECT_NO_THROW(learner->train(ctx, space.random_config(rng)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, LearnerTrainTest,
    ::testing::Combine(::testing::Values("lgbm", "xgboost", "catboost", "rf",
                                         "extra_tree", "lr"),
                       ::testing::Values(Task::BinaryClassification,
                                         Task::MultiClassification,
                                         Task::Regression)));

}  // namespace
}  // namespace flaml
