#include "metrics/error_metric.h"

#include <gtest/gtest.h>

#include "metrics/scaled_score.h"

namespace flaml {
namespace {

Predictions binary_preds(std::vector<double> prob1) {
  Predictions p;
  p.task = Task::BinaryClassification;
  p.n_classes = 2;
  for (double v : prob1) {
    p.values.push_back(1.0 - v);
    p.values.push_back(v);
  }
  return p;
}

TEST(ErrorMetric, AucErrorIsOneMinusAuc) {
  ErrorMetric metric = ErrorMetric::by_name("auc");
  Predictions p = binary_preds({0.1, 0.9});
  std::vector<double> y{0, 1};
  EXPECT_DOUBLE_EQ(metric(p, y), 0.0);
  Predictions bad = binary_preds({0.9, 0.1});
  EXPECT_DOUBLE_EQ(metric(bad, y), 1.0);
}

TEST(ErrorMetric, DefaultsPerTask) {
  EXPECT_EQ(ErrorMetric::default_for(Task::BinaryClassification).name(), "auc");
  EXPECT_EQ(ErrorMetric::default_for(Task::MultiClassification).name(), "log_loss");
  EXPECT_EQ(ErrorMetric::default_for(Task::Regression).name(), "r2");
}

TEST(ErrorMetric, R2ErrorIsOneMinusR2) {
  ErrorMetric metric = ErrorMetric::by_name("r2");
  Predictions p;
  p.task = Task::Regression;
  p.values = {1.0, 2.0, 3.0};
  std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(metric(p, y), 0.0);
}

TEST(ErrorMetric, MseOnRegression) {
  ErrorMetric metric = ErrorMetric::by_name("mse");
  Predictions p;
  p.task = Task::Regression;
  p.values = {2.0};
  std::vector<double> y{0.0};
  EXPECT_DOUBLE_EQ(metric(p, y), 4.0);
}

TEST(ErrorMetric, TaskMismatchRejected) {
  ErrorMetric metric = ErrorMetric::by_name("mse");
  Predictions p = binary_preds({0.5});
  std::vector<double> y{1};
  EXPECT_THROW(metric(p, y), InvalidArgument);
}

TEST(ErrorMetric, UnknownNameRejected) {
  EXPECT_THROW(ErrorMetric::by_name("nope"), InvalidArgument);
}

TEST(ErrorMetric, CustomMetricCallable) {
  ErrorMetric custom("always_half",
                     [](const Predictions&, const std::vector<double>&) { return 0.5; });
  Predictions p;
  p.task = Task::Regression;
  p.values = {1.0};
  std::vector<double> y{1.0};
  EXPECT_DOUBLE_EQ(custom(p, y), 0.5);
  EXPECT_EQ(custom.name(), "always_half");
}

TEST(ErrorMetric, AccuracyMetric) {
  ErrorMetric metric = ErrorMetric::by_name("accuracy");
  Predictions p = binary_preds({0.9, 0.2});
  std::vector<double> y{1, 1};
  EXPECT_DOUBLE_EQ(metric(p, y), 0.5);
}

TEST(Predictions, Prob1Extraction) {
  Predictions p = binary_preds({0.3, 0.7});
  auto prob1 = p.prob1();
  ASSERT_EQ(prob1.size(), 2u);
  EXPECT_DOUBLE_EQ(prob1[0], 0.3);
  EXPECT_DOUBLE_EQ(prob1[1], 0.7);
  EXPECT_EQ(p.n_rows(), 2u);
}

TEST(Predictions, Prob1RejectedForMulticlass) {
  Predictions p;
  p.task = Task::MultiClassification;
  p.n_classes = 3;
  p.values = {0.2, 0.3, 0.5};
  EXPECT_THROW(p.prob1(), InvalidArgument);
}

TEST(ScaledScore, CalibrationEndpoints) {
  ScoreCalibration cal{0.5, 0.1};
  EXPECT_DOUBLE_EQ(scaled_score(0.5, cal), 0.0);   // prior predictor
  EXPECT_DOUBLE_EQ(scaled_score(0.1, cal), 1.0);   // tuned reference
  EXPECT_GT(scaled_score(0.05, cal), 1.0);         // beats the reference
  EXPECT_LT(scaled_score(0.7, cal), 0.0);          // worse than the prior
}

TEST(ScaledScore, DegenerateCalibrationBounded) {
  ScoreCalibration cal{0.3, 0.3};  // reference no better than prior
  double s = scaled_score(0.2, cal);
  EXPECT_TRUE(std::isfinite(s));
  EXPECT_GT(s, 0.0);
}

TEST(ScaledScore, MonotoneInError) {
  ScoreCalibration cal{0.5, 0.1};
  EXPECT_GT(scaled_score(0.2, cal), scaled_score(0.3, cal));
}

}  // namespace
}  // namespace flaml
