#include "tuners/flow2.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "support/prop.h"

namespace flaml {
namespace {

ConfigSpace box_space(int d) {
  ConfigSpace space;
  for (int i = 0; i < d; ++i) {
    space.add_float("x" + std::to_string(i), 0.0, 1.0, 0.1);
  }
  return space;
}

// Convex objective with minimum at (0.7, ..., 0.7).
double sphere_error(const Config& c, int d) {
  double err = 0.0;
  for (int i = 0; i < d; ++i) {
    double v = c.at("x" + std::to_string(i));
    err += (v - 0.7) * (v - 0.7);
  }
  return err;
}

TEST(Flow2, FirstAskReturnsLowCostInit) {
  ConfigSpace space = box_space(3);
  Flow2 tuner(space, 1);
  Config first = tuner.ask();
  EXPECT_DOUBLE_EQ(first.at("x0"), 0.1);
  EXPECT_DOUBLE_EQ(first.at("x1"), 0.1);
}

TEST(Flow2, ImprovesOnConvexObjective) {
  const int d = 4;
  ConfigSpace space = box_space(d);
  Flow2 tuner(space, 7);
  double first_error = -1.0;
  for (int iter = 0; iter < 400; ++iter) {
    Config c = tuner.ask();
    double err = sphere_error(c, d);
    if (iter == 0) first_error = err;
    tuner.tell(err);
  }
  EXPECT_TRUE(tuner.has_best());
  EXPECT_LT(tuner.best_error(), first_error * 0.2);
}

TEST(Flow2, BackwardDirectionTriedAfterFailure) {
  ConfigSpace space = box_space(2);
  Flow2 tuner(space, 3);
  Config init = tuner.ask();
  tuner.tell(1.0);  // incumbent = init
  Config forward = tuner.ask();
  tuner.tell(2.0);  // worse -> next ask must be the mirrored point
  Config backward = tuner.ask();
  auto zi = space.to_normalized(init);
  auto zf = space.to_normalized(forward);
  auto zb = space.to_normalized(backward);
  for (std::size_t j = 0; j < zi.size(); ++j) {
    // When not clamped, zb - zi == -(zf - zi).
    double fwd_step = zf[j] - zi[j];
    double bwd_step = zb[j] - zi[j];
    if (zf[j] > 0.0 && zf[j] < 1.0 && zb[j] > 0.0 && zb[j] < 1.0) {
      EXPECT_NEAR(bwd_step, -fwd_step, 1e-9);
    }
  }
}

TEST(Flow2, MoveOnImprovement) {
  ConfigSpace space = box_space(2);
  Flow2 tuner(space, 5);
  Config init = tuner.ask();
  tuner.tell(1.0);
  Config proposal = tuner.ask();
  tuner.tell(0.5);  // improvement: incumbent moves to proposal
  EXPECT_EQ(tuner.best_config(), proposal);
  EXPECT_DOUBLE_EQ(tuner.best_error(), 0.5);
}

TEST(Flow2, StepShrinksUnderStallAndConverges) {
  ConfigSpace space = box_space(1);  // stall threshold = 2^0 = 1
  Flow2 tuner(space, 9);
  tuner.set_adaptation(true);
  double initial_step = tuner.step();
  Config c = tuner.ask();
  tuner.tell(0.1);  // incumbent set
  // Everything else fails: step must shrink and eventually converge.
  for (int i = 0; i < 200 && !tuner.converged(); ++i) {
    tuner.ask();
    tuner.tell(1.0);
  }
  EXPECT_TRUE(tuner.converged());
  EXPECT_LT(tuner.step(), initial_step);
  (void)c;
}

TEST(Flow2, NoAdaptationMeansNoConvergence) {
  ConfigSpace space = box_space(1);
  Flow2 tuner(space, 11);
  tuner.set_adaptation(false);  // not at full sample size yet
  tuner.ask();
  tuner.tell(0.1);
  for (int i = 0; i < 300; ++i) {
    tuner.ask();
    tuner.tell(1.0);
  }
  EXPECT_FALSE(tuner.converged());
}

TEST(Flow2, RestartResetsWalk) {
  ConfigSpace space = box_space(2);
  Flow2 tuner(space, 13);
  tuner.ask();
  tuner.tell(0.3);
  double step_before = tuner.step();
  tuner.set_adaptation(true);
  for (int i = 0; i < 100 && !tuner.converged(); ++i) {
    tuner.ask();
    tuner.tell(1.0);
  }
  tuner.restart();
  EXPECT_FALSE(tuner.converged());
  EXPECT_FALSE(tuner.has_best());
  EXPECT_EQ(tuner.n_restarts(), 1);
  EXPECT_GE(tuner.step(), step_before * 0.99);
  // The walk continues from a random point.
  Config after = tuner.ask();
  tuner.tell(0.5);
  EXPECT_TRUE(tuner.has_best());
  EXPECT_EQ(tuner.best_config(), after);
}

// Regression: restart() used to reset best_error_ to 0.0 — a perfect-score
// sentinel. Anyone reading best_error() between the restart and the next
// improvement saw an unbeatable 0.0, so the fresh walk could never register
// a best again. The reset must be +inf, reported through has_best().
TEST(Flow2, RestartThenReadBestErrorIsInfinite) {
  ConfigSpace space = box_space(2);
  Flow2 tuner(space, 27);
  tuner.ask();
  tuner.tell(0.3);
  ASSERT_TRUE(tuner.has_best());
  ASSERT_DOUBLE_EQ(tuner.best_error(), 0.3);

  tuner.restart();
  EXPECT_FALSE(tuner.has_best());
  EXPECT_TRUE(std::isinf(tuner.best_error()));
  EXPECT_GT(tuner.best_error(), 0.0);

  // With the stale 0.0 sentinel, 0.9 would never have counted as an
  // improvement; against +inf it must become the new walk's best.
  Config first = tuner.ask();
  tuner.tell(0.9);
  EXPECT_TRUE(tuner.has_best());
  EXPECT_DOUBLE_EQ(tuner.best_error(), 0.9);
  EXPECT_EQ(tuner.best_config(), first);
}

TEST(Flow2, BestErrorBeforeFirstTellIsInfinite) {
  ConfigSpace space = box_space(2);
  Flow2 tuner(space, 29);
  EXPECT_FALSE(tuner.has_best());
  EXPECT_TRUE(std::isinf(tuner.best_error()));
}

TEST(Flow2, DoubleAskRejected) {
  ConfigSpace space = box_space(2);
  Flow2 tuner(space, 15);
  tuner.ask();
  EXPECT_THROW(tuner.ask(), InternalError);
}

TEST(Flow2, TellWithoutAskRejected) {
  ConfigSpace space = box_space(2);
  Flow2 tuner(space, 17);
  EXPECT_THROW(tuner.tell(0.5), InternalError);
}

TEST(Flow2, UpdateIncumbentErrorReanchors) {
  ConfigSpace space = box_space(2);
  Flow2 tuner(space, 19);
  tuner.ask();
  tuner.tell(0.5);
  tuner.update_incumbent_error(0.8);  // re-evaluated at larger sample size
  EXPECT_DOUBLE_EQ(tuner.best_error(), 0.8);
  // A proposal with error 0.7 (< 0.8) must now count as improvement.
  tuner.ask();
  tuner.tell(0.7);
  EXPECT_DOUBLE_EQ(tuner.best_error(), 0.7);
}

// Cost-bounded proposals: with a cost-related parameter, the first config
// is the cheapest one, and proposal cost grows only progressively (the
// step size bounds the move in normalized space).
TEST(Flow2, ProposalsStartCheapAndMoveGradually) {
  ConfigSpace space;
  space.add_int("tree_num", 4, 32768, 4, true, true);
  space.add_float("learning_rate", 0.01, 1.0, 0.1, true);
  Flow2 tuner(space, 21);
  Config first = tuner.ask();
  EXPECT_DOUBLE_EQ(first.at("tree_num"), 4.0);
  tuner.tell(0.5);
  // Next proposals stay within one step of the incumbent in normalized
  // space: tree_num can grow by at most a factor determined by the step.
  double max_ratio = std::exp(tuner.step() *
                              (std::log(32768.0) - std::log(4.0)));
  for (int i = 0; i < 20; ++i) {
    Config c = tuner.ask();
    EXPECT_LE(c.at("tree_num"), 4.0 * max_ratio * 1.5);
    tuner.tell(1.0);  // never accept: incumbent stays at init
  }
}

TEST(Flow2, StartPointOverridesInit) {
  ConfigSpace space = box_space(2);
  Flow2 tuner(space, 23);
  Config warm;
  warm["x0"] = 0.8;
  warm["x1"] = 0.4;
  tuner.set_start_point(warm);
  Config first = tuner.ask();
  EXPECT_NEAR(first.at("x0"), 0.8, 1e-9);
  EXPECT_NEAR(first.at("x1"), 0.4, 1e-9);
}

TEST(Flow2, StartPointAfterAskRejected) {
  ConfigSpace space = box_space(2);
  Flow2 tuner(space, 25);
  tuner.ask();
  Config warm = space.initial_config();
  EXPECT_THROW(tuner.set_start_point(warm), InvalidArgument);
}

TEST(Flow2, EmptySpaceRejected) {
  ConfigSpace space;
  EXPECT_THROW(Flow2(space, 1), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Seeded property tests (tests/support/prop.h).

// Per-parameter bounds remembered while building a random space, so the
// proposals can be checked without reaching into ConfigSpace internals.
struct ParamBounds {
  double lo = 0.0;
  double hi = 0.0;
  bool integral = false;  // int param or categorical index
};

ConfigSpace random_space(testing::PropCase& prop, std::vector<ParamBounds>& bounds,
                         std::vector<std::string>& names) {
  ConfigSpace space;
  const int d = 1 + static_cast<int>(prop.rng.uniform_index(5));
  for (int i = 0; i < d; ++i) {
    const std::string name = "p" + std::to_string(i);
    names.push_back(name);
    ParamBounds b;
    switch (prop.rng.uniform_index(4)) {
      case 0: {  // linear float
        b.lo = prop.rng.uniform(-10.0, 0.0);
        b.hi = b.lo + prop.rng.uniform(0.5, 20.0);
        space.add_float(name, b.lo, b.hi, prop.rng.uniform(b.lo, b.hi));
        break;
      }
      case 1: {  // log float
        b.lo = prop.rng.uniform(1e-4, 0.1);
        b.hi = b.lo * prop.rng.uniform(10.0, 1e4);
        space.add_float(name, b.lo, b.hi, b.lo, /*log_scale=*/true);
        break;
      }
      case 2: {  // log int, sometimes cost-related
        b.lo = static_cast<double>(1 + prop.rng.uniform_index(4));
        b.hi = b.lo + static_cast<double>(1 + prop.rng.uniform_index(1000));
        b.integral = true;
        space.add_int(name, b.lo, b.hi, b.lo, /*log_scale=*/true,
                      /*cost_related=*/prop.rng.bernoulli(0.5));
        break;
      }
      default: {  // categorical: the Config value is the category index
        const int n = 2 + static_cast<int>(prop.rng.uniform_index(4));
        std::vector<std::string> cats;
        for (int c = 0; c < n; ++c) cats.push_back("c" + std::to_string(c));
        b.lo = 0.0;
        b.hi = static_cast<double>(n - 1);
        b.integral = true;
        space.add_categorical(name, std::move(cats),
                              static_cast<int>(prop.rng.uniform_index(n)));
        break;
      }
    }
    bounds.push_back(b);
  }
  return space;
}

// Every +u / −u proposal — including clamped ones — lands inside the space:
// numeric params within [lo, hi], int and categorical values integral.
FLAML_PROP(Flow2Prop, ProposalsStayInBounds, 40) {
  std::vector<ParamBounds> bounds;
  std::vector<std::string> names;
  ConfigSpace space = random_space(prop, bounds, names);
  Flow2 tuner(space, prop.rng.next());
  tuner.set_adaptation(prop.rng.bernoulli(0.5));
  for (int iter = 0; iter < 60; ++iter) {
    Config c = tuner.ask();
    for (std::size_t j = 0; j < names.size(); ++j) {
      const double v = c.at(names[j]);
      EXPECT_GE(v, bounds[j].lo) << names[j] << " iter " << iter;
      EXPECT_LE(v, bounds[j].hi) << names[j] << " iter " << iter;
      if (bounds[j].integral) {
        EXPECT_DOUBLE_EQ(v, std::round(v)) << names[j] << " iter " << iter;
      }
    }
    tuner.tell(prop.rng.uniform());
  }
}

// The step size decays only after MORE than 2^(d-1) consecutive
// non-improvements (and only while adaptation is on); any improvement resets
// the stall counter. A mirror model predicts on every tell() whether the
// step may shrink, and by how much (reduction ratio clamped to [1.1, 4]).
FLAML_PROP(Flow2Prop, StepDecaysOnlyAfterStallThreshold, 30) {
  const int d = 1 + static_cast<int>(prop.rng.uniform_index(4));
  ConfigSpace space;
  for (int i = 0; i < d; ++i) {
    space.add_float("x" + std::to_string(i), 0.0, 1.0, 0.5);
  }
  Flow2 tuner(space, prop.rng.next());
  const int threshold = std::max(1, 1 << (d - 1));  // matches 2^(d-1)

  bool adapt = true;
  tuner.set_adaptation(adapt);
  int stall = 0;
  double incumbent_error = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < 300; ++iter) {
    if (prop.rng.bernoulli(0.05)) {  // the controller toggles this at sample
      adapt = !adapt;                // growth; the stall rule must respect it
      tuner.set_adaptation(adapt);
    }
    const double before = tuner.step();
    tuner.ask();
    const double error = prop.rng.uniform();
    const bool improved = error < incumbent_error;
    tuner.tell(error);
    const double after = tuner.step();

    if (improved) {
      incumbent_error = error;
      stall = 0;
      EXPECT_DOUBLE_EQ(after, before) << "improvement must not change the step";
    } else {
      // The stall counter always advances; only the SHRINK is gated on
      // adaptation. With adaptation off the counter can sail past the
      // threshold, and the next non-improving tell with adaptation on
      // shrinks immediately.
      ++stall;
      if (adapt && stall > threshold) {
        stall = 0;
        EXPECT_LE(after, before) << "iter " << iter;
        EXPECT_GE(after, before / 4.0 * (1.0 - 1e-12))
            << "shrink ratio above the clamp, iter " << iter;
        if (after == before) {
          // Only possible when the step is pinned at its lower bound.
          EXPECT_TRUE(tuner.converged()) << "iter " << iter;
        }
      } else {
        EXPECT_DOUBLE_EQ(after, before)
            << "early shrink at stall " << stall << "/" << threshold
            << ", iter " << iter;
      }
    }
  }
}

// restart() resets the whole walk: restart count bumps, convergence and best
// clear, and the step returns exactly to its initial value so the fresh walk
// explores at full range again.
FLAML_PROP(Flow2Prop, RestartResetsTheWalk, 25) {
  const int d = 1 + static_cast<int>(prop.rng.uniform_index(4));
  ConfigSpace space;
  for (int i = 0; i < d; ++i) {
    space.add_float("x" + std::to_string(i), 0.0, 1.0, 0.5);
  }
  Flow2 tuner(space, prop.rng.next());
  const double initial_step = tuner.step();

  tuner.ask();
  tuner.tell(0.1);  // set an incumbent, then stall the walk until it shrinks
  for (int i = 0; i < 400 && !(tuner.step() < initial_step); ++i) {
    tuner.ask();
    tuner.tell(1.0);
  }
  ASSERT_LT(tuner.step(), initial_step);
  const int restarts_before = tuner.n_restarts();

  tuner.restart();
  EXPECT_EQ(tuner.n_restarts(), restarts_before + 1);
  EXPECT_FALSE(tuner.converged());
  EXPECT_FALSE(tuner.has_best());
  EXPECT_DOUBLE_EQ(tuner.step(), initial_step);

  // The fresh walk starts from the (random) restart point and works again.
  Config first = tuner.ask();
  for (int i = 0; i < d; ++i) {
    const double v = first.at("x" + std::to_string(i));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  tuner.tell(0.5);
  EXPECT_TRUE(tuner.has_best());
  EXPECT_EQ(tuner.best_config(), first);
}

}  // namespace
}  // namespace flaml
