// Checkpoint/resume unit suite (src/resume): exact component round-trips
// (Rng stream, EciState, Flow2 walk, TrialRunner fingerprint), the
// checksummed container format's corruption detection (truncations, bit
// flips, header tampering — all must surface as SerializationError, never
// UB), kill-at-k crash equivalence at a single boundary (the full
// kill-ANYWHERE sweep lives in tests/stress/stress_resume.cpp), option-
// fingerprint mismatch rejection, the ensemble/"not serializable" error
// path, the best-model blob, and post-fit warm-starting.
#include "resume/checkpoint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "automl/automl.h"
#include "automl/eci.h"
#include "common/error.h"
#include "common/rng.h"
#include "resume/serial_util.h"
#include "support/corruption.h"
#include "support/resume_test_util.h"
#include "tuners/flow2.h"

namespace flaml {
namespace {

using testing::add_resume_lineup;
using testing::arm_kill;
using testing::expect_every_bit_flip_throws;
using testing::expect_every_truncation_throws;
using testing::expect_resumed_equals_reference;
using testing::KillSignal;
using testing::resume_options;
using testing::resume_tiny_binary;
using testing::StubLearner;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Run an interrupted-at-k fit: returns after the KillSignal fired, leaving
// the boundary-k checkpoint at `path`.
void run_killed_fit(AutoML& automl, const Dataset& data, AutoMLOptions options,
                    const std::string& path, std::size_t kill_at) {
  arm_kill(options, path, kill_at);
  add_resume_lineup(automl);
  try {
    automl.fit(data, options);
    FAIL() << "fit was expected to be killed at trial " << kill_at;
  } catch (const KillSignal& kill) {
    EXPECT_EQ(kill.at_iteration, kill_at);
  }
}

// ---------------------------------------------------------------------------
// Component round-trips
// ---------------------------------------------------------------------------

TEST(ResumeSerial, RngStreamRoundTripsThroughJson) {
  Rng original(42);
  for (int i = 0; i < 17; ++i) original.uniform();
  original.normal();  // populate the cached Box-Muller pair

  Rng restored(7);  // deliberately different stream
  resume::restore_rng_value(restored, resume::json_rng(original));
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(original.next(), restored.next()) << "draw " << i;
  }
  ASSERT_DOUBLE_EQ(original.normal(), restored.normal());
}

TEST(ResumeSerial, RngRestoreRejectsZeroState) {
  JsonValue j = resume::json_rng(Rng(1));
  JsonValue zeros = JsonValue::make_array();
  for (int i = 0; i < 4; ++i) zeros.push(resume::json_u64(0));
  j.set("s", zeros);
  Rng rng(1);
  EXPECT_THROW(resume::restore_rng_value(rng, j), SerializationError);
}

TEST(ResumeEci, StateRoundTripsExactly) {
  EciState state;
  state.initial_eci1 = 0.25;
  state.record(1.5, 0.4);
  state.record(2.0, 0.3);
  state.record(0.5, 0.35);

  const EciState restored = EciState::from_json(state.to_json());
  EXPECT_DOUBLE_EQ(restored.k0, state.k0);
  EXPECT_DOUBLE_EQ(restored.k1, state.k1);
  EXPECT_DOUBLE_EQ(restored.k2, state.k2);
  EXPECT_DOUBLE_EQ(restored.best_error, state.best_error);
  EXPECT_DOUBLE_EQ(restored.prev_best_error, state.prev_best_error);
  EXPECT_DOUBLE_EQ(restored.last_trial_cost, state.last_trial_cost);
  EXPECT_EQ(restored.n_trials, state.n_trials);
  EXPECT_DOUBLE_EQ(restored.initial_eci1, state.initial_eci1);
  // The derived quantities the controller actually consumes.
  EXPECT_DOUBLE_EQ(restored.eci1(), state.eci1());
  EXPECT_DOUBLE_EQ(restored.eci(0.3, 2.0, true), state.eci(0.3, 2.0, true));
}

TEST(ResumeEci, FromJsonRejectsInconsistentTotals) {
  EciState state;
  state.record(1.0, 0.5);
  state.record(1.0, 0.4);
  JsonValue j = state.to_json();
  j.set("k2", resume::json_double(state.k1 + 1.0));  // violates k2 <= k1
  EXPECT_THROW(EciState::from_json(j), SerializationError);

  JsonValue j2 = state.to_json();
  j2.set("best_error", resume::json_double(std::nan("")));
  EXPECT_THROW(EciState::from_json(j2), SerializationError);

  JsonValue j3 = state.to_json();
  j3.object.erase(j3.object.begin());  // drop a required field
  EXPECT_THROW(EciState::from_json(j3), SerializationError);
}

TEST(ResumeFlow2, RestoredTunerContinuesTheWalkBitForBit) {
  const ConfigSpace space = StubLearner("stub", 1.0).space(
      Task::BinaryClassification, 1000);
  // A deterministic, nontrivial error surface for the walk.
  const auto error_of = [](const Config& c) {
    return std::abs(c.at("slope") - 1.3) + 0.001 * c.at("units");
  };

  Flow2 original(space, /*seed=*/99);
  original.set_adaptation(true);
  for (int i = 0; i < 25; ++i) original.tell(error_of(original.ask()));

  Flow2 restored(space, /*seed=*/1);  // different seed: state must not matter
  restored.from_json(original.to_json());

  EXPECT_DOUBLE_EQ(restored.step(), original.step());
  EXPECT_EQ(restored.best_config(), original.best_config());
  EXPECT_DOUBLE_EQ(restored.best_error(), original.best_error());
  restored.set_adaptation(true);
  for (int i = 0; i < 40; ++i) {
    const Config a = original.ask();
    const Config b = restored.ask();
    ASSERT_EQ(a, b) << "walk diverged at continued step " << i;
    const double err = error_of(a);
    original.tell(err);
    restored.tell(err);
    ASSERT_EQ(original.converged(), restored.converged());
  }
}

TEST(ResumeFlow2, FromJsonRejectsWrongSpaceAndCorruptFields) {
  const ConfigSpace space = StubLearner("stub", 1.0).space(
      Task::BinaryClassification, 1000);
  Flow2 tuner(space, 5);
  tuner.tell(0.5 + 0.0 * tuner.ask().at("slope"));
  const JsonValue j = tuner.to_json();

  // Different dimensionality.
  ConfigSpace other;
  other.add_float("x", 0.0, 1.0, 0.5);
  Flow2 mismatched(other, 5);
  EXPECT_THROW(mismatched.from_json(j), SerializationError);

  // Non-positive step.
  JsonValue bad_step = j;
  bad_step.set("step", resume::json_double(0.0));
  Flow2 target(space, 5);
  EXPECT_THROW(target.from_json(bad_step), SerializationError);

  // Incumbent outside [0,1]^d.
  const JsonValue* inc = j.find("incumbent");
  if (inc != nullptr && inc->is_array() && !inc->array.empty()) {
    JsonValue bad_inc = j;
    JsonValue moved = *inc;
    moved.array[0] = resume::json_double(2.0);
    bad_inc.set("incumbent", moved);
    EXPECT_THROW(target.from_json(bad_inc), SerializationError);
  }
}

// ---------------------------------------------------------------------------
// Container format: any damage is a typed error
// ---------------------------------------------------------------------------

JsonValue small_payload() {
  JsonValue payload = JsonValue::make_object();
  payload.set("hello", JsonValue::make_string("world"));
  payload.set("n", JsonValue::make_number(3.0));
  return payload;
}

TEST(ResumeContainer, SerializeParseRoundTrip) {
  const std::string text = resume::serialize_checkpoint(small_payload());
  ASSERT_EQ(text.rfind("flaml-checkpoint v3 ", 0), 0u) << text;
  const JsonValue payload = resume::parse_checkpoint(text);
  EXPECT_EQ(payload.at("hello").str, "world");
  EXPECT_DOUBLE_EQ(payload.at("n").number, 3.0);
}

TEST(ResumeContainer, EveryTruncationThrows) {
  const std::string text = resume::serialize_checkpoint(small_payload());
  expect_every_truncation_throws(
      text, [](const std::string& damaged) { resume::parse_checkpoint(damaged); });
}

TEST(ResumeContainer, EveryBitFlipThrows) {
  const std::string text = resume::serialize_checkpoint(small_payload());
  expect_every_bit_flip_throws(
      text, [](const std::string& damaged) { resume::parse_checkpoint(damaged); });
}

TEST(ResumeContainer, HeaderTamperingThrows) {
  const std::string text = resume::serialize_checkpoint(small_payload());
  const std::size_t newline = text.find('\n');
  ASSERT_NE(newline, std::string::npos);
  const std::string payload = text.substr(newline + 1);

  EXPECT_THROW(resume::parse_checkpoint("flaml-model v2 1 0\n" + payload),
               SerializationError);
  // A non-current version (the retired v1 here) must be rejected, not
  // silently migrated.
  EXPECT_THROW(
      resume::parse_checkpoint("flaml-checkpoint v1 " +
                               std::to_string(payload.size()) + " 0\n" + payload),
      SerializationError);
  // Declared length shorter / longer than the actual payload.
  EXPECT_THROW(
      resume::parse_checkpoint("flaml-checkpoint v3 " +
                               std::to_string(payload.size() - 1) + " 0\n" +
                               payload),
      SerializationError);
  // Extra trailing garbage after a valid envelope.
  EXPECT_THROW(resume::parse_checkpoint(text + "x"), SerializationError);
  // Absurd declared size must not allocate.
  EXPECT_THROW(
      resume::parse_checkpoint("flaml-checkpoint v3 99999999999999 0\n"),
      SerializationError);
}

TEST(ResumeContainer, MissingFileThrows) {
  EXPECT_THROW(resume::SearchCheckpoint::load(
                   tmp_path("no_such_checkpoint.ckpt")),
               SerializationError);
}

TEST(ResumeContainer, BlobHexRoundTrip) {
  std::string bytes;
  for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<char>(i));
  EXPECT_EQ(resume::decode_blob(resume::encode_blob(bytes)), bytes);
  EXPECT_EQ(resume::encode_blob(""), "");
  EXPECT_THROW(resume::decode_blob("abc"), SerializationError);   // odd length
  EXPECT_THROW(resume::decode_blob("zz"), SerializationError);    // non-hex
}

// ---------------------------------------------------------------------------
// Whole-checkpoint round-trip and payload-level corruption
// ---------------------------------------------------------------------------

TEST(ResumeCheckpoint, FileRoundTripIsByteStable) {
  const Dataset data = resume_tiny_binary(11);
  const std::string path = tmp_path("roundtrip.ckpt");
  AutoML automl;
  run_killed_fit(automl, data, resume_options(3, 10), path, 5);

  const resume::SearchCheckpoint loaded = resume::SearchCheckpoint::load(path);
  EXPECT_EQ(loaded.iteration, 5u);
  EXPECT_EQ(loaded.history.size(), 5u);
  EXPECT_EQ(loaded.learners.size(), 3u);

  // load(save(x)) is the identity on the serialized bytes: re-saving the
  // loaded checkpoint reproduces the original file exactly.
  const std::string path2 = tmp_path("roundtrip2.ckpt");
  loaded.save(path2);
  EXPECT_EQ(read_file(path2), read_file(path));
}

TEST(ResumeCheckpoint, PayloadFieldCorruptionThrows) {
  const Dataset data = resume_tiny_binary(11);
  const std::string path = tmp_path("payload_corrupt.ckpt");
  AutoML automl;
  run_killed_fit(automl, data, resume_options(3, 10), path, 4);
  const JsonValue payload = resume::read_checkpoint_file(path);
  ASSERT_NO_THROW(resume::SearchCheckpoint::from_json(payload));

  {
    JsonValue bad = payload;
    bad.set("version", JsonValue::make_number(4.0));
    EXPECT_THROW(resume::SearchCheckpoint::from_json(bad), SerializationError);
  }
  {
    // iteration != history.size()
    JsonValue bad = payload;
    bad.set("iteration", resume::json_u64(3));
    EXPECT_THROW(resume::SearchCheckpoint::from_json(bad), SerializationError);
  }
  {
    JsonValue bad = payload;
    bad.set("elapsed_seconds", resume::json_double(-1.0));
    EXPECT_THROW(resume::SearchCheckpoint::from_json(bad), SerializationError);
  }
  {
    // best_learner outside the lineup.
    JsonValue bad = payload;
    bad.set("best_learner", JsonValue::make_string("not_a_learner"));
    EXPECT_THROW(resume::SearchCheckpoint::from_json(bad), SerializationError);
  }
  {
    JsonValue bad = payload;
    bad.set("resampling", JsonValue::make_string("bootstrap"));
    EXPECT_THROW(resume::SearchCheckpoint::from_json(bad), SerializationError);
  }
  {
    JsonValue bad = payload;
    bad.set("learners", JsonValue::make_array());  // empty lineup
    EXPECT_THROW(resume::SearchCheckpoint::from_json(bad), SerializationError);
  }
}

// ---------------------------------------------------------------------------
// Crash equivalence at one boundary (the stress suite sweeps every k)
// ---------------------------------------------------------------------------

TEST(ResumeReplay, SerialKillAtBoundaryMatchesUninterrupted) {
  const Dataset data = resume_tiny_binary(21);
  const AutoMLOptions options = resume_options(7, 10);

  AutoML reference;
  add_resume_lineup(reference);
  reference.fit(data, options);
  ASSERT_EQ(reference.history().size(), 10u);

  const std::string path = tmp_path("serial_kill.ckpt");
  AutoML killed;
  run_killed_fit(killed, data, options, path, 4);

  AutoML resumed;
  add_resume_lineup(resumed);
  resumed.resume_from_file(data, options, path);
  expect_resumed_equals_reference(resumed, reference, "serial kill at 4");
  EXPECT_TRUE(resumed.fitted());
}

TEST(ResumeReplay, ParallelKillAtBoundaryMatchesUninterrupted) {
  const Dataset data = resume_tiny_binary(23);
  AutoMLOptions options = resume_options(9, 12);
  options.n_parallel = 3;

  AutoML reference;
  add_resume_lineup(reference);
  reference.fit(data, options);
  ASSERT_EQ(reference.history().size(), 12u);

  const std::string path = tmp_path("parallel_kill.ckpt");
  AutoML killed;
  run_killed_fit(killed, data, options, path, 6);

  AutoML resumed;
  add_resume_lineup(resumed);
  resumed.resume_from_file(data, options, path);
  expect_resumed_equals_reference(resumed, reference, "parallel kill at 6");
}

TEST(ResumeReplay, FingerprintMismatchIsRejected) {
  const Dataset data = resume_tiny_binary(21);
  const AutoMLOptions options = resume_options(7, 10);
  const std::string path = tmp_path("fingerprint.ckpt");
  AutoML killed;
  run_killed_fit(killed, data, options, path, 4);

  {
    AutoMLOptions wrong = options;
    wrong.seed = options.seed + 1;
    AutoML automl;
    add_resume_lineup(automl);
    EXPECT_THROW(automl.resume_from_file(data, wrong, path),
                 SerializationError);
  }
  {
    AutoMLOptions wrong = options;
    wrong.estimator_list = {"stub_fast", "stub_mid"};  // lineup shrank
    AutoML automl;
    add_resume_lineup(automl);
    EXPECT_THROW(automl.resume_from_file(data, wrong, path),
                 SerializationError);
  }
  {
    AutoMLOptions wrong = options;
    wrong.metric = "log_loss";  // checkpoint was taken under the default
    AutoML automl;
    add_resume_lineup(automl);
    EXPECT_THROW(automl.resume_from_file(data, wrong, path),
                 SerializationError);
  }
}

// ---------------------------------------------------------------------------
// Ensemble interaction and the best-model blob
// ---------------------------------------------------------------------------

TEST(ResumeEnsemble, EnsembleModelsAreNotSerializableButSearchStateIs) {
  const Dataset data = resume_tiny_binary(31);
  AutoMLOptions options = resume_options(5, 8);
  options.enable_ensemble = true;

  AutoML reference;
  add_resume_lineup(reference);
  reference.fit(data, options);
  ASSERT_TRUE(reference.fitted());

  // The documented error path: a blended ensemble has no single-model blob.
  std::ostringstream out;
  EXPECT_THROW(reference.save_best_model(out), InvalidArgument);
  // A post-fit checkpoint still works — it just omits the model.
  EXPECT_TRUE(reference.checkpoint_to().model_blob.empty());

  // Crash mid-search and resume with the ensemble still enabled: the search
  // replays identically and the resumed fit re-trains the ensemble.
  const std::string path = tmp_path("ensemble_kill.ckpt");
  AutoML killed;
  run_killed_fit(killed, data, options, path, 3);

  AutoML resumed;
  add_resume_lineup(resumed);
  resumed.resume_from_file(data, options, path);
  expect_resumed_equals_reference(resumed, reference, "ensemble kill at 3");
  ASSERT_TRUE(resumed.fitted());
  const Predictions a = resumed.predict(DataView(data));
  const Predictions b = reference.predict(DataView(data));
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.values[i], b.values[i]) << "prediction " << i;
  }
}

TEST(ResumeModelBlob, PostFitCheckpointCarriesALoadableModel) {
  const Dataset data = resume_tiny_binary(41);
  AutoMLOptions options;
  options.time_budget_seconds = 1e6;
  options.max_iterations = 4;
  options.initial_sample_size = 32;
  options.resampling = ResamplingPolicy::ForceHoldout;
  options.estimator_list = {"lgbm"};
  options.seed = 2;

  AutoML automl;
  automl.fit(data, options);
  ASSERT_TRUE(automl.fitted());

  const resume::SearchCheckpoint ckpt = automl.checkpoint_to();
  ASSERT_FALSE(ckpt.model_blob.empty());

  // The blob is the save_best_model format; load it without any dataset.
  std::istringstream in(ckpt.model_blob);
  const std::unique_ptr<Model> model = load_automl_model(in);
  ASSERT_NE(model, nullptr);
  const Predictions direct = automl.predict(DataView(data));
  const Predictions loaded = model->predict(DataView(data));
  ASSERT_EQ(direct.values.size(), loaded.values.size());
  for (std::size_t i = 0; i < direct.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct.values[i], loaded.values[i]) << "prediction " << i;
  }

  // And the checkpoint survives its own file container.
  const std::string path = tmp_path("model_blob.ckpt");
  ckpt.save(path);
  EXPECT_EQ(resume::SearchCheckpoint::load(path).model_blob, ckpt.model_blob);
}

TEST(ResumeModelBlob, StubModelsCheckpointWithoutABlob) {
  // StubLearner models do not implement save(); a post-fit checkpoint must
  // still capture the search state instead of throwing.
  const Dataset data = resume_tiny_binary(43);
  AutoML automl;
  add_resume_lineup(automl);
  automl.fit(data, resume_options(3, 6));
  ASSERT_TRUE(automl.fitted());
  const resume::SearchCheckpoint ckpt = automl.checkpoint_to();
  EXPECT_TRUE(ckpt.model_blob.empty());
  EXPECT_EQ(ckpt.history.size(), 6u);
}

// ---------------------------------------------------------------------------
// Post-fit warm start: checkpoint_to() after a short fit, resume with a
// larger iteration budget — equivalent to having run the long fit once.
// ---------------------------------------------------------------------------

TEST(ResumeWarmStart, ShortFitPlusResumeEqualsLongFit) {
  const Dataset data = resume_tiny_binary(51);
  const AutoMLOptions long_options = resume_options(13, 12);

  AutoML reference;
  add_resume_lineup(reference);
  reference.fit(data, long_options);
  ASSERT_EQ(reference.history().size(), 12u);

  AutoML short_fit;
  add_resume_lineup(short_fit);
  short_fit.fit(data, resume_options(13, 6));
  ASSERT_EQ(short_fit.history().size(), 6u);
  const resume::SearchCheckpoint ckpt = short_fit.checkpoint_to();

  AutoML resumed;
  add_resume_lineup(resumed);
  resumed.resume_from(data, long_options, ckpt);
  expect_resumed_equals_reference(resumed, reference, "warm start 6 -> 12");
}

// ---------------------------------------------------------------------------
// Durability of the tmp+rename writer
// ---------------------------------------------------------------------------

TEST(ResumeDurability, LeftoverTmpNextToAValidCheckpointIsIgnored) {
  const Dataset data = resume_tiny_binary(61);
  const std::string path = tmp_path("durability_valid.ckpt");
  AutoML automl;
  run_killed_fit(automl, data, resume_options(61, 10), path, 4);

  // A stale half-written tmp beside a VALID final file (a crash during a
  // LATER checkpoint write, before its rename) must not affect loading.
  {
    std::ofstream tmp(path + ".tmp", std::ios::binary);
    tmp << "flaml-checkpoint v3 99 0\ntruncated mid-wri";
  }
  const resume::SearchCheckpoint loaded = resume::SearchCheckpoint::load(path);
  EXPECT_EQ(loaded.iteration, 4u);
  std::remove((path + ".tmp").c_str());
}

TEST(ResumeDurability, HalfWrittenTmpWithoutAFinalFileIsRefused) {
  const std::string path = tmp_path("durability_orphan.ckpt");
  std::remove(path.c_str());
  {
    std::ofstream tmp(path + ".tmp", std::ios::binary);
    tmp << "flaml-checkpoint v3 99 0\ntruncated mid-wri";
  }
  // The orphaned tmp may hold anything — loading it in place of the missing
  // final file would resurrect a torn checkpoint. The reader must refuse
  // with a message naming the real failure, not a generic "cannot open".
  try {
    resume::SearchCheckpoint::load(path);
    FAIL() << "orphaned tmp was loaded (or missing file not reported)";
  } catch (const SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("interrupted"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(".tmp"), std::string::npos);
  }
  std::remove((path + ".tmp").c_str());
}

#ifndef _WIN32
TEST(ResumeDurability, CrossFilesystemTmpDirFallsBackToLocalRename) {
  // /dev/shm is a distinct mount from TempDir on most Linux setups, forcing
  // the EXDEV copy+rename fallback; where it is not, the test still
  // verifies the tmp_dir code path end to end.
  if (::access("/dev/shm", W_OK) != 0) {
    GTEST_SKIP() << "/dev/shm not writable; cannot exercise cross-fs tmp_dir";
  }
  const Dataset data = resume_tiny_binary(62);
  AutoML automl;
  add_resume_lineup(automl);
  automl.fit(data, resume_options(62, 5));
  const resume::SearchCheckpoint ckpt = automl.checkpoint_to();

  const std::string path = tmp_path("durability_exdev.ckpt");
  resume::write_checkpoint_file(path, ckpt.to_json(), "/dev/shm");
  const resume::SearchCheckpoint loaded = resume::SearchCheckpoint::load(path);
  EXPECT_EQ(loaded.iteration, 5u);
  // Neither staging file may survive a successful write.
  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);
  EXPECT_NE(::access("/dev/shm/durability_exdev.ckpt.tmp", F_OK), 0);
}
#endif  // _WIN32

}  // namespace
}  // namespace flaml
