// Frugal trial racing (src/automl/racing.h): property suite over the pure
// kill rule and the envelope monitor, TrainReport unit coverage for the
// streaming trainers, trial-runner racing semantics (partial cost, curve,
// trace events), and the end-to-end differential contract:
//   * racing OFF — and racing ON when it cannot fire (stub learners that
//     never stream, CV resampling, infinite slack) — is byte-identical to
//     the racing-off search;
//   * racing ON with real learners and tight slack kills dominated trials
//     deterministically, pinned by its own golden digests.
// Also the satellite regressions: a deadline-killed trial's charged cost is
// capped by the wall budget it was actually given (measured time rides in
// elapsed_seconds), and safety-capped partial fits report how far they got.
#include "automl/racing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "automl/automl.h"
#include "boosting/gbdt.h"
#include "common/error.h"
#include "common/progress.h"
#include "forest/forest.h"
#include "observe/trace_check.h"
#include "support/history_digest.h"
#include "support/prop.h"
#include "support/resume_test_util.h"
#include "support/stub_learner.h"

namespace flaml {
namespace {

using testing::add_resume_lineup;
using testing::expect_histories_identical;
using testing::expect_history_digest;
using testing::resume_options;
using testing::resume_tiny_binary;
using testing::StubLearner;
using testing::StubModel;

// ---------------------------------------------------------------------------
// Seeded property suite over the pure components.

std::vector<double> random_curve(Rng& rng, std::size_t n) {
  std::vector<double> curve(n);
  for (double& v : curve) v = rng.uniform(0.0, 2.0);
  return curve;
}

std::vector<double> running_min(const std::vector<double>& curve) {
  std::vector<double> out;
  out.reserve(curve.size());
  double best = std::numeric_limits<double>::infinity();
  for (double v : curve) {
    best = std::min(best, v);
    out.push_back(best);
  }
  return out;
}

RacingOptions random_racing(Rng& rng) {
  RacingOptions options;
  options.enabled = true;
  options.grace_iterations = static_cast<int>(rng.uniform_index(5));
  options.slack_rel = rng.uniform(0.0, 0.5);
  options.slack_abs = rng.uniform(0.0, 0.2);
  return options;
}

FLAML_PROP(RacingProp, EnvelopesAreMonotoneNonIncreasing, 50) {
  RacingMonitor monitor;
  const int n_records = 1 + static_cast<int>(prop.rng.uniform_index(8));
  for (int i = 0; i < n_records; ++i) {
    const std::string learner = "l" + std::to_string(prop.rng.uniform_index(3));
    const std::size_t sample = std::size_t{16} << prop.rng.uniform_index(3);
    monitor.record(learner, sample,
                   random_curve(prop.rng, 1 + prop.rng.uniform_index(20)));
  }
  for (int l = 0; l < 3; ++l) {
    for (int s = 0; s < 3; ++s) {
      const std::vector<double> env =
          monitor.envelope("l" + std::to_string(l), std::size_t{16} << s);
      for (std::size_t i = 0; i + 1 < env.size(); ++i) {
        EXPECT_LE(env[i + 1], env[i]) << "envelope not monotone at " << i;
      }
    }
  }
}

FLAML_PROP(RacingProp, TheIncumbentNeverRacesItself, 50) {
  // Replaying the envelope-owning curve reproduces the envelope pointwise,
  // so with any slack >= 0 it can never be dominated.
  const std::vector<double> curve =
      random_curve(prop.rng, 1 + prop.rng.uniform_index(30));
  RacingMonitor monitor;
  monitor.record("l", 32, curve);
  const std::vector<double> env = monitor.envelope("l", 32);
  const RacingOptions options = random_racing(prop.rng);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= curve.size(); ++k) {
    best = std::min(best, curve[k - 1]);
    EXPECT_FALSE(racing_dominated(options, env, k, best))
        << "incumbent raced itself at iteration " << k;
  }
}

FLAML_PROP(RacingProp, WithinSlackIsNeverKilled, 50) {
  const std::vector<double> env =
      running_min(random_curve(prop.rng, 1 + prop.rng.uniform_index(30)));
  const RacingOptions options = random_racing(prop.rng);
  // Exactly at the threshold (ref + slack) at every iteration, including
  // past the envelope's length where the last point is the reference.
  for (std::size_t k = 1; k <= env.size() + 5; ++k) {
    const double ref = env[std::min(k, env.size()) - 1];
    const double at_threshold =
        ref + options.slack_abs + options.slack_rel * std::fabs(ref);
    EXPECT_FALSE(racing_dominated(options, env, k, at_threshold))
        << "killed within slack at iteration " << k;
  }
}

FLAML_PROP(RacingProp, DominatedBeyondSlackIsKilledExactlyPastGrace, 50) {
  const std::vector<double> env =
      running_min(random_curve(prop.rng, 1 + prop.rng.uniform_index(30)));
  const RacingOptions options = random_racing(prop.rng);
  for (std::size_t k = 1; k <= env.size() + 5; ++k) {
    const double ref = env[std::min(k, env.size()) - 1];
    const double beyond = ref + options.slack_abs +
                          options.slack_rel * std::fabs(ref) + 1e-6 +
                          prop.rng.uniform(0.0, 0.5);
    const bool past_grace =
        k > static_cast<std::size_t>(options.grace_iterations);
    EXPECT_EQ(racing_dominated(options, env, k, beyond), past_grace)
        << "wrong kill decision at iteration " << k << " (grace "
        << options.grace_iterations << ")";
  }
}

TEST(RacingRule, AnEmptyEnvelopeNeverKills) {
  RacingOptions options;
  options.enabled = true;
  options.grace_iterations = 0;
  EXPECT_FALSE(racing_dominated(options, {}, 100, 1e9));
}

TEST(RacingRule, NonFiniteLossesNeverKill) {
  RacingOptions options;
  options.enabled = true;
  options.grace_iterations = 0;
  const std::vector<double> env = {0.5, 0.4};
  EXPECT_FALSE(racing_dominated(options, env, 2,
                                std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(racing_dominated(options, env, 2,
                                std::numeric_limits<double>::quiet_NaN()));
}

// ---------------------------------------------------------------------------
// Envelope monitor bookkeeping and checkpoint serialization.

TEST(RacingMonitorTest, KeepsTheBestIncumbentPerKey) {
  RacingMonitor monitor;
  monitor.record("lgbm", 32, {1.0, 0.8, 0.9});
  EXPECT_EQ(monitor.envelope("lgbm", 32), (std::vector<double>{1.0, 0.8, 0.8}));
  // A worse final best never replaces the incumbent.
  monitor.record("lgbm", 32, {0.9, 0.85});
  EXPECT_EQ(monitor.envelope("lgbm", 32), (std::vector<double>{1.0, 0.8, 0.8}));
  // A better one replaces it wholesale.
  monitor.record("lgbm", 32, {0.7});
  EXPECT_EQ(monitor.envelope("lgbm", 32), std::vector<double>{0.7});
  // Keys are (learner, sample_size); unknown keys are empty.
  monitor.record("lgbm", 64, {0.5});
  monitor.record("rf", 32, {0.4});
  EXPECT_EQ(monitor.n_envelopes(), 3u);
  EXPECT_TRUE(monitor.envelope("rf", 64).empty());
  // Empty and non-finite curves are ignored.
  monitor.record("rf", 64, {});
  monitor.record("rf", 64, {std::numeric_limits<double>::infinity()});
  EXPECT_EQ(monitor.n_envelopes(), 3u);
  monitor.clear();
  EXPECT_EQ(monitor.n_envelopes(), 0u);
}

TEST(RacingMonitorTest, JsonRoundTripIsExact) {
  RacingMonitor monitor;
  monitor.record("lgbm", 32, {1.0 / 3.0, 0.1234567890123456, 0.9});
  monitor.record("rf", 64, {0.75, 0.5});
  RacingMonitor restored;
  restored.record("stale", 16, {2.0});  // from_json must replace this
  restored.from_json(monitor.to_json());
  EXPECT_EQ(restored.n_envelopes(), 2u);
  EXPECT_EQ(restored.envelope("lgbm", 32), monitor.envelope("lgbm", 32));
  EXPECT_EQ(restored.envelope("rf", 64), monitor.envelope("rf", 64));
  EXPECT_TRUE(restored.envelope("stale", 16).empty());
}

TEST(RacingMonitorTest, FromJsonRejectsCorruptState) {
  RacingMonitor monitor;
  const auto expect_rejected = [&](const std::string& payload,
                                   const std::string& what) {
    EXPECT_THROW(monitor.from_json(parse_json(payload)), SerializationError)
        << what;
  };
  expect_rejected(R"({})", "missing envelopes");
  expect_rejected(
      R"({"envelopes":[{"learner":"l","sample_size":32,"best":0.6,"curve":[0.5,0.6]}]})",
      "non-monotone curve");
  expect_rejected(
      R"({"envelopes":[{"learner":"l","sample_size":32,"best":0.4,"curve":[0.5]}]})",
      "best != final curve point");
  expect_rejected(
      R"({"envelopes":[{"learner":"l","sample_size":32,"best":0.5,"curve":[]}]})",
      "empty curve");
  expect_rejected(
      R"({"envelopes":[{"learner":"","sample_size":32,"best":0.5,"curve":[0.5]}]})",
      "empty learner name");
  expect_rejected(
      R"({"envelopes":[{"learner":"l","sample_size":32,"best":0.5,"curve":[0.5]},)"
      R"({"learner":"l","sample_size":32,"best":0.4,"curve":[0.4]}]})",
      "duplicate key");
  // A rejected load must not clobber the current state.
  monitor.record("lgbm", 32, {0.5});
  expect_rejected(R"({"envelopes":"nope"})", "ill-typed envelopes");
  EXPECT_EQ(monitor.n_envelopes(), 1u);
}

// ---------------------------------------------------------------------------
// TrainReport coverage for the streaming trainers (the safety-cap partial
// fit used to return a model without recording how far it got).

struct SplitViews {
  std::vector<std::uint32_t> train_rows;
  std::vector<std::uint32_t> valid_rows;
};

SplitViews satellite_split(const Dataset& data) {
  SplitViews s;
  for (std::uint32_t i = 0; i < 80; ++i) s.train_rows.push_back(i);
  for (std::uint32_t i = 80; i < static_cast<std::uint32_t>(data.n_rows()); ++i) {
    s.valid_rows.push_back(i);
  }
  return s;
}

TEST(TrainReportTest, GbdtReportsFullRunAndStreamingIsPureObservation) {
  const Dataset data = resume_tiny_binary(5);
  const SplitViews s = satellite_split(data);
  const DataView train(data, s.train_rows);
  const DataView valid(data, s.valid_rows);
  GBDTParams params;
  params.n_trees = 12;
  params.max_leaves = 8;
  params.seed = 3;
  const GBDTModel plain = train_gbdt(train, &valid, params);

  TrainReport report;
  std::vector<double> curve;
  GBDTParams streamed = params;
  streamed.report = &report;
  streamed.progress = [&](const TrainProgress& point) {
    curve.push_back(point.valid_loss);
    EXPECT_EQ(point.planned, 12);
    EXPECT_EQ(point.iteration, static_cast<int>(curve.size()));
    return true;
  };
  const GBDTModel observed = train_gbdt(train, &valid, streamed);
  // Streaming is pure observation: an always-true callback leaves the
  // model byte-identical.
  EXPECT_EQ(observed.to_string(), plain.to_string());
  EXPECT_EQ(curve.size(), 12u);
  EXPECT_EQ(report.iterations_completed, 12);
  EXPECT_EQ(report.iterations_planned, 12);
  EXPECT_EQ(report.stopped_by, TrainStop::Completed);
  EXPECT_EQ(static_cast<int>(observed.n_iterations()), report.iterations_completed);
}

TEST(TrainReportTest, GbdtSafetyCapReportsIterationsActuallyRun) {
  const Dataset data = resume_tiny_binary(5);
  const SplitViews s = satellite_split(data);
  const DataView train(data, s.train_rows);
  const DataView valid(data, s.valid_rows);
  GBDTParams params;
  params.n_trees = 50;
  params.max_leaves = 8;
  params.seed = 3;
  params.max_seconds = 1e-9;  // fires after the first tree
  params.fail_on_deadline = false;
  TrainReport report;
  params.report = &report;
  const GBDTModel model = train_gbdt(train, &valid, params);
  EXPECT_GE(model.n_iterations(), 1u);
  EXPECT_LT(model.n_iterations(), 50u);
  EXPECT_EQ(report.iterations_completed, static_cast<int>(model.n_iterations()));
  EXPECT_EQ(report.iterations_planned, 50);
  EXPECT_EQ(report.stopped_by, TrainStop::Deadline);
}

TEST(TrainReportTest, GbdtProgressVetoThrowsTrialRacedWithPartialReport) {
  const Dataset data = resume_tiny_binary(5);
  const SplitViews s = satellite_split(data);
  const DataView train(data, s.train_rows);
  const DataView valid(data, s.valid_rows);
  GBDTParams params;
  params.n_trees = 10;
  params.max_leaves = 8;
  TrainReport report;
  params.report = &report;
  int calls = 0;
  params.progress = [&](const TrainProgress&) { return ++calls < 3; };
  EXPECT_THROW(train_gbdt(train, &valid, params), TrialRaced);
  EXPECT_EQ(report.stopped_by, TrainStop::Raced);
  EXPECT_EQ(report.iterations_completed, 3);
  EXPECT_EQ(report.iterations_planned, 10);
}

TEST(TrainReportTest, ForestStreamsPerChunkAndIsPureObservation) {
  const Dataset data = resume_tiny_binary(5);
  const SplitViews s = satellite_split(data);
  const DataView train(data, s.train_rows);
  const DataView valid(data, s.valid_rows);
  ForestParams params;
  params.n_trees = 20;
  params.seed = 3;
  const ForestModel plain = train_forest(train, params);

  TrainReport report;
  std::vector<double> curve;
  ForestParams streamed = params;
  streamed.valid = &valid;
  streamed.report = &report;
  streamed.progress = [&](const TrainProgress& point) {
    curve.push_back(point.valid_loss);
    EXPECT_EQ(point.planned, 20);
    return true;
  };
  const ForestModel observed = train_forest(train, streamed);
  std::ostringstream a;
  std::ostringstream b;
  plain.save(a);
  observed.save(b);
  EXPECT_EQ(a.str(), b.str());
  // Streaming scores per fixed 8-tree chunk: 20 trees -> 3 points.
  EXPECT_EQ(curve.size(), 3u);
  EXPECT_EQ(report.iterations_completed, 20);
  EXPECT_EQ(report.iterations_planned, 20);
  EXPECT_EQ(report.stopped_by, TrainStop::Completed);
}

TEST(TrainReportTest, ForestSafetyCapReportsTreesActuallyBuilt) {
  const Dataset data = resume_tiny_binary(5);
  const SplitViews s = satellite_split(data);
  const DataView train(data, s.train_rows);
  ForestParams params;
  params.n_trees = 50;
  params.seed = 3;
  params.max_seconds = 1e-9;
  params.fail_on_deadline = false;
  TrainReport report;
  params.report = &report;
  const ForestModel model = train_forest(train, params);
  EXPECT_GE(model.n_trees(), 1u);
  EXPECT_LT(model.n_trees(), 50u);
  EXPECT_EQ(report.iterations_completed, static_cast<int>(model.n_trees()));
  EXPECT_EQ(report.iterations_planned, 50);
  EXPECT_EQ(report.stopped_by, TrainStop::Deadline);
}

TEST(TrainReportTest, ForestProgressVetoThrowsTrialRacedAtTheChunk) {
  const Dataset data = resume_tiny_binary(5);
  const SplitViews s = satellite_split(data);
  const DataView train(data, s.train_rows);
  const DataView valid(data, s.valid_rows);
  ForestParams params;
  params.n_trees = 20;
  params.seed = 3;
  params.valid = &valid;
  TrainReport report;
  params.report = &report;
  params.progress = [](const TrainProgress&) { return false; };
  EXPECT_THROW(train_forest(train, params), TrialRaced);
  EXPECT_EQ(report.stopped_by, TrainStop::Raced);
  EXPECT_EQ(report.iterations_completed, 8);  // killed at the first chunk
  EXPECT_EQ(report.iterations_planned, 20);
}

// ---------------------------------------------------------------------------
// Trial-runner racing semantics, driven by a synthetic streaming learner
// whose curve is chosen by the test (real learners cover the e2e goldens).

class CurveLearner final : public Learner {
 public:
  CurveLearner(std::string name, std::vector<double> curve)
      : name_(std::move(name)), curve_(std::move(curve)) {}

  const std::string& name() const override { return name_; }
  bool supports(Task task) const override {
    return task == Task::BinaryClassification;
  }

  ConfigSpace space(Task, std::size_t) const override {
    ConfigSpace s;
    s.add_float("slope", -4.0, 4.0, 0.5);
    s.add_int("units", 4, 256, 4, /*log_scale=*/true, /*cost_related=*/true);
    return s;
  }

  std::unique_ptr<Model> train(const TrainContext& ctx,
                               const Config&) const override {
    const int n = static_cast<int>(curve_.size());
    if (ctx.report != nullptr) {
      *ctx.report = TrainReport{};
      ctx.report->iterations_planned = n;
    }
    for (int i = 0; i < n; ++i) {
      if (ctx.report != nullptr) ctx.report->iterations_completed = i + 1;
      if (ctx.progress) {
        TrainProgress point;
        point.iteration = i + 1;
        point.planned = n;
        point.valid_loss = curve_[static_cast<std::size_t>(i)];
        if (!ctx.progress(point)) {
          if (ctx.report != nullptr) {
            ctx.report->stopped_by = TrainStop::Raced;
          }
          throw TrialRaced("curve learner raced at " + std::to_string(i + 1));
        }
      }
    }
    return std::make_unique<StubModel>(0.5, 0.0);
  }

  double initial_cost_multiplier() const override { return 1.0; }

 private:
  std::string name_;
  std::vector<double> curve_;
};

// Throws DeadlineExceeded from every train() call — the deterministic
// stand-in for a trial killed by its wall cap.
class OverrunLearner final : public Learner {
 public:
  const std::string& name() const override { return name_; }
  bool supports(Task task) const override {
    return task == Task::BinaryClassification;
  }
  ConfigSpace space(Task, std::size_t) const override {
    ConfigSpace s;
    s.add_float("slope", -4.0, 4.0, 0.5);
    s.add_int("units", 4, 256, 4, /*log_scale=*/true, /*cost_related=*/true);
    return s;
  }
  std::unique_ptr<Model> train(const TrainContext&,
                               const Config&) const override {
    throw DeadlineExceeded("simulated overrun");
  }
  double initial_cost_multiplier() const override { return 5.0; }

 private:
  std::string name_ = "overrunner";
};

TrialRunner::Options runner_options(std::uint64_t seed) {
  TrialRunner::Options options;
  options.resampling = Resampling::Holdout;
  options.seed = seed;
  return options;
}

TEST(RacingRunner, RacedTrialChargesPartialCostAndEmitsTheTraceEvent) {
  const Dataset data = resume_tiny_binary(11);
  auto sink = std::make_shared<observe::MemoryTraceSink>();
  TrialRunner::Options options = runner_options(5);
  options.cost_model = [](const Learner&, const Config&, std::size_t) {
    return 10.0;
  };
  options.tracer = observe::Tracer(sink);
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  const CurveLearner learner("curvy", {0.9, 0.8, 0.7, 0.6});
  RacingPlan plan;
  plan.enabled = true;
  plan.options.enabled = true;
  plan.options.grace_iterations = 1;
  plan.options.slack_rel = 0.0;
  plan.options.slack_abs = 0.0;
  plan.envelope = {0.5, 0.4, 0.3, 0.2};  // dominates the curve everywhere
  const TrialResult result =
      runner.run(learner, Config{}, 32, 0.0, 0x1234, &plan);
  EXPECT_EQ(result.status, TrialStatus::Raced);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(std::isinf(result.error));
  // grace = 1: the first point is free, the second is dominated.
  EXPECT_EQ(result.iterations_completed, 2);
  EXPECT_EQ(result.iterations_planned, 4);
  EXPECT_EQ(result.curve, (std::vector<double>{0.9, 0.8}));
  // Deterministic partial charge: estimate * completed / planned.
  EXPECT_DOUBLE_EQ(result.cost, 10.0 * 2.0 / 4.0);

  const auto raced = sink->of_type("trial_raced");
  ASSERT_EQ(raced.size(), 1u);
  EXPECT_EQ(raced[0].fields.at("learner").str, "curvy");
  EXPECT_DOUBLE_EQ(raced[0].fields.at("iteration").number, 2.0);
  EXPECT_DOUBLE_EQ(raced[0].fields.at("planned").number, 4.0);
  EXPECT_DOUBLE_EQ(raced[0].fields.at("best").number, 0.8);
  EXPECT_DOUBLE_EQ(raced[0].fields.at("envelope").number, 0.4);
}

TEST(RacingRunner, SurvivingTrialKeepsItsFullCostAndCurve) {
  const Dataset data = resume_tiny_binary(11);
  TrialRunner::Options options = runner_options(5);
  options.cost_model = [](const Learner&, const Config&, std::size_t) {
    return 10.0;
  };
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  const CurveLearner learner("curvy", {0.9, 0.8, 0.7, 0.6});
  RacingPlan plan;
  plan.enabled = true;
  plan.options.enabled = true;
  plan.options.grace_iterations = 1;
  // No incumbent yet: the trial streams but can never be killed.
  const TrialResult result =
      runner.run(learner, Config{}, 32, 0.0, 0x1234, &plan);
  EXPECT_EQ(result.status, TrialStatus::Ok);
  EXPECT_EQ(result.curve.size(), 4u);
  EXPECT_EQ(result.iterations_completed, 4);
  EXPECT_DOUBLE_EQ(result.cost, 10.0);
}

TEST(RacingRunner, ADisabledPlanNeverStreams) {
  const Dataset data = resume_tiny_binary(11);
  TrialRunner runner(data, ErrorMetric::default_for(data.task()),
                     runner_options(5));
  const CurveLearner learner("curvy", {0.9, 0.8});
  RacingPlan plan;  // enabled = false
  const TrialResult result =
      runner.run(learner, Config{}, 32, 0.0, 0x1234, &plan);
  EXPECT_EQ(result.status, TrialStatus::Ok);
  EXPECT_TRUE(result.curve.empty());
}

// Satellite regression: a deadline-killed trial used to charge the cost
// model's FULL-trial estimate, so traces claimed more budget than the trial
// could possibly have burned. The charge is now capped by the wall budget
// the trial was given; the true measurement rides in elapsed_seconds.
TEST(RacingRunner, KilledTrialCostIsCappedByItsWallBudget) {
  const Dataset data = resume_tiny_binary(11);
  TrialRunner::Options options = runner_options(5);
  options.cost_model = [](const Learner&, const Config&, std::size_t) {
    return 1e9;  // wildly over the wall cap below
  };
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);
  const OverrunLearner learner;
  const TrialResult killed =
      runner.run(learner, Config{}, 32, /*max_seconds=*/5.0, 0x1234);
  EXPECT_EQ(killed.status, TrialStatus::Killed);
  EXPECT_DOUBLE_EQ(killed.cost, 5.0);  // min(estimate, wall cap)
  EXPECT_GT(killed.elapsed_seconds, 0.0);
  EXPECT_LT(killed.elapsed_seconds, 5.0);  // the throw is immediate

  // Unlimited wall budget: nothing to cap against, the estimate stands
  // (killed learners must stay expensive for the ECI bookkeeping).
  const TrialResult unlimited =
      runner.run(learner, Config{}, 32, /*max_seconds=*/0.0, 0x1235);
  EXPECT_DOUBLE_EQ(unlimited.cost, 1e9);

  // Without a cost model the charge IS the measurement.
  TrialRunner measured(data, ErrorMetric::default_for(data.task()),
                       runner_options(5));
  const TrialResult wall =
      measured.run(learner, Config{}, 32, /*max_seconds=*/5.0, 0x1236);
  EXPECT_DOUBLE_EQ(wall.cost, wall.elapsed_seconds);
}

// ---------------------------------------------------------------------------
// End-to-end differential contract.

// Real-learner search mirroring tests/test_golden_search.cpp: iteration
// budget terminates, modeled costs, holdout — a pure function of the seed.
AutoMLOptions real_racing_options(std::size_t max_iterations) {
  AutoMLOptions options;
  options.time_budget_seconds = 1e6;
  options.max_iterations = max_iterations;
  options.initial_sample_size = 32;
  options.resampling = ResamplingPolicy::ForceHoldout;
  options.estimator_list = {"lgbm", "rf"};
  options.trial_cost_model = [](const Learner& learner, const Config& config,
                                std::size_t sample_size) {
    double config_sum = 0.0;
    for (const auto& [name, value] : config) config_sum += std::abs(value);
    return learner.initial_cost_multiplier() *
               (0.05 + 0.001 * static_cast<double>(sample_size)) +
           1e-6 * config_sum;
  };
  options.seed = 7;
  return options;
}

RacingOptions tight_racing() {
  RacingOptions racing;
  racing.enabled = true;
  racing.grace_iterations = 1;
  racing.slack_rel = 0.0;
  racing.slack_abs = 0.0;
  return racing;
}

TEST(RacingSearch, StubSearchesAreUnchangedByRacing) {
  // The stub lineup never streams a curve, so racing-on cannot fire and the
  // history must equal the racing-off golden byte for byte.
  const Dataset data = resume_tiny_binary(1001);
  AutoML off;
  add_resume_lineup(off);
  off.fit(data, resume_options(42, 15));
  AutoMLOptions on_options = resume_options(42, 15);
  on_options.racing = tight_racing();
  AutoML on;
  add_resume_lineup(on);
  on.fit(data, on_options);
  expect_histories_identical(on.history(), off.history(),
                             "stub racing-on vs racing-off");
  EXPECT_DOUBLE_EQ(on.metrics().value("trials_raced"), 0.0);
}

TEST(RacingSearch, InfiniteSlackRacingMatchesRacingOffByteForByte) {
  // With real learners the trials DO stream — but an infinite slack means
  // no kill can ever fire, so this pins that streaming is pure observation
  // end to end (scoring never perturbs training, costs, or the RNG).
  const Dataset data = resume_tiny_binary(2024);
  AutoML off;
  off.fit(data, real_racing_options(10));
  AutoMLOptions on_options = real_racing_options(10);
  on_options.racing = tight_racing();
  on_options.racing.slack_abs = 1e18;
  AutoML on;
  on.fit(data, on_options);
  expect_histories_identical(on.history(), off.history(),
                             "infinite-slack racing vs racing-off");
  EXPECT_DOUBLE_EQ(on.metrics().value("trials_raced"), 0.0);
}

TEST(RacingSearch, CvSearchesAreNeverRaced) {
  // Per-fold curves are not comparable to fixed-holdout envelopes, so
  // racing must be inert under CV even when enabled with zero slack.
  const Dataset data = resume_tiny_binary(2024);
  auto sink = std::make_shared<observe::MemoryTraceSink>();
  AutoMLOptions off_options = real_racing_options(8);
  off_options.resampling = ResamplingPolicy::ForceCV;
  AutoML off;
  off.fit(data, off_options);
  AutoMLOptions on_options = off_options;
  on_options.racing = tight_racing();
  on_options.trace_sink = sink;
  AutoML on;
  on.fit(data, on_options);
  expect_histories_identical(on.history(), off.history(),
                             "CV racing-on vs racing-off");
  EXPECT_DOUBLE_EQ(on.metrics().value("trials_raced"), 0.0);
  EXPECT_TRUE(sink->of_type("trial_raced").empty());
}

// Pinned digests of the racing-ON real-learner search (seed 7, 12 trials,
// tight slack). Re-pin ONLY for intentional changes to the search loop, the
// tree learners, or the racing rule.
constexpr std::uint64_t kRacingSerialDigest = 0x44cc7baad1c5a0c9ULL;
constexpr std::uint64_t kRacingParallelDigest = 0x925fd1b2d43ea4aeULL;

TEST(RacingSearch, TightSlackRacesDominatedTrialsDeterministically) {
  const Dataset data = resume_tiny_binary(2024);
  auto sink = std::make_shared<observe::MemoryTraceSink>();
  AutoMLOptions options = real_racing_options(12);
  options.racing = tight_racing();
  options.trace_sink = sink;
  AutoML automl;
  automl.fit(data, options);
  ASSERT_EQ(automl.history().size(), 12u);
  expect_history_digest(automl.history(), kRacingSerialDigest,
                        "racing-on serial golden");

  // Racing actually fired, consistently across history, metrics and trace.
  const double n_raced = automl.metrics().value("trials_raced");
  EXPECT_GE(n_raced, 1.0);
  std::size_t history_raced = 0;
  for (const TrialRecord& r : automl.history()) {
    if (std::isinf(r.error)) ++history_raced;
  }
  EXPECT_EQ(static_cast<double>(history_raced), n_raced);
  EXPECT_EQ(sink->of_type("trial_raced").size(),
            static_cast<std::size_t>(n_raced));
  std::size_t finished_raced = 0;
  for (const observe::TraceEvent& e : sink->of_type("trial_finished")) {
    const JsonValue* status = e.fields.find("status");
    ASSERT_NE(status, nullptr);
    if (status->str == "raced") ++finished_raced;
  }
  EXPECT_EQ(static_cast<double>(finished_raced), n_raced);
  // The whole trace still validates against the schema.
  const observe::TraceCheckResult check =
      observe::check_trace_events(sink->snapshot());
  EXPECT_TRUE(check.errors.empty())
      << "trace check failed: " << check.errors.front();

  // Run-to-run determinism of the racing-on search.
  AutoMLOptions again_options = real_racing_options(12);
  again_options.racing = tight_racing();
  AutoML again;
  again.fit(data, again_options);
  expect_histories_identical(again.history(), automl.history(),
                             "racing-on run-to-run");
}

TEST(RacingSearch, ParallelTightSlackSearchIsPinnedToo) {
  const Dataset data = resume_tiny_binary(2024);
  AutoMLOptions options = real_racing_options(12);
  options.racing = tight_racing();
  options.n_parallel = 2;
  AutoML automl;
  automl.fit(data, options);
  ASSERT_EQ(automl.history().size(), 12u);
  expect_history_digest(automl.history(), kRacingParallelDigest,
                        "racing-on parallel golden");
}

TEST(RacingSearch, MonitorStateRoundTripsThroughTheCheckpoint) {
  const Dataset data = resume_tiny_binary(2024);
  AutoMLOptions options = real_racing_options(12);
  options.racing = tight_racing();
  AutoML automl;
  automl.fit(data, options);
  const resume::SearchCheckpoint ckpt = automl.checkpoint_to();
  ASSERT_TRUE(ckpt.racing.is_object());
  ASSERT_FALSE(ckpt.racing.at("envelopes").array.empty());
  // The AutoML layer can restore the monitor from the checkpoint field...
  RacingMonitor restored;
  restored.from_json(ckpt.racing);
  EXPECT_GT(restored.n_envelopes(), 0u);
  // ...and the full checkpoint survives its own serialization round trip
  // with the racing state intact (structural validation in flaml_resume).
  const resume::SearchCheckpoint reloaded =
      resume::SearchCheckpoint::from_json(ckpt.to_json());
  ASSERT_TRUE(reloaded.racing.is_object());
  EXPECT_EQ(reloaded.racing.at("envelopes").array.size(),
            ckpt.racing.at("envelopes").array.size());
}

// Satellite regression at the trace level: every trial_finished carries the
// measured elapsed_seconds, and no killed trial's charged cost can exceed
// the total wall budget (the bug charged the model's full-trial estimate).
TEST(RacingTrace, TraceCostsNeverExceedTheWallBudget) {
  const Dataset data = resume_tiny_binary(1001);
  auto sink = std::make_shared<observe::MemoryTraceSink>();
  AutoMLOptions options = resume_options(9, 10);
  options.learner_choice = LearnerChoice::RoundRobin;
  options.estimator_list = {"stub_fast", "overrunner"};
  options.trial_cost_model = [](const Learner& learner, const Config&,
                                std::size_t) {
    return learner.name() == "overrunner" ? 1e9 : 0.5;
  };
  options.trace_sink = sink;
  AutoML automl;
  automl.add_learner(std::make_shared<StubLearner>("stub_fast", 1.0));
  automl.add_learner(std::make_shared<OverrunLearner>());
  automl.fit(data, options);
  const auto finished = sink->of_type("trial_finished");
  ASSERT_FALSE(finished.empty());
  std::size_t killed = 0;
  for (const observe::TraceEvent& e : finished) {
    const JsonValue* cost = e.fields.find("cost");
    ASSERT_NE(cost, nullptr);
    ASSERT_TRUE(cost->is_number());
    EXPECT_LE(cost->number, options.time_budget_seconds)
        << "trace charged more budget than the trial could have burned";
    const JsonValue* elapsed = e.fields.find("elapsed_seconds");
    ASSERT_NE(elapsed, nullptr);
    ASSERT_TRUE(elapsed->is_number());
    EXPECT_GE(elapsed->number, 0.0);
    const JsonValue* status = e.fields.find("status");
    ASSERT_NE(status, nullptr);
    if (status->str == "killed") ++killed;
  }
  EXPECT_GE(killed, 1u);  // the overrunner really was killed (and charged)
}

}  // namespace
}  // namespace flaml
