// Strict wire-JSON integer decoding (common/wire.h) — the regression suite
// for the silent-truncation bug: JSON numbers are doubles, and the old
// service helpers static_cast them, so {"seed":1.5} quietly became seed=1
// and out-of-range doubles were undefined behaviour. The strict decoders
// must reject fractional, negative, non-finite and beyond-2^53 values with
// typed errors, and accept exact integers up to the representability
// ceiling unchanged.
#include "common/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"

namespace flaml {
namespace {

JsonValue obj(const std::string& json) { return parse_json(json); }

TEST(Wire, OptSizeAcceptsExactIntegers) {
  EXPECT_EQ(wire::opt_size(obj(R"({"n":0})"), "n", 7), 0u);
  EXPECT_EQ(wire::opt_size(obj(R"({"n":42})"), "n", 7), 42u);
  EXPECT_EQ(wire::opt_size(obj(R"({"n":1e6})"), "n", 7), 1000000u);
  // Absent field -> fallback, untouched by validation.
  EXPECT_EQ(wire::opt_size(obj(R"({})"), "n", 7), 7u);
}

TEST(Wire, OptSizeRejectsFractional) {
  // The original bug: "seed":1.5 silently truncated to 1.
  EXPECT_THROW(wire::opt_size(obj(R"({"seed":1.5})"), "seed", 0),
               InvalidArgument);
  EXPECT_THROW(wire::opt_size(obj(R"({"n":0.25})"), "n", 0), InvalidArgument);
  EXPECT_THROW(wire::opt_size(obj(R"({"n":-0.5})"), "n", 0), InvalidArgument);
}

TEST(Wire, OptSizeRejectsNegative) {
  EXPECT_THROW(wire::opt_size(obj(R"({"n":-1})"), "n", 0), InvalidArgument);
  EXPECT_THROW(wire::opt_size(obj(R"({"n":-1e18})"), "n", 0), InvalidArgument);
}

TEST(Wire, OptSizeAroundTheSafeIntegerCeiling) {
  // 2^53 is the last double that represents every smaller integer exactly.
  const double ceiling = static_cast<double>(wire::kMaxSafeInteger);
  JsonValue at = JsonValue::make_object();
  at.set("n", JsonValue::make_number(ceiling));
  EXPECT_EQ(wire::opt_size(at, "n", 0), wire::kMaxSafeInteger);

  JsonValue below = JsonValue::make_object();
  below.set("n", JsonValue::make_number(ceiling - 1.0));
  EXPECT_EQ(wire::opt_size(below, "n", 0), wire::kMaxSafeInteger - 1);

  // 2^53 + 1 is not representable; the nearest doubles are 2^53 (accepted,
  // exact) and 2^53 + 2 (above the ceiling -> rejected, never aliased).
  JsonValue above = JsonValue::make_object();
  above.set("n", JsonValue::make_number(ceiling + 2.0));
  EXPECT_THROW(wire::opt_size(above, "n", 0), InvalidArgument);

  // An explicit tighter cap rejects values the ceiling would accept.
  EXPECT_THROW(wire::opt_size(obj(R"({"n":11})"), "n", 0, 10), InvalidArgument);
  EXPECT_EQ(wire::opt_size(obj(R"({"n":10})"), "n", 0, 10), 10u);
}

TEST(Wire, OptSizeRejectsNonFinite) {
  // make_number itself refuses non-finite values, so a non-finite number can
  // only appear via a bug elsewhere; build one by hand to prove the wire
  // layer is defensive in depth rather than trusting its callers.
  JsonValue bad = JsonValue::make_number(0.0);
  bad.number = std::numeric_limits<double>::infinity();
  JsonValue request = JsonValue::make_object();
  request.set("n", bad);
  EXPECT_THROW(wire::opt_size(request, "n", 0), InvalidArgument);
  bad.number = std::numeric_limits<double>::quiet_NaN();
  request.set("n", bad);
  EXPECT_THROW(wire::opt_size(request, "n", 0), InvalidArgument);
}

TEST(Wire, OptSizeRejectsWrongType) {
  EXPECT_THROW(wire::opt_size(obj(R"({"n":"3"})"), "n", 0), InvalidArgument);
  EXPECT_THROW(wire::opt_size(obj(R"({"n":true})"), "n", 0), InvalidArgument);
}

TEST(Wire, ReqIdRequiresPositiveIntegral) {
  EXPECT_EQ(wire::req_id(obj(R"({"id":1})")), 1u);
  EXPECT_EQ(wire::req_id(obj(R"({"id":12345})")), 12345u);
  EXPECT_THROW(wire::req_id(obj(R"({})")), InvalidArgument);       // absent
  EXPECT_THROW(wire::req_id(obj(R"({"id":0})")), InvalidArgument);  // < 1
  EXPECT_THROW(wire::req_id(obj(R"({"id":1.5})")), InvalidArgument);
  EXPECT_THROW(wire::req_id(obj(R"({"id":-3})")), InvalidArgument);
  EXPECT_THROW(wire::req_id(obj(R"({"id":"1"})")), InvalidArgument);
}

TEST(Wire, ErrorsNameTheField) {
  try {
    wire::opt_size(obj(R"({"quantum_trials":2.5})"), "quantum_trials", 0);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("quantum_trials"), std::string::npos)
        << e.what();
  }
}

TEST(Wire, OptionalTypedFields) {
  const JsonValue request = obj(R"({"s":"x","b":true,"d":2.5})");
  EXPECT_EQ(wire::opt_string(request, "s", "f"), "x");
  EXPECT_EQ(wire::opt_string(request, "missing", "f"), "f");
  EXPECT_TRUE(wire::opt_bool(request, "b", false));
  EXPECT_FALSE(wire::opt_bool(request, "missing", false));
  EXPECT_DOUBLE_EQ(wire::opt_number(request, "d", 0.0), 2.5);
  EXPECT_THROW(wire::opt_string(request, "b", "f"), InvalidArgument);
  EXPECT_THROW(wire::opt_number(request, "s", 0.0), InvalidArgument);
}

TEST(Wire, ResponseShells) {
  const JsonValue ok = wire::ok_response();
  ASSERT_NE(ok.find("ok"), nullptr);
  EXPECT_TRUE(ok.find("ok")->boolean);
  const JsonValue err = wire::error_response("boom");
  EXPECT_FALSE(err.find("ok")->boolean);
  EXPECT_EQ(err.find("error")->str, "boom");
}

}  // namespace
}  // namespace flaml
