#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace flaml {
namespace {

TEST(Sigmoid, KnownValues) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
}

TEST(Sigmoid, Symmetry) {
  for (double x : {0.1, 1.0, 5.0, 30.0}) {
    EXPECT_NEAR(sigmoid(x) + sigmoid(-x), 1.0, 1e-12);
  }
}

TEST(Sigmoid, ExtremeValuesDontOverflow) {
  EXPECT_NEAR(sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(Log1pExp, MatchesNaiveInSafeRange) {
  for (double x : {-5.0, -1.0, 0.0, 1.0, 5.0}) {
    EXPECT_NEAR(log1pexp(x), std::log1p(std::exp(x)), 1e-12);
  }
}

TEST(Log1pExp, LargeArgumentIsIdentity) { EXPECT_DOUBLE_EQ(log1pexp(100.0), 100.0); }

TEST(LogSumExp, MatchesDirectComputation) {
  std::vector<double> x{1.0, 2.0, 3.0};
  double direct = std::log(std::exp(1.0) + std::exp(2.0) + std::exp(3.0));
  EXPECT_NEAR(logsumexp(x), direct, 1e-12);
}

TEST(LogSumExp, StableForLargeValues) {
  std::vector<double> x{1000.0, 1000.0};
  EXPECT_NEAR(logsumexp(x), 1000.0 + std::log(2.0), 1e-9);
}

TEST(Softmax, SumsToOne) {
  std::vector<double> x{1.0, -2.0, 0.5, 3.0};
  softmax_inplace(x);
  double sum = 0.0;
  for (double v : x) {
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MeanVariance, SmallExample) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(x), 2.5);
  EXPECT_NEAR(variance(x), 5.0 / 3.0, 1e-12);
}

TEST(Variance, SingleValueIsZero) {
  std::vector<double> x{42.0};
  EXPECT_DOUBLE_EQ(variance(x), 0.0);
}

TEST(HarmonicMean, KnownValue) {
  std::vector<double> x{1.0, 2.0, 4.0};
  EXPECT_NEAR(harmonic_mean(x), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
}

TEST(HarmonicMean, DominatedBySmallest) {
  std::vector<double> x{0.001, 100.0, 100.0};
  EXPECT_LT(harmonic_mean(x), 0.003);
}

TEST(HarmonicMean, RejectsNonPositive) {
  std::vector<double> x{1.0, 0.0};
  EXPECT_THROW(harmonic_mean(x), InternalError);
}

class QuantileTest : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(QuantileTest, LinearInterpolation) {
  std::vector<double> x{10.0, 20.0, 30.0, 40.0, 50.0};
  auto [q, expected] = GetParam();
  EXPECT_NEAR(quantile(x, q), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Points, QuantileTest,
    ::testing::Values(std::make_pair(0.0, 10.0), std::make_pair(0.25, 20.0),
                      std::make_pair(0.5, 30.0), std::make_pair(0.75, 40.0),
                      std::make_pair(1.0, 50.0), std::make_pair(0.1, 14.0)));

TEST(Quantile, UnsortedInput) {
  std::vector<double> x{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(x, 0.5), 3.0);
}

TEST(Clamp, Basics) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(ApproxEqual, RelativeTolerance) {
  EXPECT_TRUE(approx_equal(1e9, 1e9 + 1.0, 1e-8));
  EXPECT_FALSE(approx_equal(1.0, 1.1, 1e-8));
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(Pearson, PerfectAntiCorrelation) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-12);
}

TEST(Pearson, DegenerateIsZero) {
  std::vector<double> a{1.0, 1.0, 1.0};
  std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

}  // namespace
}  // namespace flaml
