#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "boosting/gbdt.h"
#include "data/generators.h"
#include "forest/forest.h"

namespace flaml {
namespace {

// Data where ONLY feature 0 carries signal; 1..4 are pure noise.
Dataset single_signal_data(Task task, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ColumnInfo> cols(5);
  for (int f = 0; f < 5; ++f) {
    cols[static_cast<std::size_t>(f)].name = "f" + std::to_string(f);
  }
  Dataset data(task, std::move(cols));
  std::vector<std::vector<float>> values(5, std::vector<float>(600));
  std::vector<double> labels(600);
  for (std::size_t i = 0; i < 600; ++i) {
    for (int f = 0; f < 5; ++f) {
      values[static_cast<std::size_t>(f)][i] = static_cast<float>(rng.normal());
    }
    double x = values[0][i];
    labels[i] = task == Task::Regression ? 3.0 * x
                                         : (x > 0.0 ? 1.0 : 0.0);
  }
  for (int f = 0; f < 5; ++f) {
    data.set_column(static_cast<std::size_t>(f), std::move(values[static_cast<std::size_t>(f)]));
  }
  data.set_labels(std::move(labels));
  return data;
}

TEST(FeatureImportance, GbdtIdentifiesSignalFeature) {
  Dataset data = single_signal_data(Task::BinaryClassification, 3);
  GBDTParams params;
  params.n_trees = 20;
  params.max_leaves = 7;
  GBDTModel model = train_gbdt(DataView(data), nullptr, params);
  auto gains = model.feature_importance(5);
  ASSERT_EQ(gains.size(), 5u);
  double total = std::accumulate(gains.begin(), gains.end(), 0.0);
  ASSERT_GT(total, 0.0);
  EXPECT_GT(gains[0] / total, 0.8) << "signal feature must dominate";
}

TEST(FeatureImportance, GbdtRegression) {
  Dataset data = single_signal_data(Task::Regression, 5);
  GBDTParams params;
  params.n_trees = 15;
  GBDTModel model = train_gbdt(DataView(data), nullptr, params);
  auto gains = model.feature_importance(5);
  EXPECT_EQ(std::max_element(gains.begin(), gains.end()) - gains.begin(), 0);
}

TEST(FeatureImportance, ForestIdentifiesSignalFeature) {
  Dataset data = single_signal_data(Task::BinaryClassification, 7);
  ForestParams params;
  params.n_trees = 15;
  params.max_features = 0.6;
  ForestModel model = train_forest(DataView(data), params);
  auto gains = model.feature_importance(5);
  double total = std::accumulate(gains.begin(), gains.end(), 0.0);
  ASSERT_GT(total, 0.0);
  EXPECT_GT(gains[0] / total, 0.6);
}

TEST(FeatureImportance, GainsSurviveSerialization) {
  Dataset data = single_signal_data(Task::Regression, 9);
  GBDTParams params;
  params.n_trees = 5;
  GBDTModel model = train_gbdt(DataView(data), nullptr, params);
  GBDTModel back = GBDTModel::from_string(model.to_string());
  auto a = model.feature_importance(5);
  auto b = back.feature_importance(5);
  for (std::size_t f = 0; f < 5; ++f) EXPECT_NEAR(a[f], b[f], 1e-6);
}

TEST(FeatureImportance, LeafOnlyTreeHasZeroGains) {
  Tree tree;
  std::vector<double> gains(3, 0.0);
  tree.add_feature_gains(gains);
  for (double g : gains) EXPECT_DOUBLE_EQ(g, 0.0);
}

}  // namespace
}  // namespace flaml
