#include "tree/class_grower.h"

#include <gtest/gtest.h>

#include <numeric>

#include "data/generators.h"

namespace flaml {
namespace {

struct ClassFixture {
  explicit ClassFixture(const Dataset& data)
      : view(data),
        mapper(BinMapper::fit(view, 255)),
        binned(mapper.encode(view)),
        labels(view.n_rows()) {
    for (std::size_t i = 0; i < view.n_rows(); ++i) {
      labels[i] = static_cast<int>(view.label(i));
    }
  }

  Tree fit(ClassGrowerParams params, int n_classes, std::uint64_t seed = 1) {
    std::vector<std::uint32_t> rows(view.n_rows());
    std::iota(rows.begin(), rows.end(), 0u);
    ClassTreeGrower grower(mapper, binned, n_classes);
    Rng rng(seed);
    return grower.grow(rows, labels, params, rng);
  }

  DataView view;
  BinMapper mapper;
  BinnedMatrix binned;
  std::vector<int> labels;
};

Dataset separable_binary() {
  Dataset data(Task::BinaryClassification, {{"x", ColumnType::Numeric, 0}});
  std::vector<float> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(static_cast<float>(i));
    y.push_back(i < 50 ? 0.0 : 1.0);
  }
  data.set_column(0, std::move(x));
  data.set_labels(std::move(y));
  return data;
}

TEST(ClassGrower, SeparatesLinearlySeparableData) {
  Dataset data = separable_binary();
  ClassFixture fx(data);
  ClassGrowerParams params;
  params.max_leaves = 2;
  Tree tree = fx.fit(params, 2);
  EXPECT_EQ(tree.n_leaves(), 2u);
  const auto& dists = tree.leaf_distributions();
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    auto leaf = tree.leaf_index(data, i);
    const auto& dist = dists[static_cast<std::size_t>(leaf)];
    int predicted = dist[1] > dist[0] ? 1 : 0;
    EXPECT_EQ(predicted, static_cast<int>(data.label(i)));
  }
}

TEST(ClassGrower, PureLeavesStopSplitting) {
  Dataset data(Task::BinaryClassification, {{"x", ColumnType::Numeric, 0}});
  data.set_column(0, {1.0f, 2.0f, 3.0f, 4.0f});
  data.set_labels({1.0, 1.0, 1.0, 1.0});
  // Hack: dataset needs 2 classes for the grower; declare 2 but labels pure.
  ClassFixture fx(data);
  ClassGrowerParams params;
  params.max_leaves = 8;
  Tree tree = fx.fit(params, 2);
  EXPECT_EQ(tree.n_leaves(), 1u);
}

TEST(ClassGrower, LeafDistributionsSumToOne) {
  SyntheticSpec spec;
  spec.task = Task::MultiClassification;
  spec.n_classes = 4;
  spec.n_rows = 500;
  spec.n_features = 6;
  Dataset data = make_classification(spec);
  ClassFixture fx(data);
  ClassGrowerParams params;
  params.max_leaves = 16;
  Tree tree = fx.fit(params, 4);
  const auto& dists = tree.leaf_distributions();
  for (std::size_t n = 0; n < tree.n_nodes(); ++n) {
    if (!tree.node(n).is_leaf()) continue;
    double sum = 0.0;
    for (double p : dists[n]) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

class CriterionTest : public ::testing::TestWithParam<SplitCriterion> {};

TEST_P(CriterionTest, BothCriteriaSeparateClusters) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 400;
  spec.n_features = 5;
  spec.class_sep = 2.5;
  spec.nonlinearity = 0.0;
  spec.seed = 9;
  Dataset data = make_classification(spec);
  ClassFixture fx(data);
  ClassGrowerParams params;
  params.criterion = GetParam();
  params.max_leaves = 32;
  Tree tree = fx.fit(params, 2);
  const auto& dists = tree.leaf_distributions();
  int correct = 0;
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const auto& d = dists[static_cast<std::size_t>(tree.leaf_index(data, i))];
    int pred = d[1] > d[0] ? 1 : 0;
    correct += pred == static_cast<int>(data.label(i)) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(data.n_rows()), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Criteria, CriterionTest,
                         ::testing::Values(SplitCriterion::Gini,
                                           SplitCriterion::Entropy));

TEST(ClassGrower, MaxLeavesRespected) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 600;
  spec.n_features = 8;
  Dataset data = make_classification(spec);
  ClassFixture fx(data);
  ClassGrowerParams params;
  params.max_leaves = 5;
  Tree tree = fx.fit(params, 2);
  EXPECT_LE(tree.n_leaves(), 5u);
}

TEST(ClassGrower, MinSamplesLeafRespected) {
  Dataset data = separable_binary();
  ClassFixture fx(data);
  ClassGrowerParams params;
  params.min_samples_leaf = 25;
  params.max_leaves = 16;
  Tree tree = fx.fit(params, 2);
  std::vector<int> counts(tree.n_nodes(), 0);
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    counts[static_cast<std::size_t>(tree.leaf_index(data, i))] += 1;
  }
  for (std::size_t n = 0; n < tree.n_nodes(); ++n) {
    if (tree.node(n).is_leaf()) EXPECT_GE(counts[n], 25);
  }
}

TEST(ClassGrower, ExtraRandomStillLearns) {
  Dataset data = separable_binary();
  ClassFixture fx(data);
  ClassGrowerParams params;
  params.extra_random = true;
  params.max_leaves = 32;
  Tree tree = fx.fit(params, 2, /*seed=*/5);
  const auto& dists = tree.leaf_distributions();
  int correct = 0;
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const auto& d = dists[static_cast<std::size_t>(tree.leaf_index(data, i))];
    correct += (d[1] > d[0] ? 1 : 0) == static_cast<int>(data.label(i)) ? 1 : 0;
  }
  EXPECT_GT(correct, 90);
}

TEST(ClassGrower, BinaryLeafValueIsPositiveClassProbability) {
  Dataset data = separable_binary();
  ClassFixture fx(data);
  ClassGrowerParams params;
  params.max_leaves = 2;
  Tree tree = fx.fit(params, 2);
  for (std::size_t n = 0; n < tree.n_nodes(); ++n) {
    if (!tree.node(n).is_leaf()) continue;
    EXPECT_NEAR(tree.node(n).leaf_value, tree.leaf_distributions()[n][1], 1e-12);
  }
}

TEST(ClassGrower, CategoricalFeatureSplit) {
  Dataset data(Task::BinaryClassification, {{"c", ColumnType::Categorical, 4}});
  std::vector<float> codes;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    int code = i % 4;
    codes.push_back(static_cast<float>(code));
    y.push_back(code == 2 ? 1.0 : 0.0);
  }
  data.set_column(0, std::move(codes));
  data.set_labels(std::move(y));
  ClassFixture fx(data);
  ClassGrowerParams params;
  params.max_leaves = 2;
  Tree tree = fx.fit(params, 2);
  EXPECT_TRUE(tree.node(0).categorical);
  EXPECT_EQ(tree.node(0).category, 2);
}

// The compact gathered scan (small leaves) and the histogram scan (large
// leaves) must produce equivalent trees. We grow the same data twice with
// sizes that exercise both paths and check training accuracy parity.
TEST(ClassGrower, CompactAndHistogramPathsAgree) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 1000;  // root uses histograms, deep leaves use compact scan
  spec.n_features = 6;
  spec.class_sep = 1.5;
  spec.seed = 77;
  Dataset data = make_classification(spec);
  ClassFixture fx(data);
  ClassGrowerParams params;
  params.max_leaves = 64;
  Tree tree = fx.fit(params, 2);
  const auto& dists = tree.leaf_distributions();
  int correct = 0;
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const auto& d = dists[static_cast<std::size_t>(tree.leaf_index(data, i))];
    correct += (d[1] > d[0] ? 1 : 0) == static_cast<int>(data.label(i)) ? 1 : 0;
  }
  // Well-separated data with 64 leaves must be almost perfectly fit
  // regardless of which scan path found each split.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(data.n_rows()), 0.95);
}

TEST(ClassGrower, SmallLeafOnlyTreeUsesCompactPath) {
  // 100 rows <= compact threshold: the whole tree grows without histograms.
  Dataset data = separable_binary();
  ClassFixture fx(data);
  ClassGrowerParams params;
  params.max_leaves = 8;
  Tree tree = fx.fit(params, 2);
  EXPECT_GE(tree.n_leaves(), 2u);
  const auto& dists = tree.leaf_distributions();
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const auto& d = dists[static_cast<std::size_t>(tree.leaf_index(data, i))];
    EXPECT_EQ(d[1] > d[0] ? 1 : 0, static_cast<int>(data.label(i)));
  }
}

TEST(ClassGrower, RejectsSingleClassConstruction) {
  Dataset data = separable_binary();
  ClassFixture fx(data);
  EXPECT_THROW(ClassTreeGrower(fx.mapper, fx.binned, 1), InvalidArgument);
}

}  // namespace
}  // namespace flaml
