// The search daemon (src/server): SearchJob segmenting, the SearchDaemon
// scheduler (fair-share quanta, priority preemption, deadlines, cancel) and
// the line-delimited JSON service. Every scheduling test asserts the core
// contract: however a job was sliced, preempted and resumed, its trial
// history/best/metrics equal a solo uninterrupted run of the same options —
// the checkpoint byte-exactness of tests/test_resume.cpp lifted to the
// daemon. tests/stress/stress_server.cpp re-runs the N×M matrix under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "server/service.h"
#include "support/resume_test_util.h"

namespace flaml::testing {
namespace {

using server::JobOptions;
using server::JobState;
using server::RingTraceSink;
using server::SearchDaemon;
using server::SearchService;

std::vector<LearnerPtr> stub_lineup() {
  return {std::make_shared<StubLearner>("stub_fast", 1.0),
          std::make_shared<StubLearner>("stub_mid", 1.9),
          std::make_shared<StubLearner>("stub_slow", 15.0)};
}

// Reference: the same search, uninterrupted, in-process.
void solo_run(AutoML& automl, const Dataset& data, std::uint64_t seed,
              std::size_t iterations) {
  add_resume_lineup(automl);
  automl.fit(data, resume_options(seed, iterations));
}

// --- RingTraceSink ---------------------------------------------------------

observe::TraceEvent numbered_event(int n) {
  observe::TraceEvent event;
  event.type = "test_event";
  event.fields = JsonValue::make_object();
  event.fields.set("n", JsonValue::make_number(n));
  return event;
}

TEST(RingTraceSink, WindowPagingAndDrop) {
  RingTraceSink ring(4);
  for (int n = 0; n < 6; ++n) ring.emit(numbered_event(n));
  EXPECT_EQ(ring.total(), 6u);

  // The two oldest events fell off; a cursor at 0 reports them as dropped.
  RingTraceSink::Window window = ring.since(0);
  EXPECT_EQ(window.first, 2u);
  EXPECT_EQ(window.next, 6u);
  EXPECT_EQ(window.dropped, 2u);
  ASSERT_EQ(window.events.size(), 4u);
  EXPECT_EQ(window.events.front().fields.at("n").number, 2.0);

  // Paging from the returned cursor loses nothing.
  window = ring.since(window.next);
  EXPECT_TRUE(window.events.empty());
  EXPECT_EQ(window.dropped, 0u);
  ring.emit(numbered_event(6));
  window = ring.since(window.next);
  ASSERT_EQ(window.events.size(), 1u);
  EXPECT_EQ(window.events.front().fields.at("n").number, 6.0);
}

TEST(RingTraceSink, RejectsZeroCapacity) {
  EXPECT_THROW(RingTraceSink ring(0), InvalidArgument);
}

// --- SearchJob -------------------------------------------------------------

TEST(SearchJob, UninterruptedSegmentEqualsPlainFit) {
  const Dataset data = resume_tiny_binary(21);
  SearchJob job(data, resume_options(21, 10), stub_lineup());
  EXPECT_EQ(job.run_segment(), SearchJob::State::Finished);
  EXPECT_TRUE(job.terminal());
  EXPECT_EQ(job.segments(), 1u);

  AutoML reference;
  solo_run(reference, data, 21, 10);
  expect_resumed_equals_reference(job.automl(), reference, "single segment");
}

TEST(SearchJob, PreemptAtEveryBoundaryResumesExactly) {
  const Dataset data = resume_tiny_binary(22);
  const std::size_t iterations = 8;
  AutoML reference;
  solo_run(reference, data, 22, iterations);

  // Boundary 0 = before the first trial; boundary k = after the k-th commit.
  for (std::size_t kill_at = 0; kill_at <= iterations; ++kill_at) {
    SearchJob job(data, resume_options(22, iterations), stub_lineup());
    bool fired = false;
    const auto preempt_once = [&](std::size_t iteration) {
      if (!fired && iteration == kill_at) {
        fired = true;
        return SearchSignal::Preempt;
      }
      return SearchSignal::Run;
    };
    const SearchJob::State first = job.run_segment(preempt_once);
    if (kill_at < iterations) {
      ASSERT_EQ(first, SearchJob::State::Preempted) << "boundary " << kill_at;
      ASSERT_TRUE(job.has_checkpoint()) << "boundary " << kill_at;
      EXPECT_EQ(job.run_segment(), SearchJob::State::Finished)
          << "boundary " << kill_at;
      EXPECT_EQ(job.segments(), 2u);
    } else {
      // The search hits max_iterations at the same boundary the preempt
      // would land on; completing wins.
      ASSERT_EQ(first, SearchJob::State::Finished);
    }
    expect_resumed_equals_reference(
        job.automl(), reference,
        "preempt at boundary " + std::to_string(kill_at));
  }
}

TEST(SearchJob, CancelStopsWithoutResult) {
  const Dataset data = resume_tiny_binary(23);
  SearchJob job(data, resume_options(23, 10), stub_lineup());
  const auto cancel_at_3 = [](std::size_t iteration) {
    return iteration == 3 ? SearchSignal::Cancel : SearchSignal::Run;
  };
  EXPECT_EQ(job.run_segment(cancel_at_3), SearchJob::State::Cancelled);
  EXPECT_TRUE(job.terminal());
  EXPECT_FALSE(job.automl().fitted());
  EXPECT_EQ(job.automl().history().size(), 3u);
  // Terminal jobs cannot run again.
  EXPECT_THROW(job.run_segment(), InvalidArgument);
}

// --- SearchDaemon: correctness of scheduled searches -----------------------

TEST(SearchDaemon, ConcurrentJobsMatchSoloRuns) {
  const std::vector<std::uint64_t> seeds = {31, 32, 33, 34};
  const std::size_t iterations = 10;
  SearchDaemon daemon({/*slots=*/2, /*trace_capacity=*/512});
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seed : seeds) {
    auto data = std::make_shared<const Dataset>(resume_tiny_binary(seed));
    JobOptions job_options;
    job_options.quantum_trials = 3;  // force interleaving while peers wait
    ids.push_back(daemon.submit(data, resume_options(seed, iterations),
                                job_options, stub_lineup()));
  }
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  daemon.wait_all();

  for (std::size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_EQ(daemon.state(ids[i]), JobState::Finished) << "job " << ids[i];
    const Dataset data = resume_tiny_binary(seeds[i]);
    AutoML reference;
    solo_run(reference, data, seeds[i], iterations);
    expect_resumed_equals_reference(daemon.automl(ids[i]), reference,
                                    "daemon job " + std::to_string(ids[i]));
    const JsonValue status = daemon.status(ids[i]);
    EXPECT_EQ(status.at("state").str, "finished");
    EXPECT_EQ(status.at("trials").number, static_cast<double>(iterations));
    // Each job streamed its own full trace (run_started .. run_summary,
    // possibly split across segments).
    const RingTraceSink::Window window = daemon.events(ids[i], 0);
    ASSERT_FALSE(window.events.empty());
    EXPECT_EQ(window.events.front().type, "run_started");
    EXPECT_EQ(window.events.back().type, "run_summary");
  }
}

TEST(SearchDaemon, TestControlPreemptionRequeuesAndResumes) {
  const std::uint64_t seed = 41;
  const std::size_t iterations = 9;
  SearchDaemon daemon({/*slots=*/1, /*trace_capacity=*/512});
  auto data = std::make_shared<const Dataset>(resume_tiny_binary(seed));
  JobOptions job_options;
  job_options.quantum_trials = 0;
  std::atomic<bool> fired{false};
  job_options.test_control = [&](std::size_t iteration) {
    if (!fired.load() && iteration == 4) {
      fired.store(true);
      return SearchSignal::Preempt;
    }
    return SearchSignal::Run;
  };
  const std::uint64_t id = daemon.submit(data, resume_options(seed, iterations),
                                         job_options, stub_lineup());
  daemon.wait(id);
  ASSERT_EQ(daemon.state(id), JobState::Finished);
  const JsonValue status = daemon.status(id);
  EXPECT_EQ(status.at("preemptions").number, 1.0);
  EXPECT_EQ(status.at("segments").number, 2.0);

  AutoML reference;
  solo_run(reference, *data, seed, iterations);
  expect_resumed_equals_reference(daemon.automl(id), reference,
                                  "preempted daemon job");
}

TEST(SearchDaemon, PreemptApiEvictsARunningJob) {
  const std::uint64_t seed = 42;
  const std::size_t iterations = 12;
  SearchDaemon daemon({/*slots=*/1, /*trace_capacity=*/512});
  auto data = std::make_shared<const Dataset>(resume_tiny_binary(seed));

  // Gate the segment thread OUTSIDE the daemon lock (on_trial_committed is
  // an AutoML hook, not a daemon one) so preempt() provably lands while the
  // job is mid-segment.
  std::atomic<bool> reached{false};
  std::atomic<bool> release{false};
  AutoMLOptions options = resume_options(seed, iterations);
  options.on_trial_committed = [&](std::size_t iteration) {
    if (iteration == 1) {
      reached.store(true);
      while (!release.load()) std::this_thread::yield();
    }
  };
  JobOptions job_options;
  job_options.quantum_trials = 0;
  const std::uint64_t id =
      daemon.submit(data, options, job_options, stub_lineup());
  while (!reached.load()) std::this_thread::yield();

  EXPECT_TRUE(daemon.preempt(id));   // running -> signalled
  EXPECT_FALSE(daemon.preempt(99));  // unknown id
  release.store(true);
  daemon.wait(id);

  ASSERT_EQ(daemon.state(id), JobState::Finished);
  EXPECT_FALSE(daemon.preempt(id));  // terminal
  const JsonValue status = daemon.status(id);
  EXPECT_GE(status.at("preemptions").number, 1.0);

  AutoML reference;
  add_resume_lineup(reference);
  AutoMLOptions solo = resume_options(seed, iterations);
  reference.fit(*data, solo);
  expect_resumed_equals_reference(daemon.automl(id), reference,
                                  "explicitly preempted job");
}

TEST(SearchDaemon, HigherPriorityEvictsLowerPriority) {
  const std::size_t iterations = 8;
  SearchDaemon daemon({/*slots=*/1, /*trace_capacity=*/512});
  auto data_low = std::make_shared<const Dataset>(resume_tiny_binary(51));
  auto data_high = std::make_shared<const Dataset>(resume_tiny_binary(52));

  std::atomic<bool> reached{false};
  std::atomic<bool> release{false};
  AutoMLOptions low_options = resume_options(51, iterations);
  low_options.on_trial_committed = [&](std::size_t iteration) {
    if (iteration == 1) {
      reached.store(true);
      while (!release.load()) std::this_thread::yield();
    }
  };
  JobOptions low;
  low.priority = 0;
  low.quantum_trials = 0;  // would never yield voluntarily
  const std::uint64_t low_id =
      daemon.submit(data_low, low_options, low, stub_lineup());
  while (!reached.load()) std::this_thread::yield();

  // Submitted while the low-priority job holds the only slot: the scheduler
  // must evict it rather than wait for it.
  JobOptions high;
  high.priority = 5;
  const std::uint64_t high_id = daemon.submit(
      data_high, resume_options(52, iterations), high, stub_lineup());
  release.store(true);
  daemon.wait_all();

  ASSERT_EQ(daemon.state(low_id), JobState::Finished);
  ASSERT_EQ(daemon.state(high_id), JobState::Finished);
  EXPECT_GE(daemon.status(low_id).at("preemptions").number, 1.0);
  EXPECT_EQ(daemon.status(high_id).at("preemptions").number, 0.0);

  for (const auto& [id, seed] :
       {std::pair<std::uint64_t, std::uint64_t>{low_id, 51}, {high_id, 52}}) {
    const Dataset data = resume_tiny_binary(seed);
    AutoML reference;
    solo_run(reference, data, seed, iterations);
    expect_resumed_equals_reference(daemon.automl(id), reference,
                                    "priority job " + std::to_string(id));
  }
}

TEST(SearchDaemon, QuantumSharesOneSlotRoundRobin) {
  const std::size_t iterations = 8;
  SearchDaemon daemon({/*slots=*/1, /*trace_capacity=*/512});
  JobOptions job_options;
  job_options.quantum_trials = 2;
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seed : {61, 62}) {
    auto data = std::make_shared<const Dataset>(resume_tiny_binary(seed));
    ids.push_back(daemon.submit(data, resume_options(seed, iterations),
                                job_options, stub_lineup()));
  }
  daemon.wait_all();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(daemon.state(ids[i]), JobState::Finished);
    // 8 trials at a 2-trial quantum with a peer always waiting: each job
    // yielded the slot several times.
    EXPECT_GE(daemon.status(ids[i]).at("preemptions").number, 2.0);
    const std::uint64_t seed = i == 0 ? 61 : 62;
    const Dataset data = resume_tiny_binary(seed);
    AutoML reference;
    solo_run(reference, data, seed, iterations);
    expect_resumed_equals_reference(daemon.automl(ids[i]), reference,
                                    "round-robin job " + std::to_string(i));
  }
}

TEST(SearchDaemon, CancelWaitingAndRunningJobs) {
  SearchDaemon daemon({/*slots=*/1, /*trace_capacity=*/512});
  auto data = std::make_shared<const Dataset>(resume_tiny_binary(71));

  std::atomic<bool> reached{false};
  std::atomic<bool> release{false};
  AutoMLOptions gated = resume_options(71, 20);
  gated.on_trial_committed = [&](std::size_t iteration) {
    if (iteration == 1) {
      reached.store(true);
      while (!release.load()) std::this_thread::yield();
    }
  };
  const std::uint64_t running =
      daemon.submit(data, gated, JobOptions{}, stub_lineup());
  const std::uint64_t queued = daemon.submit(
      data, resume_options(72, 20), JobOptions{}, stub_lineup());
  while (!reached.load()) std::this_thread::yield();

  // Queued job dies immediately; running job at its next boundary.
  EXPECT_TRUE(daemon.cancel(queued));
  EXPECT_EQ(daemon.state(queued), JobState::Cancelled);
  EXPECT_TRUE(daemon.cancel(running));
  EXPECT_FALSE(daemon.cancel(queued));  // already terminal
  EXPECT_FALSE(daemon.cancel(99));      // unknown
  release.store(true);
  daemon.wait_all();

  ASSERT_EQ(daemon.state(running), JobState::Cancelled);
  // A cancelled search stopped at a boundary mid-way: some trials ran, no
  // result exists.
  const JsonValue status = daemon.status(running);
  EXPECT_EQ(status.at("reason").str, "cancelled");
  EXPECT_LT(status.at("trials").number, 20.0);
  EXPECT_THROW(daemon.result(running), InvalidArgument);
  EXPECT_THROW(daemon.state(99), InvalidArgument);
}

TEST(SearchDaemon, DeadlineCancelsRunningAndQueuedJobs) {
  SearchDaemon daemon({/*slots=*/1, /*trace_capacity=*/512});
  auto data = std::make_shared<const Dataset>(resume_tiny_binary(81));

  // The running job outlives its deadline mid-segment: the boundary after
  // the stalled commit sees >100ms elapsed against a 50ms deadline.
  AutoMLOptions stalled = resume_options(81, 20);
  stalled.on_trial_committed = [](std::size_t iteration) {
    if (iteration == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
    }
  };
  JobOptions mid_run;
  mid_run.deadline_seconds = 0.05;
  const std::uint64_t running =
      daemon.submit(data, stalled, mid_run, stub_lineup());
  // The queued job's deadline passes while it waits for the slot: it is
  // cancelled by the scheduler without ever running a trial.
  JobOptions tight;
  tight.deadline_seconds = 1e-9;
  const std::uint64_t queued = daemon.submit(
      data, resume_options(82, 20), tight, stub_lineup());
  daemon.wait_all();

  ASSERT_EQ(daemon.state(running), JobState::Cancelled);
  ASSERT_EQ(daemon.state(queued), JobState::Cancelled);
  EXPECT_EQ(daemon.status(running).at("reason").str, "deadline exceeded");
  EXPECT_EQ(daemon.status(queued).at("reason").str, "deadline exceeded");
  EXPECT_GE(daemon.status(running).at("trials").number, 1.0);
  EXPECT_EQ(daemon.status(queued).at("trials").number, 0.0);
}

TEST(SearchDaemon, ShutdownCancelsEverythingAndRejectsSubmit) {
  SearchDaemon daemon({/*slots=*/1, /*trace_capacity=*/512});
  auto data = std::make_shared<const Dataset>(resume_tiny_binary(91));
  // max_iterations 0 = unbounded: these searches only stop when cancelled.
  const std::uint64_t a =
      daemon.submit(data, resume_options(91, 0), JobOptions{}, stub_lineup());
  const std::uint64_t b =
      daemon.submit(data, resume_options(92, 0), JobOptions{}, stub_lineup());
  daemon.shutdown();
  EXPECT_EQ(daemon.state(a), JobState::Cancelled);
  EXPECT_EQ(daemon.state(b), JobState::Cancelled);
  EXPECT_THROW(daemon.submit(data, resume_options(93, 5), JobOptions{},
                             stub_lineup()),
               InvalidArgument);
  daemon.shutdown();  // idempotent
}

// --- SearchService: the wire protocol --------------------------------------

// A service whose submits run the deterministic stub searches.
SearchService::Customize stub_customize() {
  return [](AutoMLOptions& options, std::vector<LearnerPtr>& extra_learners) {
    AutoMLOptions wire = options;  // keep decoded wire fields
    options = resume_options(wire.seed, wire.max_iterations);
    options.time_budget_seconds = wire.time_budget_seconds;
    extra_learners = stub_lineup();
  };
}

JsonValue request_of(const std::string& text) { return parse_json(text); }

TEST(SearchService, SubmitWaitResultEventsRoundTrip) {
  SearchDaemon daemon({/*slots=*/2, /*trace_capacity=*/512});
  SearchService service(daemon);
  service.set_customize(stub_customize());

  JsonValue response = service.handle(request_of(
      R"({"op":"submit","synthetic":{"task":"binary","rows":100,"features":5,
          "seed":7},"budget_seconds":1000000,"max_iterations":6,
          "name":"wire-job","seed":7})"));
  ASSERT_TRUE(response.at("ok").boolean) << dump_json_compact(response);
  EXPECT_EQ(response.at("id").number, 1.0);

  response = service.handle(request_of(R"({"op":"wait","id":1})"));
  ASSERT_TRUE(response.at("ok").boolean);
  EXPECT_EQ(response.at("job").at("state").str, "finished");
  EXPECT_EQ(response.at("job").at("name").str, "wire-job");

  response = service.handle(request_of(R"({"op":"result","id":1})"));
  ASSERT_TRUE(response.at("ok").boolean);
  EXPECT_FALSE(response.at("result").at("best_learner").str.empty());
  EXPECT_EQ(response.at("result").at("n_trials").number, 6.0);

  // Stream the trace in two pages; together they cover every event.
  response = service.handle(request_of(R"({"op":"events","id":1,"since":0})"));
  ASSERT_TRUE(response.at("ok").boolean);
  const std::size_t total = response.at("events").array.size();
  ASSERT_GT(total, 2u);
  EXPECT_EQ(response.at("events").array.front().at("type").str, "run_started");
  EXPECT_EQ(response.at("events").array.front().at("seq").number, 0.0);
  const double next = response.at("next").number;
  response = service.handle(
      request_of(R"({"op":"events","id":1,"since":)" +
                 std::to_string(static_cast<std::size_t>(next) - 1) + "}"));
  ASSERT_TRUE(response.at("ok").boolean);
  ASSERT_EQ(response.at("events").array.size(), 1u);
  EXPECT_EQ(response.at("events").array.front().at("type").str, "run_summary");
}

TEST(SearchService, ListPingCancelAndShutdown) {
  SearchDaemon daemon({/*slots=*/2, /*trace_capacity=*/512});
  SearchService service(daemon);
  service.set_customize(stub_customize());

  JsonValue response = service.handle(request_of(R"({"op":"ping"})"));
  ASSERT_TRUE(response.at("ok").boolean);
  EXPECT_EQ(response.at("slots").number, 2.0);

  service.handle(request_of(
      R"({"op":"submit","synthetic":{"rows":100,"features":5,"seed":3},
          "budget_seconds":1000000,"max_iterations":4,"seed":3})"));
  service.handle(request_of(
      R"({"op":"submit","synthetic":{"rows":100,"features":5,"seed":3},
          "budget_seconds":1000000,"max_iterations":4,"seed":4})"));
  response = service.handle(request_of(R"({"op":"cancel","id":2})"));
  ASSERT_TRUE(response.at("ok").boolean);

  response = service.handle(request_of(R"({"op":"wait_all"})"));
  ASSERT_TRUE(response.at("ok").boolean);
  ASSERT_EQ(response.at("jobs").array.size(), 2u);

  EXPECT_FALSE(service.shutdown_requested());
  response = service.handle(request_of(R"({"op":"shutdown"})"));
  ASSERT_TRUE(response.at("ok").boolean);
  EXPECT_TRUE(service.shutdown_requested());
  // Submitting into a shut-down daemon is an error response, not a throw.
  response = service.handle(request_of(
      R"({"op":"submit","synthetic":{"rows":100},"max_iterations":2})"));
  EXPECT_FALSE(response.at("ok").boolean);
}

TEST(SearchService, ErrorResponsesNeverThrowOrKillTheStream) {
  SearchDaemon daemon({/*slots=*/1, /*trace_capacity=*/512});
  SearchService service(daemon);

  const char* bad_requests[] = {
      R"({"op":"frobnicate"})",               // unknown op
      R"({"op":"status","id":7})",            // unknown job
      R"({"op":"status"})",                   // missing id
      R"({"op":"submit"})",                   // no dataset
      R"({"op":"submit","csv":"/nonexistent.csv"})",  // unreadable file
      R"({"op":"submit","synthetic":{"task":"sudoku"}})",  // bad task
      R"([1,2,3])",                           // not an object
      R"({})",                                // no op
  };
  for (const char* text : bad_requests) {
    const JsonValue response = service.handle(request_of(text));
    ASSERT_TRUE(response.is_object()) << text;
    EXPECT_FALSE(response.at("ok").boolean) << text;
    EXPECT_FALSE(response.at("error").str.empty()) << text;
  }
  // Malformed JSON is caught at the line layer.
  const std::string response = service.handle_line("{nope");
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(response.find("bad request JSON"), std::string::npos);
}

TEST(SearchService, ServeStreamSpeaksOneLinePerRequest) {
  SearchDaemon daemon({/*slots=*/1, /*trace_capacity=*/512});
  SearchService service(daemon);
  service.set_customize(stub_customize());
  std::istringstream in(
      "{\"op\":\"ping\"}\n"
      "\n"  // blank lines are ignored
      "{\"op\":\"submit\",\"synthetic\":{\"rows\":100,\"features\":5,"
      "\"seed\":5},\"budget_seconds\":1000000,\"max_iterations\":3}\n"
      "{\"op\":\"wait\",\"id\":1}\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"ping\"}\n");  // after shutdown: never read
  std::ostringstream out;
  service.serve_stream(in, out);
  std::vector<std::string> lines;
  std::istringstream parse(out.str());
  for (std::string line; std::getline(parse, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"pong\":true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\":1"), std::string::npos);
  EXPECT_NE(lines[2].find("\"state\":\"finished\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"bye\":true"), std::string::npos);
  EXPECT_TRUE(service.shutdown_requested());
}

// --- strict wire integers (regression: silent truncation) ------------------

TEST(SearchService, RejectsFractionalAndOversizedIntegerFields) {
  SearchDaemon daemon({/*slots=*/1, /*trace_capacity=*/512});
  SearchService service(daemon);
  service.set_customize(stub_customize());

  // Before the strict decoders, "seed":1.5 silently became seed=1 and the
  // job ran with options the client never asked for.
  const char* bad_requests[] = {
      R"({"op":"submit","synthetic":{"rows":100},"seed":1.5})",
      R"({"op":"submit","synthetic":{"rows":100},"max_iterations":-3})",
      R"({"op":"submit","synthetic":{"rows":100.5}})",
      R"({"op":"submit","synthetic":{"rows":100},"quantum_trials":2.25})",
      R"({"op":"submit","synthetic":{"rows":100},"seed":1e300})",
      R"({"op":"status","id":1.5})",
      R"({"op":"cancel","id":0})",
      R"({"op":"wait","id":-1})",
      R"({"op":"events","id":1,"since":0.5})",
  };
  for (const char* text : bad_requests) {
    const JsonValue response = service.handle(request_of(text));
    EXPECT_FALSE(response.at("ok").boolean) << text;
    EXPECT_FALSE(response.at("error").str.empty()) << text;
  }
  // Nothing was submitted by any of the rejects.
  EXPECT_EQ(service.handle(request_of(R"({"op":"list"})")).at("jobs").array.size(),
            0u);
  // An exact integral double is fine (JSON has no integer type).
  const JsonValue response = service.handle(request_of(
      R"({"op":"submit","synthetic":{"rows":100,"features":5,"seed":3},
          "budget_seconds":1000000,"max_iterations":2,"seed":2.0})"));
  EXPECT_TRUE(response.at("ok").boolean) << dump_json_compact(response);
  service.handle(request_of(R"({"op":"wait_all"})"));
}

// --- dataset cache (regression: stale entries, unbounded growth) -----------

std::string write_csv(const std::string& path, double y0) {
  std::ofstream out(path);
  out << "a,b,y\n";
  for (int i = 0; i < 40; ++i) {
    out << i << "," << (i % 7) << "," << (y0 + i) << "\n";
  }
  return path;
}

TEST(DatasetCache, RewrittenFileIsReparsedNotServedStale) {
  const std::string path = ::testing::TempDir() + "cache_rewrite.csv";
  server::DatasetCache cache;

  write_csv(path, 0.0);
  auto first = cache.load_csv(path, Task::Regression, "y");
  EXPECT_DOUBLE_EQ(first->label(0), 0.0);
  // Unchanged file: the SAME immutable dataset is shared, not reparsed.
  EXPECT_EQ(cache.load_csv(path, Task::Regression, "y").get(), first.get());
  EXPECT_EQ(cache.size(), 1u);

  // Rewrite between two submits — the old cache served the first parse
  // forever; now the content fingerprint forces a reparse.
  write_csv(path, 100.0);
  auto second = cache.load_csv(path, Task::Regression, "y");
  EXPECT_NE(second.get(), first.get());
  EXPECT_DOUBLE_EQ(second->label(0), 100.0);
  EXPECT_EQ(cache.size(), 1u);  // replaced in place, not duplicated

  // The first dataset is still alive for the job that holds it.
  EXPECT_DOUBLE_EQ(first->label(0), 0.0);
}

TEST(DatasetCache, EvictsLeastRecentlyUsedAtCapacity) {
  server::DatasetCache cache(/*max_entries=*/2);
  SyntheticSpec spec;
  spec.n_rows = 30;
  spec.n_features = 3;
  auto first = cache.load_synthetic(spec);
  spec.seed = 2;
  cache.load_synthetic(spec);
  EXPECT_EQ(cache.size(), 2u);

  spec.seed = 1;  // touch the first entry -> seed 2 becomes LRU
  EXPECT_EQ(cache.load_synthetic(spec).get(), first.get());

  spec.seed = 3;  // evicts seed 2
  cache.load_synthetic(spec);
  EXPECT_EQ(cache.size(), 2u);
  spec.seed = 1;  // still cached
  EXPECT_EQ(cache.load_synthetic(spec).get(), first.get());
}

TEST(SearchService, SubmitPicksUpARewrittenCsv) {
  const std::string path = ::testing::TempDir() + "service_rewrite.csv";
  SearchDaemon daemon({/*slots=*/1, /*trace_capacity=*/512});
  SearchService service(daemon);
  service.set_customize(stub_customize());

  write_csv(path, 0.0);
  const std::string submit = R"({"op":"submit","csv":")" + path +
                             R"(","task":"regression","label":"y",
      "budget_seconds":1000000,"max_iterations":2,"seed":1})";
  ASSERT_TRUE(service.handle(request_of(submit)).at("ok").boolean);
  write_csv(path, 100.0);
  ASSERT_TRUE(service.handle(request_of(submit)).at("ok").boolean);
  service.handle(request_of(R"({"op":"wait_all"})"));

  // Both submits parsed their own snapshot of the file.
  EXPECT_EQ(service.dataset_cache().size(), 1u);
  auto current = service.dataset_cache().load_csv(path, Task::Regression, "y");
  EXPECT_DOUBLE_EQ(current->label(0), 100.0);
}

}  // namespace
}  // namespace flaml::testing
