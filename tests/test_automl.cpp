#include "automl/automl.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "data/generators.h"
#include "data/split.h"
#include "metrics/metrics.h"
#include "support/resume_test_util.h"

namespace flaml {
namespace {

Dataset binary_data(std::size_t n = 800, std::uint64_t seed = 21) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = n;
  spec.n_features = 8;
  spec.class_sep = 1.2;
  spec.nonlinearity = 0.5;
  spec.seed = seed;
  return make_classification(spec);
}

AutoMLOptions quick_options(double budget = 1.0) {
  AutoMLOptions options;
  options.time_budget_seconds = budget;
  options.initial_sample_size = 100;
  options.seed = 5;
  return options;
}

TEST(AutoML, FitFindsUsefulModel) {
  Dataset data = binary_data();
  Rng rng(1);
  auto split = holdout_split(DataView(data), 0.3, rng);
  // Re-wrap the training rows as a standalone dataset view for fit().
  AutoML automl;
  automl.fit(data, quick_options(1.0));
  ASSERT_TRUE(automl.fitted());
  Predictions pred = automl.predict(split.test);
  EXPECT_GT(roc_auc(pred.prob1(), split.test.labels()), 0.75);
  EXPECT_FALSE(automl.best_learner().empty());
  EXPECT_FALSE(automl.history().empty());
}

TEST(AutoML, HistoryIsBudgetBounded) {
  Dataset data = binary_data(600);
  AutoML automl;
  AutoMLOptions options = quick_options(0.5);
  automl.fit(data, options);
  const TrialHistory& history = automl.history();
  ASSERT_FALSE(history.empty());
  for (const auto& r : history) {
    EXPECT_GT(r.cost, 0.0);
    EXPECT_GT(r.finished_at, 0.0);
  }
  // Total elapsed should not wildly exceed the budget (allow overrun of the
  // final trial).
  EXPECT_LT(history.back().finished_at, 0.5 * 4 + 1.0);
}

TEST(AutoML, BestErrorMatchesHistoryMinimum) {
  Dataset data = binary_data(600);
  AutoML automl;
  automl.fit(data, quick_options(0.6));
  double min_error = std::numeric_limits<double>::infinity();
  for (const auto& r : automl.history()) min_error = std::min(min_error, r.error);
  EXPECT_DOUBLE_EQ(automl.best_error(), min_error);
}

TEST(AutoML, FirstTrialIsFastestLearnerCheapConfig) {
  Dataset data = binary_data(600);
  AutoML automl;
  automl.fit(data, quick_options(0.4));
  const TrialHistory& history = automl.history();
  ASSERT_FALSE(history.empty());
  EXPECT_EQ(history.front().learner, "lgbm");
  EXPECT_DOUBLE_EQ(history.front().config.at("tree_num"), 4.0);
  EXPECT_DOUBLE_EQ(history.front().config.at("leaf_num"), 4.0);
}

TEST(AutoML, EstimatorListRestrictsLearners) {
  Dataset data = binary_data(500);
  AutoML automl;
  AutoMLOptions options = quick_options(0.5);
  options.estimator_list = {"rf", "extra_tree"};
  automl.fit(data, options);
  for (const auto& r : automl.history()) {
    EXPECT_TRUE(r.learner == "rf" || r.learner == "extra_tree") << r.learner;
  }
}

TEST(AutoML, UnknownEstimatorRejected) {
  Dataset data = binary_data(300);
  AutoML automl;
  AutoMLOptions options = quick_options(0.2);
  options.estimator_list = {"nope"};
  EXPECT_THROW(automl.fit(data, options), InvalidArgument);
}

TEST(AutoML, CustomMetricIsOptimized) {
  Dataset data = binary_data(500);
  AutoML automl;
  AutoMLOptions options = quick_options(0.4);
  // Offset makes the custom metric's value range recognizable.
  options.custom_metric = ErrorMetric(
      "my_logloss", [](const Predictions& p, const std::vector<double>& y) {
        return 0.125 + log_loss_multi(p.values, p.n_classes, y);
      });
  automl.fit(data, options);
  EXPECT_TRUE(automl.fitted());
  EXPECT_GE(automl.best_error(), 0.125);  // the custom metric was used
}

TEST(AutoML, CustomLearnerParticipates) {
  // Paper §3 API: add_learner with a custom estimator.
  class ConstantLearner final : public Learner {
   public:
    const std::string& name() const override {
      static const std::string n = "constant";
      return n;
    }
    bool supports(Task task) const override {
      return task == Task::BinaryClassification;
    }
    ConfigSpace space(Task, std::size_t) const override {
      ConfigSpace s;
      s.add_float("p", 0.01, 0.99, 0.5);
      return s;
    }
    std::unique_ptr<Model> train(const TrainContext&, const Config& config) const override {
      class ConstantModel final : public Model {
       public:
        explicit ConstantModel(double p) : p_(p) {}
        Predictions predict(const DataView& view) const override {
          Predictions pred;
          pred.task = Task::BinaryClassification;
          pred.n_classes = 2;
          pred.values.resize(view.n_rows() * 2);
          for (std::size_t i = 0; i < view.n_rows(); ++i) {
            pred.values[i * 2] = 1.0 - p_;
            pred.values[i * 2 + 1] = p_;
          }
          return pred;
        }

       private:
        double p_;
      };
      return std::make_unique<ConstantModel>(config.at("p"));
    }
    double initial_cost_multiplier() const override { return 1.0; }
  };

  Dataset data = binary_data(400);
  AutoML automl;
  automl.add_learner(std::make_shared<ConstantLearner>());
  AutoMLOptions options = quick_options(0.5);
  options.estimator_list = {"constant", "lgbm"};
  automl.fit(data, options);
  bool constant_tried = false;
  for (const auto& r : automl.history()) {
    if (r.learner == "constant") constant_tried = true;
  }
  EXPECT_TRUE(constant_tried);
}

TEST(AutoML, SampleSizeGrowsOverTime) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 4000;
  spec.n_features = 10;
  spec.seed = 31;
  Dataset data = make_classification(spec);
  AutoML automl;
  AutoMLOptions options = quick_options(2.0);
  options.initial_sample_size = 200;
  automl.fit(data, options);
  std::size_t min_s = data.n_rows(), max_s = 0;
  for (const auto& r : automl.history()) {
    min_s = std::min(min_s, r.sample_size);
    max_s = std::max(max_s, r.sample_size);
  }
  EXPECT_EQ(min_s, 200u);
  EXPECT_GT(max_s, 200u);  // sample size was doubled at least once
}

TEST(AutoML, FullDataAblationNeverSamples) {
  Dataset data = binary_data(1500);
  AutoML automl;
  AutoMLOptions options = quick_options(0.5);
  options.sample_policy = SamplePolicy::FullData;
  automl.fit(data, options);
  for (const auto& r : automl.history()) {
    EXPECT_GE(r.sample_size, 1200u);  // full size (minus holdout if any)
  }
}

TEST(AutoML, RoundRobinAblationCyclesLearners) {
  Dataset data = binary_data(600);
  AutoML automl;
  AutoMLOptions options = quick_options(1.0);
  options.learner_choice = LearnerChoice::RoundRobin;
  options.estimator_list = {"lgbm", "rf"};
  automl.fit(data, options);
  const TrialHistory& history = automl.history();
  ASSERT_GE(history.size(), 4u);
  // After the calibration trial, learners alternate.
  for (std::size_t i = 2; i + 1 < std::min<std::size_t>(history.size(), 8); i += 2) {
    EXPECT_NE(history[i].learner, history[i + 1].learner);
  }
}

TEST(AutoML, StartingPointsSeedTheWalk) {
  Dataset data = binary_data(400);
  AutoML automl;
  AutoMLOptions options = quick_options(0.3);
  options.estimator_list = {"lgbm"};
  Config warm;
  warm["tree_num"] = 64;
  warm["leaf_num"] = 32;
  warm["min_child_weight"] = 1.0;
  warm["learning_rate"] = 0.2;
  warm["subsample"] = 0.9;
  warm["reg_alpha"] = 1e-8;
  warm["reg_lambda"] = 0.5;
  warm["max_bin"] = 127;
  warm["colsample_bytree"] = 0.9;
  options.starting_points["lgbm"] = warm;
  automl.fit(data, options);
  ASSERT_FALSE(automl.history().empty());
  // The very first lgbm trial must be the warm-start config, not tree_num=4.
  EXPECT_DOUBLE_EQ(automl.history().front().config.at("tree_num"), 64.0);
  EXPECT_DOUBLE_EQ(automl.history().front().config.at("max_bin"), 127.0);
}

TEST(AutoML, TargetErrorStopsSearchEarly) {
  Dataset data = binary_data(600);
  AutoML automl;
  AutoMLOptions options = quick_options(5.0);  // generous budget
  options.target_error = 0.5;                  // trivially reachable (1 - auc)
  WallClock clock;
  automl.fit(data, options);
  // Must stop long before the 5s budget once the target is met.
  EXPECT_LT(clock.now(), 2.5);
  EXPECT_LE(automl.best_error(), 0.5);
}

TEST(AutoML, EciGreedyChoiceRuns) {
  Dataset data = binary_data(500);
  AutoML automl;
  AutoMLOptions options = quick_options(0.5);
  options.learner_choice = LearnerChoice::EciGreedy;
  automl.fit(data, options);
  EXPECT_TRUE(automl.fitted());
  EXPECT_GE(automl.history().size(), 2u);
}

TEST(AutoML, ParallelSearchProducesValidHistory) {
  Dataset data = binary_data(800);
  AutoML automl;
  AutoMLOptions options = quick_options(0.8);
  options.n_parallel = 3;
  automl.fit(data, options);
  EXPECT_TRUE(automl.fitted());
  const TrialHistory& history = automl.history();
  ASSERT_GE(history.size(), 3u);
  // Iterations are sequential, best errors non-increasing.
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(history[i].iteration, static_cast<int>(i + 1));
    EXPECT_LE(history[i].best_error_so_far, best + 1e-12);
    best = history[i].best_error_so_far;
  }
  Predictions pred = automl.predict(DataView(data));
  EXPECT_EQ(pred.n_rows(), data.n_rows());
}

TEST(AutoML, ParallelSearchFindsComparableModel) {
  Dataset data = binary_data(800, 77);
  AutoML seq, par;
  AutoMLOptions options = quick_options(0.8);
  seq.fit(data, options);
  options.n_parallel = 2;
  par.fit(data, options);
  // Both must clearly beat chance; exact equality isn't expected.
  EXPECT_LT(seq.best_error(), 0.4);
  EXPECT_LT(par.best_error(), 0.4);
}

TEST(AutoML, InvalidParallelRejected) {
  Dataset data = binary_data(100);
  AutoML automl;
  AutoMLOptions options = quick_options(0.1);
  options.n_parallel = 0;
  EXPECT_THROW(automl.fit(data, options), InvalidArgument);
}

TEST(AutoML, ForcedResamplingHonored) {
  Dataset data = binary_data(400);
  AutoML automl;
  AutoMLOptions options = quick_options(0.4);
  options.resampling = ResamplingPolicy::ForceCV;
  automl.fit(data, options);
  EXPECT_EQ(automl.resampling_used(), Resampling::CV);

  AutoML automl2;
  options.resampling = ResamplingPolicy::ForceHoldout;
  automl2.fit(data, options);
  EXPECT_EQ(automl2.resampling_used(), Resampling::Holdout);
}

TEST(AutoML, AutoResamplingUsesPaperRule) {
  Dataset data = binary_data(400);
  AutoML automl;
  AutoMLOptions options = quick_options(0.3);
  // Paper-equivalent budget = 0.3 / 0.0001 = 3000s -> CV for this size.
  options.budget_scale = 0.0001;
  automl.fit(data, options);
  EXPECT_EQ(automl.resampling_used(), Resampling::CV);
}

TEST(AutoML, RegressionTask) {
  Dataset data = make_friedman1(900, 8, 0.5, 41);
  AutoML automl;
  AutoMLOptions options = quick_options(1.0);
  automl.fit(data, options);
  Predictions pred = automl.predict(DataView(data));
  EXPECT_GT(r2(pred.values, data.labels()), 0.5);
}

TEST(AutoML, MulticlassTask) {
  SyntheticSpec spec;
  spec.task = Task::MultiClassification;
  spec.n_classes = 4;
  spec.n_rows = 600;
  spec.n_features = 8;
  spec.class_sep = 1.5;
  spec.seed = 43;
  Dataset data = make_classification(spec);
  AutoML automl;
  automl.fit(data, quick_options(1.0));
  Predictions pred = automl.predict(DataView(data));
  EXPECT_GT(accuracy_multi(pred.values, 4, data.labels()), 0.6);
}

TEST(AutoML, EnsembleOptionBlendsModels) {
  Dataset data = binary_data(500);
  AutoML automl;
  AutoMLOptions options = quick_options(1.0);
  options.enable_ensemble = true;
  automl.fit(data, options);
  Predictions pred = automl.predict(DataView(data));
  for (std::size_t i = 0; i < pred.n_rows(); ++i) {
    EXPECT_NEAR(pred.prob(i, 0) + pred.prob(i, 1), 1.0, 1e-6);
  }
  EXPECT_GT(roc_auc(pred.prob1(), data.labels()), 0.7);
}

// A learner whose validation error never depends on the config: FLOW²
// improves exactly once per walk and then stalls, so the tuner converges
// and restarts on a short, deterministic schedule.
class FlatLearner final : public Learner {
 public:
  const std::string& name() const override {
    static const std::string n = "flat";
    return n;
  }
  bool supports(Task task) const override {
    return task == Task::BinaryClassification;
  }
  ConfigSpace space(Task, std::size_t) const override {
    ConfigSpace s;
    s.add_float("x", 0.01, 0.99, 0.5);
    return s;
  }
  std::unique_ptr<Model> train(const TrainContext&, const Config&) const override {
    class FlatModel final : public Model {
     public:
      Predictions predict(const DataView& view) const override {
        Predictions pred;
        pred.task = Task::BinaryClassification;
        pred.n_classes = 2;
        pred.values.resize(view.n_rows() * 2);
        for (std::size_t i = 0; i < view.n_rows(); ++i) {
          pred.values[i * 2] = 0.45;
          pred.values[i * 2 + 1] = 0.55;
        }
        return pred;
      }
    };
    return std::make_unique<FlatModel>();
  }
  double initial_cost_multiplier() const override { return 1.0; }
};

TEST(AutoML, MaxIterationsBoundsSearchExactly) {
  Dataset data = binary_data(200, 41);
  for (int n_parallel : {1, 3}) {
    AutoML automl;
    automl.add_learner(std::make_shared<FlatLearner>());
    AutoMLOptions options;
    options.time_budget_seconds = 1e6;  // the iteration cap terminates
    options.max_iterations = 9;
    options.initial_sample_size = 50;
    options.estimator_list = {"flat"};
    options.n_parallel = n_parallel;
    options.seed = 11;
    automl.fit(data, options);
    EXPECT_EQ(automl.history().size(), 9u) << "n_parallel=" << n_parallel;
    EXPECT_TRUE(automl.fitted());
  }
}

TEST(AutoML, SampleSizeResetsToInitialOnTunerRestart) {
  Dataset data = binary_data(100, 43);
  AutoML automl;
  automl.add_learner(std::make_shared<FlatLearner>());
  AutoMLOptions options;
  options.time_budget_seconds = 1e6;
  options.max_iterations = 60;
  options.initial_sample_size = 16;
  options.resampling = ResamplingPolicy::ForceHoldout;
  options.estimator_list = {"flat"};
  // Deterministic unit cost keeps the grow/converge/restart schedule fixed.
  options.trial_cost_model = [](const Learner&, const Config&, std::size_t) {
    return 1.0;
  };
  options.seed = 13;
  automl.fit(data, options);

  const TrialHistory& history = automl.history();
  ASSERT_EQ(history.size(), 60u);
  // The sample size must have grown to the full training size, converged
  // there, and been reset by at least one restart — every reset landing
  // exactly on the initial sample size.
  std::size_t max_seen = 0;
  int n_resets = 0;
  for (std::size_t i = 1; i < history.size(); ++i) {
    max_seen = std::max(max_seen, history[i - 1].sample_size);
    if (history[i].sample_size < history[i - 1].sample_size) {
      ++n_resets;
      EXPECT_EQ(history[i].sample_size, 16u) << "reset at record " << i;
      EXPECT_GT(history[i - 1].sample_size, 16u);
    }
  }
  EXPECT_GE(n_resets, 1) << "the walk never restarted";
  EXPECT_GT(max_seen, 16u) << "the sample size never grew";
}

TEST(AutoML, PredictBeforeFitRejected) {
  AutoML automl;
  Dataset data = binary_data(100);
  EXPECT_THROW(automl.predict(DataView(data)), InvalidArgument);
}

TEST(AutoML, PerLearnerBestPopulated) {
  Dataset data = binary_data(500);
  AutoML automl;
  automl.fit(data, quick_options(0.8));
  auto per_learner = automl.per_learner_best();
  EXPECT_GE(per_learner.size(), 5u);
  bool some_finite = false;
  for (const auto& [name, error] : per_learner) {
    if (std::isfinite(error)) some_finite = true;
  }
  EXPECT_TRUE(some_finite);
}

TEST(AutoML, TinyBudgetStillProducesModel) {
  Dataset data = binary_data(300);
  AutoML automl;
  AutoMLOptions options = quick_options(0.02);
  automl.fit(data, options);
  EXPECT_TRUE(automl.fitted());
  Predictions pred = automl.predict(DataView(data));
  EXPECT_EQ(pred.n_rows(), 300u);
}

TEST(AutoML, DuplicateCustomLearnerRejected) {
  AutoML automl;
  automl.add_learner(builtin_learner("lgbm"));
  EXPECT_THROW(automl.add_learner(builtin_learner("lgbm")), InvalidArgument);
}

TEST(AutoML, InvalidOptionsRejected) {
  Dataset data = binary_data(100);
  AutoML automl;
  AutoMLOptions options;
  options.time_budget_seconds = 0.0;
  EXPECT_THROW(automl.fit(data, options), InvalidArgument);
}

// A time source the test steps from on_trial_committed, including
// backwards — modeling an NTP step or a paused VM hitting a search that
// (wrongly) measured its budget off a non-steady clock.
class SteppingClock final : public Clock {
 public:
  double now() const override { return t; }
  double t = 0.0;
};

TEST(AutoML, BackwardClockJumpCannotImmortalizeTheBudget) {
  const Dataset data = testing::resume_tiny_binary(7);
  AutoML automl;
  testing::add_resume_lineup(automl);
  // No iteration cap: only the 5-second budget can stop this search. The
  // clock advances 1s per committed trial, and jumps back 100s after the
  // third commit. Origin-subtraction accounting would go ~100 trials over;
  // clamp-to-max accounting would stall the budget for ~100 trials; the
  // BudgetMeter charges forward motion only, so the search ends after ~5
  // trial-seconds of observed progress either side of the jump.
  AutoMLOptions options = testing::resume_options(7, 0);
  options.time_budget_seconds = 5.0;
  SteppingClock clock;
  options.clock = &clock;
  options.on_trial_committed = [&](std::size_t iteration) {
    clock.t += 1.0;
    if (iteration == 3) clock.t -= 100.0;
  };
  automl.fit(data, options);
  EXPECT_GE(automl.history().size(), 4u);
  EXPECT_LE(automl.history().size(), 6u);
  EXPECT_TRUE(automl.fitted());
}

TEST(AutoML, ForwardClockJumpEndsTheSearchPromptly) {
  const Dataset data = testing::resume_tiny_binary(8);
  AutoML automl;
  testing::add_resume_lineup(automl);
  AutoMLOptions options = testing::resume_options(8, 0);
  options.time_budget_seconds = 50.0;
  SteppingClock clock;
  options.clock = &clock;
  // 0.5s per trial, then a suspend/resume-style leap far past the budget:
  // the very next boundary must stop the search.
  options.on_trial_committed = [&](std::size_t iteration) {
    clock.t += 0.5;
    if (iteration == 3) clock.t += 1000.0;
  };
  automl.fit(data, options);
  EXPECT_GE(automl.history().size(), 3u);
  EXPECT_LE(automl.history().size(), 4u);
  EXPECT_TRUE(automl.fitted());
}

}  // namespace
}  // namespace flaml
