#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.h"
#include "tuners/evolution.h"
#include "tuners/grid_search.h"
#include "tuners/random_search.h"

namespace flaml {
namespace {

ConfigSpace demo_space() {
  ConfigSpace space;
  space.add_float("x", 0.0, 1.0, 0.2);
  space.add_int("n", 1, 100, 1, /*log=*/false);
  space.add_categorical("c", {"a", "b"}, 0);
  return space;
}

TEST(RandomSearch, FirstProposalIsInitialConfig) {
  ConfigSpace space = demo_space();
  RandomSearch tuner(space, 1);
  Config first = tuner.ask();
  EXPECT_DOUBLE_EQ(first.at("x"), 0.2);
  EXPECT_DOUBLE_EQ(first.at("n"), 1.0);
}

TEST(RandomSearch, TracksBest) {
  ConfigSpace space = demo_space();
  RandomSearch tuner(space, 2);
  for (int i = 0; i < 20; ++i) {
    Config c = tuner.ask();
    tuner.tell(c, std::fabs(c.at("x") - 0.5));
  }
  EXPECT_TRUE(tuner.has_best());
  EXPECT_LT(tuner.best_error(), 0.3);
  EXPECT_NEAR(tuner.best_config().at("x"), 0.5, 0.3);
}

TEST(RandomSearch, ProposalsVary) {
  ConfigSpace space = demo_space();
  RandomSearch tuner(space, 3);
  tuner.ask();
  std::set<double> xs;
  for (int i = 0; i < 30; ++i) xs.insert(tuner.ask().at("x"));
  EXPECT_GT(xs.size(), 25u);
}

TEST(GridSearch, FirstProposalIsInitialConfig) {
  ConfigSpace space = demo_space();
  RandomizedGridSearch tuner(space, 1);
  EXPECT_DOUBLE_EQ(tuner.ask().at("x"), 0.2);
}

TEST(GridSearch, VisitsDistinctCells) {
  ConfigSpace space;
  space.add_float("x", 0.0, 1.0, 0.5);
  space.add_categorical("c", {"a", "b"}, 0);
  RandomizedGridSearch tuner(space, 2, /*points_per_dim=*/3);
  tuner.ask();  // initial
  std::set<std::pair<double, double>> seen;
  // Grid size = 3 * 2 = 6 cells.
  for (int i = 0; i < 6; ++i) {
    Config c = tuner.ask();
    seen.insert({c.at("x"), c.at("c")});
  }
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_TRUE(tuner.exhausted());
}

TEST(GridSearch, FallsBackToRandomWhenExhausted) {
  ConfigSpace space;
  space.add_categorical("c", {"a", "b"}, 0);
  space.add_categorical("d", {"u", "v"}, 0);
  RandomizedGridSearch tuner(space, 3, 2);
  for (int i = 0; i < 10; ++i) tuner.ask();  // more than 4 cells
  SUCCEED();
}

TEST(GridSearch, GridValuesAreCellMidpoints) {
  ConfigSpace space;
  space.add_float("x", 0.0, 1.0, 0.5);
  RandomizedGridSearch tuner(space, 4, 5);
  tuner.ask();
  std::set<double> values;
  for (int i = 0; i < 5; ++i) values.insert(tuner.ask().at("x"));
  for (double v : values) {
    bool is_mid = false;
    for (int cell = 0; cell < 5; ++cell) {
      if (std::fabs(v - (cell + 0.5) / 5.0) < 1e-9) is_mid = true;
    }
    EXPECT_TRUE(is_mid) << v;
  }
}

TEST(Evolution, FirstProposalIsInitialConfig) {
  ConfigSpace space = demo_space();
  EvolutionSearch tuner(space, 1);
  EXPECT_DOUBLE_EQ(tuner.ask().at("x"), 0.2);
}

TEST(Evolution, ImprovesOnSimpleObjective) {
  ConfigSpace space;
  space.add_float("x", 0.0, 1.0, 0.0);
  space.add_float("y", 0.0, 1.0, 0.0);
  EvolutionSearch tuner(space, 5);
  double best = 1e9;
  for (int i = 0; i < 300; ++i) {
    Config c = tuner.ask();
    double err = std::fabs(c.at("x") - 0.8) + std::fabs(c.at("y") - 0.2);
    best = std::min(best, err);
    tuner.tell(c, err);
  }
  EXPECT_LT(best, 0.1);
  EXPECT_LT(tuner.best_error(), 0.1);
}

TEST(Evolution, PopulationCullingKeepsBest) {
  ConfigSpace space;
  space.add_float("x", 0.0, 1.0, 0.0);
  EvolutionOptions options;
  options.population_size = 6;
  EvolutionSearch tuner(space, 7, options);
  for (int i = 0; i < 100; ++i) {
    Config c = tuner.ask();
    tuner.tell(c, std::fabs(c.at("x") - 0.5));
  }
  EXPECT_LT(tuner.best_error(), 0.2);
}

TEST(Evolution, RejectsTinyPopulation) {
  ConfigSpace space = demo_space();
  EvolutionOptions options;
  options.population_size = 2;
  EXPECT_THROW(EvolutionSearch(space, 1, options), InvalidArgument);
}

}  // namespace
}  // namespace flaml
