#include "data/generators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace flaml {
namespace {

TEST(MakeClassification, ShapeMatchesSpec) {
  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = 500;
  spec.n_features = 12;
  Dataset data = make_classification(spec);
  EXPECT_EQ(data.n_rows(), 500u);
  EXPECT_EQ(data.n_cols(), 12u);
  EXPECT_EQ(data.n_classes(), 2);
  EXPECT_NO_THROW(data.validate());
}

TEST(MakeClassification, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.n_rows = 100;
  spec.n_features = 5;
  spec.seed = 77;
  Dataset a = make_classification(spec);
  Dataset b = make_classification(spec);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(a.value(i, 0), b.value(i, 0));
    EXPECT_DOUBLE_EQ(a.label(i), b.label(i));
  }
}

TEST(MakeClassification, SeedChangesData) {
  SyntheticSpec spec;
  spec.n_rows = 100;
  spec.n_features = 5;
  spec.seed = 1;
  Dataset a = make_classification(spec);
  spec.seed = 2;
  Dataset b = make_classification(spec);
  int diff = 0;
  for (std::size_t i = 0; i < 100; ++i) diff += a.value(i, 0) != b.value(i, 0);
  EXPECT_GT(diff, 90);
}

class MultiClassGenTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiClassGenTest, AllClassesPresent) {
  SyntheticSpec spec;
  spec.task = Task::MultiClassification;
  spec.n_classes = GetParam();
  spec.n_rows = 400;
  spec.n_features = 8;
  Dataset data = make_classification(spec);
  EXPECT_EQ(data.n_classes(), GetParam());
  std::set<int> classes;
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    classes.insert(static_cast<int>(data.label(i)));
  }
  EXPECT_EQ(classes.size(), static_cast<std::size_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Classes, MultiClassGenTest, ::testing::Values(2, 3, 5, 10));

TEST(MakeClassification, ImbalanceSkewsPriors) {
  SyntheticSpec spec;
  spec.n_rows = 2000;
  spec.n_features = 5;
  spec.imbalance = 0.8;
  Dataset data = make_classification(spec);
  auto priors = data.class_priors();
  EXPECT_GT(priors[0], 0.7);
}

TEST(MakeClassification, EveryClassHasAtLeastTwoRows) {
  SyntheticSpec spec;
  spec.task = Task::MultiClassification;
  spec.n_classes = 8;
  spec.n_rows = 60;
  spec.n_features = 4;
  spec.imbalance = 0.9;
  Dataset data = make_classification(spec);
  std::vector<int> counts(8, 0);
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    counts[static_cast<std::size_t>(data.label(i))] += 1;
  }
  for (int c : counts) EXPECT_GE(c, 2);
}

TEST(MakeRegression, ShapeAndFiniteLabels) {
  SyntheticSpec spec;
  spec.task = Task::Regression;
  spec.n_rows = 300;
  spec.n_features = 7;
  Dataset data = make_regression(spec);
  EXPECT_EQ(data.n_rows(), 300u);
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    EXPECT_TRUE(std::isfinite(data.label(i)));
  }
}

TEST(MakeRegression, NoiseIncreasesLabelVariance) {
  SyntheticSpec spec;
  spec.task = Task::Regression;
  spec.n_rows = 1000;
  spec.n_features = 5;
  spec.label_noise = 0.0;
  spec.seed = 5;
  Dataset clean = make_regression(spec);
  spec.label_noise = 1.0;
  Dataset noisy = make_regression(spec);
  // Same latent function, extra noise => strictly larger variance.
  auto var = [](const Dataset& d) {
    double m = 0.0;
    for (std::size_t i = 0; i < d.n_rows(); ++i) m += d.label(i);
    m /= static_cast<double>(d.n_rows());
    double v = 0.0;
    for (std::size_t i = 0; i < d.n_rows(); ++i) {
      v += (d.label(i) - m) * (d.label(i) - m);
    }
    return v;
  };
  EXPECT_GT(var(noisy), var(clean));
}

TEST(MakeFriedman1, MatchesFormulaWithoutNoise) {
  Dataset data = make_friedman1(50, 5, 0.0, 9);
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    double x0 = data.value(i, 0), x1 = data.value(i, 1), x2 = data.value(i, 2),
           x3 = data.value(i, 3), x4 = data.value(i, 4);
    double expected = 10.0 * std::sin(M_PI * x0 * x1) + 20.0 * (x2 - 0.5) * (x2 - 0.5) +
                      10.0 * x3 + 5.0 * x4;
    EXPECT_NEAR(data.label(i), expected, 1e-4);
  }
}

TEST(MakeFriedman1, RequiresFiveFeatures) {
  EXPECT_THROW(make_friedman1(50, 4, 0.1, 1), InvalidArgument);
}

TEST(MakePiecewise, ProducesDiscreteLevelsWithoutNoise) {
  Dataset data = make_piecewise(500, 3, 5, 0.0, 21);
  std::set<double> levels;
  for (std::size_t i = 0; i < data.n_rows(); ++i) levels.insert(data.label(i));
  // With 5 boxes there are at most 2^5 distinct sums; far fewer in practice.
  EXPECT_LE(levels.size(), 32u);
  EXPECT_GE(levels.size(), 2u);
}

TEST(BinifyColumns, ConvertsRequestedFraction) {
  SyntheticSpec spec;
  spec.n_rows = 400;
  spec.n_features = 10;
  Dataset data = make_classification(spec);
  Rng rng(3);
  binify_columns(data, 0.5, rng);
  int categorical = 0;
  for (std::size_t c = 0; c < data.n_cols(); ++c) {
    if (data.column_info(c).type == ColumnType::Categorical) {
      ++categorical;
      EXPECT_GE(data.column_info(c).cardinality, 3);
      EXPECT_LE(data.column_info(c).cardinality, 12);
    }
  }
  EXPECT_EQ(categorical, 5);
  EXPECT_NO_THROW(data.validate());
}

TEST(InjectMissing, ApproximatelyRequestedFraction) {
  SyntheticSpec spec;
  spec.n_rows = 1000;
  spec.n_features = 8;
  Dataset data = make_classification(spec);
  Rng rng(5);
  inject_missing(data, 0.1, rng);
  std::size_t missing = 0, total = 0;
  for (std::size_t c = 0; c < data.n_cols(); ++c) {
    for (float v : data.column(c)) {
      missing += Dataset::is_missing(v) ? 1u : 0u;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(missing) / static_cast<double>(total), 0.1, 0.02);
  EXPECT_NO_THROW(data.validate());
}

TEST(MakeSynthetic, DispatchesOnTask) {
  SyntheticSpec spec;
  spec.task = Task::Regression;
  spec.n_rows = 50;
  spec.n_features = 5;
  EXPECT_EQ(make_synthetic(spec).task(), Task::Regression);
  spec.task = Task::BinaryClassification;
  EXPECT_EQ(make_synthetic(spec).task(), Task::BinaryClassification);
}

}  // namespace
}  // namespace flaml
