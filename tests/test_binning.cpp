#include "tree/binning.h"

#include <gtest/gtest.h>

#include <limits>

namespace flaml {
namespace {

const float kNaN = std::numeric_limits<float>::quiet_NaN();

Dataset numeric_data(std::vector<float> values) {
  Dataset data(Task::Regression, {{"x", ColumnType::Numeric, 0}});
  data.set_column(0, std::move(values));
  std::vector<double> labels(data.column(0).size(), 0.0);
  data.set_labels(std::move(labels));
  return data;
}

TEST(BinMapper, DistinctValuesGetOwnBins) {
  Dataset data = numeric_data({1.0f, 2.0f, 3.0f, 1.0f, 2.0f});
  BinMapper mapper = BinMapper::fit(DataView(data), 255);
  const FeatureBins& fb = mapper.feature(0);
  EXPECT_EQ(fb.n_value_bins, 3);
  EXPECT_EQ(fb.bin_for(1.0f), 0);
  EXPECT_EQ(fb.bin_for(2.0f), 1);
  EXPECT_EQ(fb.bin_for(3.0f), 2);
}

TEST(BinMapper, ValuesBetweenEdgesBinUp) {
  Dataset data = numeric_data({1.0f, 2.0f, 3.0f});
  BinMapper mapper = BinMapper::fit(DataView(data), 255);
  const FeatureBins& fb = mapper.feature(0);
  EXPECT_EQ(fb.bin_for(1.5f), 1);   // (1, 2] -> bin of value 2
  EXPECT_EQ(fb.bin_for(0.5f), 0);   // below min
  EXPECT_EQ(fb.bin_for(99.0f), 2);  // above max clamps to last bin
}

TEST(BinMapper, MissingGetsReservedBin) {
  Dataset data = numeric_data({1.0f, kNaN, 3.0f});
  BinMapper mapper = BinMapper::fit(DataView(data), 255);
  const FeatureBins& fb = mapper.feature(0);
  EXPECT_EQ(fb.bin_for(kNaN), fb.missing_bin());
  EXPECT_EQ(fb.missing_bin(), fb.n_value_bins);
  EXPECT_EQ(fb.n_bins(), fb.n_value_bins + 1);
}

TEST(BinMapper, QuantileBinningRespectsMaxBin) {
  std::vector<float> values(10000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(i);
  }
  Dataset data = numeric_data(std::move(values));
  BinMapper mapper = BinMapper::fit(DataView(data), 64);
  EXPECT_LE(mapper.feature(0).n_value_bins, 64);
  EXPECT_GE(mapper.feature(0).n_value_bins, 32);
}

TEST(BinMapper, QuantileBinsBalanced) {
  std::vector<float> values(8192);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(i);
  }
  Dataset data = numeric_data(std::move(values));
  BinMapper mapper = BinMapper::fit(DataView(data), 16);
  BinnedMatrix binned = mapper.encode(DataView(data));
  std::vector<int> counts(static_cast<std::size_t>(mapper.feature(0).n_bins()), 0);
  for (std::size_t i = 0; i < binned.n_rows(); ++i) counts[binned.bin(i, 0)] += 1;
  for (int b = 0; b < mapper.feature(0).n_value_bins; ++b) {
    EXPECT_GT(counts[static_cast<std::size_t>(b)], 8192 / 32);
  }
}

TEST(BinMapper, CategoricalMapsCodeToBin) {
  Dataset data(Task::Regression, {{"c", ColumnType::Categorical, 4}});
  data.set_column(0, {0.0f, 3.0f, 1.0f, 2.0f});
  data.set_labels({0, 0, 0, 0});
  BinMapper mapper = BinMapper::fit(DataView(data), 255);
  const FeatureBins& fb = mapper.feature(0);
  EXPECT_EQ(fb.n_value_bins, 4);
  EXPECT_EQ(fb.bin_for(2.0f), 2);
  EXPECT_EQ(fb.bin_for(kNaN), 4);
}

TEST(BinMapper, ConstantColumnSingleBin) {
  Dataset data = numeric_data({5.0f, 5.0f, 5.0f});
  BinMapper mapper = BinMapper::fit(DataView(data), 255);
  EXPECT_EQ(mapper.feature(0).n_value_bins, 1);
  EXPECT_EQ(mapper.feature(0).bin_for(5.0f), 0);
}

TEST(BinMapper, AllMissingColumnHandled) {
  Dataset data = numeric_data({kNaN, kNaN});
  BinMapper mapper = BinMapper::fit(DataView(data), 255);
  EXPECT_EQ(mapper.feature(0).bin_for(kNaN), mapper.feature(0).missing_bin());
}

TEST(BinMapper, EncodeMatchesBinFor) {
  Dataset data = numeric_data({3.0f, 1.0f, kNaN, 2.0f, 1.0f});
  BinMapper mapper = BinMapper::fit(DataView(data), 255);
  BinnedMatrix binned = mapper.encode(DataView(data));
  ASSERT_EQ(binned.n_rows(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(binned.bin(i, 0),
              static_cast<std::uint16_t>(mapper.feature(0).bin_for(data.value(i, 0))));
  }
}

TEST(BinMapper, ThresholdSeparatesBins) {
  Dataset data = numeric_data({1.0f, 5.0f, 9.0f});
  BinMapper mapper = BinMapper::fit(DataView(data), 255);
  const FeatureBins& fb = mapper.feature(0);
  // Split "bin <= 0" must separate 1.0 (left) from 5.0 and 9.0 (right).
  float thr = fb.threshold_for(0);
  EXPECT_LE(1.0f, thr);
  EXPECT_GT(5.0f, thr);
}

TEST(BinMapper, RejectsBadMaxBin) {
  Dataset data = numeric_data({1.0f, 2.0f});
  EXPECT_THROW(BinMapper::fit(DataView(data), 1), InvalidArgument);
}

TEST(BinMapper, SubviewBinning) {
  Dataset data = numeric_data({1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f});
  DataView subset(data, {0, 2, 4});
  BinMapper mapper = BinMapper::fit(subset, 255);
  EXPECT_EQ(mapper.feature(0).n_value_bins, 3);  // 1, 3, 5 observed
  BinnedMatrix binned = mapper.encode(subset);
  EXPECT_EQ(binned.n_rows(), 3u);
}

}  // namespace
}  // namespace flaml
