#include "common/clock.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/error.h"

namespace flaml {
namespace {

TEST(VirtualClock, StartsAtGivenTime) {
  VirtualClock clock(5.0);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
}

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock clock;
  clock.advance(1.5);
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 4.0);
}

TEST(VirtualClock, SetMovesForward) {
  VirtualClock clock;
  clock.set(10.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
}

TEST(VirtualClock, RejectsBackwardMotion) {
  VirtualClock clock(3.0);
  EXPECT_THROW(clock.advance(-1.0), InternalError);
  EXPECT_THROW(clock.set(2.0), InternalError);
}

TEST(WallClock, IsMonotonic) {
  WallClock clock;
  double t1 = clock.now();
  double t2 = clock.now();
  EXPECT_GE(t2, t1);
}

TEST(WallClock, MeasuresSleep) {
  WallClock clock;
  double t1 = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double elapsed = clock.now() - t1;
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 2.0);
}

// A deliberately broken time source: jumps anywhere, including backwards.
// VirtualClock forbids backward motion by contract, so the BudgetMeter
// tests need their own. Models a wall clock stepped by NTP or a paused VM.
class JumpyClock final : public Clock {
 public:
  double now() const override { return t; }
  double t = 0.0;
};

TEST(BudgetMeter, AccumulatesForwardMotion) {
  JumpyClock clock;
  BudgetMeter meter(clock);
  EXPECT_DOUBLE_EQ(meter.elapsed(), 0.0);
  clock.t = 1.5;
  EXPECT_DOUBLE_EQ(meter.elapsed(), 1.5);
  clock.t = 4.0;
  EXPECT_DOUBLE_EQ(meter.elapsed(), 4.0);
}

TEST(BudgetMeter, OffsetCarriesSpentBudget) {
  JumpyClock clock;
  clock.t = 7.0;  // a nonzero origin must not be charged
  BudgetMeter meter(clock, 2.5);
  EXPECT_DOUBLE_EQ(meter.elapsed(), 2.5);
  clock.t = 8.0;
  EXPECT_DOUBLE_EQ(meter.elapsed(), 3.5);
}

TEST(BudgetMeter, BackwardJumpNeitherRewindsNorStalls) {
  JumpyClock clock;
  BudgetMeter meter(clock);
  clock.t = 3.0;
  EXPECT_DOUBLE_EQ(meter.elapsed(), 3.0);
  // The jump itself is free: elapsed never decreases...
  clock.t = -100.0;
  EXPECT_DOUBLE_EQ(meter.elapsed(), 3.0);
  // ...and forward motion counts again immediately — no waiting for the
  // source to re-cross its old maximum (the clamp-to-max failure mode).
  clock.t = -99.0;
  EXPECT_DOUBLE_EQ(meter.elapsed(), 4.0);
  clock.t = -98.5;
  EXPECT_DOUBLE_EQ(meter.elapsed(), 4.5);
}

TEST(BudgetMeter, ForwardJumpCountsInFull) {
  JumpyClock clock;
  BudgetMeter meter(clock);
  clock.t = 1.0;
  meter.elapsed();
  clock.t = 5001.0;  // suspend/resume: the gap is real elapsed time
  EXPECT_DOUBLE_EQ(meter.elapsed(), 5001.0);
}

TEST(BudgetMeter, UnsampledJumpPairIsInvisible) {
  JumpyClock clock;
  BudgetMeter meter(clock);
  clock.t = 2.0;
  EXPECT_DOUBLE_EQ(meter.elapsed(), 2.0);
  // A backward step the meter never observes mid-flight: only the net
  // motion between samples counts (here: 2.0 -> 1.0, negative, free).
  clock.t = -50.0;
  clock.t = 1.0;
  EXPECT_DOUBLE_EQ(meter.elapsed(), 2.0);
}

TEST(Stopwatch, TracksVirtualClock) {
  VirtualClock clock;
  Stopwatch watch(clock);
  clock.advance(2.0);
  EXPECT_DOUBLE_EQ(watch.elapsed(), 2.0);
  watch.restart();
  EXPECT_DOUBLE_EQ(watch.elapsed(), 0.0);
  clock.advance(1.0);
  EXPECT_DOUBLE_EQ(watch.elapsed(), 1.0);
}

}  // namespace
}  // namespace flaml
