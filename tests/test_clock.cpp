#include "common/clock.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/error.h"

namespace flaml {
namespace {

TEST(VirtualClock, StartsAtGivenTime) {
  VirtualClock clock(5.0);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
}

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock clock;
  clock.advance(1.5);
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 4.0);
}

TEST(VirtualClock, SetMovesForward) {
  VirtualClock clock;
  clock.set(10.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
}

TEST(VirtualClock, RejectsBackwardMotion) {
  VirtualClock clock(3.0);
  EXPECT_THROW(clock.advance(-1.0), InternalError);
  EXPECT_THROW(clock.set(2.0), InternalError);
}

TEST(WallClock, IsMonotonic) {
  WallClock clock;
  double t1 = clock.now();
  double t2 = clock.now();
  EXPECT_GE(t2, t1);
}

TEST(WallClock, MeasuresSleep) {
  WallClock clock;
  double t1 = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double elapsed = clock.now() - t1;
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 2.0);
}

TEST(Stopwatch, TracksVirtualClock) {
  VirtualClock clock;
  Stopwatch watch(clock);
  clock.advance(2.0);
  EXPECT_DOUBLE_EQ(watch.elapsed(), 2.0);
  watch.restart();
  EXPECT_DOUBLE_EQ(watch.elapsed(), 0.0);
  clock.advance(1.0);
  EXPECT_DOUBLE_EQ(watch.elapsed(), 1.0);
}

}  // namespace
}  // namespace flaml
